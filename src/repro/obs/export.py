"""Prometheus text-format exposition (and its validating parser).

``render_prometheus`` turns a :class:`~repro.obs.registry.MetricsRegistry`
into the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ served
by the Looking Glass's ``/metrics`` endpoint and printed by the
``repro-study metrics`` subcommand.

``parse_prometheus`` is the other half: a strict parser used by the
golden-format tests and the CI smoke job to prove the endpoint's output
is well-formed — every sample line must parse, every sample must be
declared by a ``# TYPE`` line, histogram buckets must be cumulative and
carry a ``+Inf`` edge, and ``_count``/``_sum`` must be consistent.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from .registry import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    Histogram,
    MetricsRegistry,
)

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labelnames: Tuple[str, ...],
                 labelvalues: Tuple[str, ...],
                 extra: str = "") -> str:
    pairs = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(labelnames, labelvalues)]
    if extra:
        pairs.append(extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.families():
        help_text = family.help_text.replace("\n", " ")
        lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labelvalues, child in family.samples():
            if family.kind == HISTOGRAM:
                assert isinstance(child, Histogram)
                state = child.value
                cumulative = state["counts"]
                edges = list(state["buckets"]) + [math.inf]
                for edge, count in zip(edges, cumulative):
                    le = _format_value(float(edge))
                    labels = _labels_text(
                        family.labelnames, labelvalues,
                        extra=f'le="{le}"')
                    lines.append(
                        f"{family.name}_bucket{labels} {count}")
                base = _labels_text(family.labelnames, labelvalues)
                lines.append(f"{family.name}_sum{base} "
                             f"{_format_value(float(state['sum']))}")
                lines.append(f"{family.name}_count{base} "
                             f"{state['count']}")
            else:
                labels = _labels_text(family.labelnames, labelvalues)
                lines.append(
                    f"{family.name}{labels} "
                    f"{_format_value(float(child.value))}")  # type: ignore[arg-type]
    return "\n".join(lines) + ("\n" if lines else "")


class ExpositionFormatError(ValueError):
    """The exposition payload violates the text format."""


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    remaining = text.strip()
    while remaining:
        match = _LABEL_PAIR.match(remaining)
        if match is None:
            raise ExpositionFormatError(f"bad label syntax: {text!r}")
        raw = match.group("value")
        labels[match.group("name")] = (
            raw.replace('\\"', '"').replace("\\n", "\n")
            .replace("\\\\", "\\"))
        remaining = remaining[match.end():].lstrip(",").strip()
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError as error:
        raise ExpositionFormatError(
            f"bad sample value: {text!r}") from error


def _base_name(sample_name: str, types: Dict[str, str]) -> str:
    """Map a sample name back to its declared family name."""
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            candidate = sample_name[:-len(suffix)]
            if types.get(candidate) == HISTOGRAM:
                return candidate
    raise ExpositionFormatError(
        f"sample {sample_name!r} has no # TYPE declaration")


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """Parse (and validate) a text exposition payload.

    Returns ``{family: {"type": ..., "samples": [(name, labels,
    value), ...]}}``. Raises :class:`ExpositionFormatError` on any
    malformed line, undeclared sample, or inconsistent histogram.
    """
    types: Dict[str, str] = {}
    families: Dict[str, Dict[str, object]] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                    COUNTER, GAUGE, HISTOGRAM, "summary", "untyped"):
                raise ExpositionFormatError(f"bad TYPE line: {line!r}")
            name = parts[2]
            if name in types:
                raise ExpositionFormatError(
                    f"duplicate TYPE for {name}")
            types[name] = parts[3]
            families[name] = {"type": parts[3], "samples": []}
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ExpositionFormatError(f"bad sample line: {line!r}")
        labels = _parse_labels(match.group("labels") or "")
        value = _parse_value(match.group("value"))
        base = _base_name(match.group("name"), types)
        families[base]["samples"].append(  # type: ignore[union-attr]
            (match.group("name"), labels, value))
    for name, family in families.items():
        if family["type"] == HISTOGRAM:
            _validate_histogram(name, family["samples"])  # type: ignore[arg-type]
    return families


def _validate_histogram(name: str,
                        samples: List[Tuple[str, Dict[str, str], float]]
                        ) -> None:
    """Per label set: buckets cumulative, +Inf present and == _count."""
    by_labels: Dict[Tuple[Tuple[str, str], ...],
                    Dict[str, object]] = {}
    for sample_name, labels, value in samples:
        base_labels = tuple(sorted(
            (k, v) for k, v in labels.items() if k != "le"))
        entry = by_labels.setdefault(
            base_labels, {"buckets": [], "count": None})
        if sample_name == f"{name}_bucket":
            if "le" not in labels:
                raise ExpositionFormatError(
                    f"{name}_bucket sample without le label")
            entry["buckets"].append(  # type: ignore[union-attr]
                (_parse_value(labels["le"]), value))
        elif sample_name == f"{name}_count":
            entry["count"] = value
    for base_labels, entry in by_labels.items():
        buckets = sorted(entry["buckets"])  # type: ignore[arg-type]
        if not buckets or buckets[-1][0] != math.inf:
            raise ExpositionFormatError(
                f"{name}{dict(base_labels)} lacks a +Inf bucket")
        counts = [count for _edge, count in buckets]
        if counts != sorted(counts):
            raise ExpositionFormatError(
                f"{name}{dict(base_labels)} buckets not cumulative")
        if entry["count"] is not None and \
                counts[-1] != entry["count"]:
            raise ExpositionFormatError(
                f"{name}{dict(base_labels)}: +Inf bucket "
                f"{counts[-1]} != _count {entry['count']}")
