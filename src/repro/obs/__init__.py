"""``repro.obs`` — metrics, tracing, and run-report observability.

The subsystem has three parts:

* a process-local :class:`~repro.obs.registry.MetricsRegistry`
  (counters / gauges / fixed-bucket histograms — thread-safe,
  labelled, O(1) updates, label-cardinality capped);
* :class:`~repro.obs.tracing.span` nested wall-clock tracing into a
  bounded :class:`~repro.obs.tracing.TraceBuffer`;
* two exporters: Prometheus text exposition
  (:func:`~repro.obs.export.render_prometheus`, served from the
  simulated LG's ``/metrics`` endpoint) and JSON run reports
  (:mod:`repro.obs.report`, attached to campaign checkpoints and
  written through ``DatasetStore``).

Observability is **disabled by default**: the global registry is a
null object whose children are shared no-ops, so instrumented hot
paths cost essentially nothing (see
``benchmarks/test_bench_obs_overhead.py``). Call :func:`enable` to
install a live registry + trace buffer::

    import repro.obs as obs

    registry = obs.enable()
    ...  # run a campaign / pipeline
    print(obs.render_prometheus(registry))

Instrument sites use :class:`MetricSet`, a generation-cached bundle of
bound metric children: resolution happens once per enable/disable
cycle, so the per-update cost is an attribute read, an int compare,
and one (possibly no-op) method call.

Metric names follow ``repro_<layer>_<name>`` with Prometheus suffix
conventions (``_total`` counters, ``_seconds`` histograms).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

from .export import (
    CONTENT_TYPE,
    ExpositionFormatError,
    parse_prometheus,
    render_prometheus,
)
from .registry import (
    DEFAULT_BUCKETS,
    DEFAULT_MAX_LABEL_SETS,
    NOOP_CHILD,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .report import (
    build_run_report,
    load_run_report,
    metric_value,
    write_run_report,
)
from .tracing import SpanRecord, TraceBuffer, span

__all__ = [
    "MetricsRegistry", "NullMetricsRegistry", "MetricFamily",
    "Counter", "Gauge", "Histogram", "MetricError",
    "NULL_REGISTRY", "NOOP_CHILD",
    "DEFAULT_BUCKETS", "DEFAULT_MAX_LABEL_SETS",
    "TraceBuffer", "SpanRecord", "span",
    "render_prometheus", "parse_prometheus",
    "ExpositionFormatError", "CONTENT_TYPE",
    "build_run_report", "write_run_report", "load_run_report",
    "metric_value",
    "enable", "disable", "enabled", "reset",
    "get_registry", "get_tracer", "set_registry", "generation",
    "MetricSet", "snapshot",
]

_lock = threading.Lock()
_registry: Any = NULL_REGISTRY
_tracer: Optional[TraceBuffer] = None
#: bumped on every enable/disable/reset so MetricSet caches re-resolve.
_generation = 1


def generation() -> int:
    """Cache tag for bound metric children (see :class:`MetricSet`)."""
    return _generation


def get_registry() -> Any:
    """The active registry — a live :class:`MetricsRegistry`, or the
    shared null registry while observability is disabled."""
    return _registry


def get_tracer() -> Optional[TraceBuffer]:
    """The active trace buffer, or None while disabled."""
    return _tracer


def enabled() -> bool:
    return _registry is not NULL_REGISTRY


def set_registry(registry: Any,
                 tracer: Optional[TraceBuffer] = None) -> None:
    """Install an explicit registry/tracer pair (tests, embedders)."""
    global _registry, _tracer, _generation
    with _lock:
        _registry = registry
        _tracer = tracer
        _generation += 1


def enable(max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
           trace_capacity: int = 4096) -> MetricsRegistry:
    """Turn observability on; returns the installed registry.

    Idempotent: if a live registry is already installed it is kept
    (and returned), so layered entry points — CLI flag, campaign,
    tests — can all call ``enable()`` without clobbering each other.
    """
    global _registry, _tracer, _generation
    with _lock:
        if _registry is NULL_REGISTRY:
            _registry = MetricsRegistry(max_label_sets=max_label_sets)
            _tracer = TraceBuffer(capacity=trace_capacity)
            _generation += 1
        return _registry  # type: ignore[return-value]


def disable() -> None:
    """Turn observability off (instrument sites fall back to no-ops)."""
    global _registry, _tracer, _generation
    with _lock:
        _registry = NULL_REGISTRY
        _tracer = None
        _generation += 1


def reset() -> None:
    """Zero the active registry and trace buffer in place."""
    global _generation
    with _lock:
        _registry.reset()
        if _tracer is not None:
            _tracer.clear()
        _generation += 1


class MetricSet:
    """Generation-cached bundle of bound metric children.

    Construct with a builder that receives the active registry and
    returns any attribute bag (``types.SimpleNamespace`` works well)
    of bound children::

        _METRICS = obs.MetricSet(lambda reg: SimpleNamespace(
            routes=reg.counter(
                "repro_routeserver_routes_processed_total",
                "Routes run through the import pipeline").labels(),
            rejects=reg.counter(
                "repro_routeserver_filter_rejected_total",
                "Import-filter rejections", ("rule",)),
        ))

        def hot_path(self):
            m = _METRICS()                 # attr read + int compare
            m.routes.inc()                 # no-op when disabled

    The builder re-runs only when the observability generation changes
    (enable / disable / reset), so hot paths never pay registration or
    label-lookup costs. With the null registry every bound child is
    the shared no-op singleton.
    """

    __slots__ = ("_build", "_gen", "_bound")

    def __init__(self, build: Callable[[Any], Any]) -> None:
        self._build = build
        self._gen = 0  # never a live generation — forces first bind
        self._bound: Any = None

    def __call__(self) -> Any:
        if self._gen != _generation:
            self._bound = self._build(_registry)
            self._gen = _generation
        return self._bound


def snapshot() -> Dict[str, Any]:
    """JSON snapshot of the active registry (empty when disabled)."""
    return _registry.snapshot()
