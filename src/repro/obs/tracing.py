"""Nested wall-clock tracing with a bounded in-memory buffer.

``span("stage")`` is both a context manager and a decorator. Completed
spans land in a :class:`TraceBuffer` — a bounded ring, so a multi-week
campaign cannot leak memory through its own traces. Nesting depth and
the parent span name are tracked per thread, so a trace dump reads as
an indented call tree:

    with span("pipeline"):
        with span("aggregate"):
            ...

The clock is injectable (tests pass a fake); spans are no-ops while
observability is disabled (see :func:`repro.obs.enabled`).
"""

from __future__ import annotations

import functools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

#: default ring capacity — plenty for a run report, bounded for a
#: multi-week campaign.
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    start: float
    duration: float
    depth: int
    parent: Optional[str]

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "start": self.start,
                "duration": self.duration, "depth": self.depth,
                "parent": self.parent}


class TraceBuffer:
    """Bounded ring of completed spans plus per-thread nesting state."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.capacity = capacity
        self.clock = clock
        self._spans: deque = deque(maxlen=capacity)
        self._dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- nesting state -------------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def push(self, name: str) -> float:
        stack = self._stack()
        stack.append(name)
        return self.clock()

    def pop(self, name: str, started: float) -> SpanRecord:
        ended = self.clock()
        stack = self._stack()
        depth = max(0, len(stack) - 1)
        parent = stack[-2] if len(stack) >= 2 else None
        if stack and stack[-1] == name:
            stack.pop()
        record = SpanRecord(name=name, start=started,
                            duration=ended - started,
                            depth=depth, parent=parent)
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self._dropped += 1
            self._spans.append(record)
        return record

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted because the ring was full."""
        return self._dropped

    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def snapshot(self) -> List[Dict[str, object]]:
        return [record.to_dict() for record in self.records()]

    def durations(self, name: str) -> List[float]:
        """All recorded durations of spans called *name*."""
        return [r.duration for r in self.records() if r.name == name]

    def format_tree(self) -> str:
        """Indented text rendering of the buffered spans."""
        lines = []
        for record in self.records():
            lines.append(f"{'  ' * record.depth}{record.name}: "
                         f"{record.duration * 1000:.2f}ms")
        return "\n".join(lines)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0


class span:
    """Context manager / decorator timing one named region.

    ``buffer=None`` (the default) resolves the process-global trace
    buffer at enter time, so a span site written once follows
    enable/disable at run time. When observability is disabled the
    span enters and exits without reading the clock.
    """

    __slots__ = ("name", "_buffer", "_active", "_started")

    def __init__(self, name: str,
                 buffer: Optional[TraceBuffer] = None) -> None:
        self.name = name
        self._buffer = buffer
        self._active: Optional[TraceBuffer] = None
        self._started = 0.0

    def _resolve(self) -> Optional[TraceBuffer]:
        if self._buffer is not None:
            return self._buffer
        from . import get_tracer  # late: avoids import cycle
        return get_tracer()

    def __enter__(self) -> "span":
        buffer = self._resolve()
        self._active = buffer
        if buffer is not None:
            self._started = buffer.push(self.name)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._active is not None:
            self._active.pop(self.name, self._started)
            self._active = None

    def __call__(self, func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any):
            # fresh instance per call: decorator use must be reentrant.
            with span(self.name, self._buffer):
                return func(*args, **kwargs)
        return wrapper
