"""Process-local metrics registry (zero-dependency).

The collection campaign runs for weeks and the analysis pipeline chews
through millions of routes; neither can be optimised — or even trusted
— without self-measurement. This registry is the project's single
metrics substrate: counters, gauges, and fixed-bucket histograms,
thread-safe, labelled, O(1) per update, exposable in Prometheus text
format (:mod:`repro.obs.export`) and as a JSON snapshot attached to
campaign checkpoints and run reports (:mod:`repro.obs.report`).

Design constraints, in order:

1. **Hot-path cost.** The route server processes updates in a tight
   loop; an enabled registry must stay under a few percent of that
   loop, and a *disabled* one must cost essentially nothing. Hence the
   :class:`NullMetricsRegistry`, whose children are shared no-op
   singletons, and the generation-counted proxies in
   :mod:`repro.obs` that let call sites cache resolved children.
2. **Bounded memory.** Label sets are capped per family
   (``max_label_sets``); past the cap, updates fold into a single
   overflow child instead of growing without bound — a campaign
   scraping a 1000-peer IXP must not DoS itself through its own
   per-peer labels.
3. **No dependencies.** Everything here is stdlib.

Metric names follow ``repro_<layer>_<name>`` (Prometheus conventions:
``_total`` for counters, ``_seconds`` for durations).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: label values a family folds excess children into once
#: ``max_label_sets`` distinct label sets exist.
OVERFLOW_LABEL = "_overflow_"

#: default per-family cap on distinct label sets.
DEFAULT_MAX_LABEL_SETS = 256

#: default histogram buckets (seconds-flavoured, latency-friendly).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


class MetricError(ValueError):
    """Invalid metric registration or use."""


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise MetricError(f"invalid metric name: {name!r}")
    return name


class Counter:
    """Monotonically increasing value for one label set."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Settable value for one label set."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram for one label set.

    ``buckets`` are the inclusive upper edges; a ``+Inf`` bucket is
    implicit. ``observe`` is O(log n_buckets) — effectively O(1) for
    the small fixed edge lists used here.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def value(self) -> Dict[str, object]:
        """JSON-able snapshot: cumulative bucket counts, sum, count."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            accumulated = self._sum
        cumulative: List[int] = []
        running = 0
        for count in counts:
            running += count
            cumulative.append(running)
        return {"buckets": list(self.buckets), "counts": cumulative,
                "sum": accumulated, "count": total}

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum


class MetricFamily:
    """One named metric and all its labelled children."""

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Sequence[str],
                 buckets: Optional[Sequence[float]] = None,
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> None:
        self.name = _check_name(name)
        self.kind = kind
        self.help_text = help_text
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self.buckets: Optional[Tuple[float, ...]] = (
            tuple(buckets) if buckets is not None else None)
        self.max_label_sets = max_label_sets
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        if not self.labelnames:
            # label-free families get their sole child eagerly so the
            # common `family.labels().inc()` path is one dict hit.
            self._children[()] = self._new_child()

    def _new_child(self):
        if self.kind == COUNTER:
            return Counter()
        if self.kind == GAUGE:
            return Gauge()
        return Histogram(self.buckets or DEFAULT_BUCKETS)

    def labels(self, *values: object):
        """The child for one label set (created on first use).

        Past ``max_label_sets`` distinct sets, all new sets share one
        overflow child so memory stays bounded.
        """
        if len(values) != len(self.labelnames):
            raise MetricError(
                f"{self.name} takes {len(self.labelnames)} label(s) "
                f"{self.labelnames}, got {len(values)}")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is not None:
                return child
            if len(self._children) >= self.max_label_sets:
                key = (OVERFLOW_LABEL,) * len(self.labelnames)
                child = self._children.get(key)
                if child is not None:
                    return child
            child = self._new_child()
            self._children[key] = child
            return child

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs, sorted for stable exposition."""
        with self._lock:
            return sorted(self._children.items())

    def snapshot(self) -> List[Dict[str, object]]:
        rows = []
        for key, child in self.samples():
            rows.append({
                "labels": dict(zip(self.labelnames, key)),
                "value": child.value,  # type: ignore[attr-defined]
            })
        return rows


class MetricsRegistry:
    """Process-local collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create and
    idempotent: re-registering the same name with the same signature
    returns the existing family (so module-level instrument code and
    tests can both call them freely); re-registering with a different
    kind or labels raises.
    """

    def __init__(self,
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> None:
        self.max_label_sets = max_label_sets
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------

    def _register(self, name: str, kind: str, help_text: str,
                  labelnames: Sequence[str],
                  buckets: Optional[Sequence[float]] = None
                  ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or \
                        family.labelnames != tuple(labelnames):
                    raise MetricError(
                        f"metric {name} already registered as "
                        f"{family.kind}{family.labelnames}")
                return family
            family = MetricFamily(
                name, kind, help_text, labelnames, buckets=buckets,
                max_label_sets=self.max_label_sets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, COUNTER, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, GAUGE, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> MetricFamily:
        return self._register(name, HISTOGRAM, help_text, labelnames,
                              buckets=buckets)

    # -- introspection -------------------------------------------------

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name]
                    for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def value(self, name: str, *labelvalues: object) -> float:
        """Convenience for tests: one child's scalar value (0.0 when
        the family or child does not exist)."""
        family = self.get(name)
        if family is None:
            return 0.0
        key = tuple(str(v) for v in labelvalues)
        child = family._children.get(key)
        if child is None:
            return 0.0
        value = child.value  # type: ignore[attr-defined]
        if isinstance(value, dict):  # histogram
            return float(value["count"])
        return float(value)

    def snapshot(self) -> Dict[str, object]:
        """JSON-able dump of every family (the run-report payload)."""
        out: Dict[str, object] = {}
        for family in self.families():
            out[family.name] = {
                "type": family.kind,
                "help": family.help_text,
                "labelnames": list(family.labelnames),
                "samples": family.snapshot(),
            }
        return out

    def reset(self) -> None:
        """Drop every family. Call through :func:`repro.obs.reset`
        (which also invalidates instrument-site caches) rather than
        directly — sites holding bound children would otherwise keep
        updating orphaned objects."""
        with self._lock:
            self._families.clear()


class _NoopChild:
    """Shared do-nothing child: every mutator is a no-op and
    ``labels`` returns itself, so disabled instrument sites neither
    allocate nor branch."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, *values: object) -> "_NoopChild":
        return self

    @property
    def value(self) -> float:
        return 0.0


NOOP_CHILD = _NoopChild()


class NullMetricsRegistry:
    """Registry-shaped null object installed while observability is
    disabled. All factories return the shared no-op child."""

    max_label_sets = 0

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> _NoopChild:
        return NOOP_CHILD

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> _NoopChild:
        return NOOP_CHILD

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Iterable[float] = ()) -> _NoopChild:
        return NOOP_CHILD

    def families(self) -> List[MetricFamily]:
        return []

    def get(self, name: str) -> None:
        return None

    def value(self, name: str, *labelvalues: object) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, object]:
        return {}

    def reset(self) -> None:
        pass


NULL_REGISTRY = NullMetricsRegistry()
