"""JSON run reports.

A run report is the durable record of one run's self-measurement: a
metrics snapshot plus the buffered trace spans, with enough context
(kind, free-form meta) to tell a campaign run from an analysis run.
Campaign runs write one through
:meth:`repro.collector.store.DatasetStore.save_run_report` next to the
snapshots they produced; the CLI's ``--metrics-out`` writes one to an
arbitrary path (including the parked/exit-2 path, where the report is
exactly what explains *why* the run parked).
"""

from __future__ import annotations

import contextlib
import datetime as _dt
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

REPORT_VERSION = 1


def build_run_report(kind: str,
                     meta: Optional[Dict[str, Any]] = None,
                     registry: Any = None,
                     tracer: Any = None) -> Dict[str, Any]:
    """Assemble a JSON-able run report from the current (or given)
    registry and trace buffer."""
    from . import get_registry, get_tracer
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    return {
        "version": REPORT_VERSION,
        "kind": kind,
        "created": _dt.datetime.now(_dt.timezone.utc).isoformat(),
        "meta": dict(meta or {}),
        "metrics": registry.snapshot(),
        "traces": tracer.snapshot() if tracer is not None else [],
    }


def write_run_report(path: Any, report: Dict[str, Any]) -> Path:
    """Atomically write one run report as pretty JSON; returns the path.

    Same discipline as the dataset store's artefact writes (temp file
    in the same directory + fsync + rename), so a crash mid-report can
    never leave a torn JSON file behind.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    data = (json.dumps(report, indent=1, sort_keys=True)
            + "\n").encode("utf-8")
    temporary = target.parent / f".{target.name}.{os.getpid()}.tmp"
    try:
        with open(temporary, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, target)
    except Exception:
        with contextlib.suppress(OSError):
            temporary.unlink()
        raise
    return target


def load_run_report(path: Any) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def metric_value(report: Dict[str, Any], name: str,
                 **labels: str) -> float:
    """Pull one sample's value out of a run report (0.0 when absent).

    Histograms yield their observation count. Convenience for tests
    and for humans grepping a report programmatically.
    """
    family = report.get("metrics", {}).get(name)
    if not family:
        return 0.0
    for sample in family.get("samples", []):
        sample_labels = sample.get("labels", {})
        if all(sample_labels.get(k) == v for k, v in labels.items()):
            value = sample.get("value", 0.0)
            if isinstance(value, dict):
                return float(value.get("count", 0))
            return float(value)
    return 0.0
