"""Appendix A stability analyses: Tables 3 and 4.

Given a series of snapshot summaries for one (IXP, family), compute the
min/max/percent-difference of members, prefixes, routes, and community
instances — daily within a week (Table 3) and across the twelve weekly
snapshots (Table 4). The paper uses these to justify analysing one
weekly (Monday) snapshot: daily variation stayed under 4%, and the
median weekly min-max difference was 5.31%.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..collector.snapshot import Snapshot

#: the four columns of Tables 3/4.
METRICS = ("members", "prefixes", "routes", "communities")


@dataclass(frozen=True)
class VariationRow:
    """One (IXP, family, metric) row: min, max, percent difference."""

    ixp: str
    family: int
    metric: str
    minimum: int
    maximum: int

    @property
    def diff_percent(self) -> float:
        """The paper's Diff%: (max - min) / max × 100."""
        if self.maximum == 0:
            return 0.0
        return (self.maximum - self.minimum) / self.maximum * 100.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "ixp": self.ixp,
            "family": self.family,
            "metric": self.metric,
            "min": self.minimum,
            "max": self.maximum,
            "diff_percent": self.diff_percent,
        }


def variation_rows(snapshots: Sequence[Snapshot]) -> List[VariationRow]:
    """Min/max/diff rows over a snapshot series (one IXP+family)."""
    if not snapshots:
        return []
    ixps = {s.ixp for s in snapshots}
    families = {s.family for s in snapshots}
    if len(ixps) != 1 or len(families) != 1:
        raise ValueError(
            "variation_rows needs snapshots of a single (IXP, family); "
            f"got {sorted(ixps)} x {sorted(families)}")
    summaries = [s.summary() for s in snapshots]
    rows = []
    for metric in METRICS:
        values = [summary[metric] for summary in summaries]
        rows.append(VariationRow(
            ixp=snapshots[0].ixp,
            family=snapshots[0].family,
            metric=metric,
            minimum=min(values),
            maximum=max(values),
        ))
    return rows


def weekly_variation(daily_snapshots: Sequence[Snapshot]) -> List[
        Dict[str, object]]:
    """Table 3: variation over the seven daily snapshots of one week."""
    return [row.as_dict() for row in variation_rows(daily_snapshots)]


def period_variation(weekly_snapshots: Sequence[Snapshot]) -> List[
        Dict[str, object]]:
    """Table 4: variation over the twelve weekly snapshots."""
    return [row.as_dict() for row in variation_rows(weekly_snapshots)]


def max_diff_percent(rows: Iterable[Dict[str, object]]) -> float:
    """Worst-case Diff% over a set of rows (paper: 3.91% within the
    week, 18.03% over the period)."""
    return max((float(row["diff_percent"]) for row in rows), default=0.0)


def median_diff_percent(rows: Iterable[Dict[str, object]],
                        metric: str = "communities") -> float:
    """Median Diff% for a metric across IXPs (paper §4: 5.31% for the
    weekly min-max difference)."""
    values = [float(row["diff_percent"]) for row in rows
              if row["metric"] == metric]
    return statistics.median(values) if values else 0.0
