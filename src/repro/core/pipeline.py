"""End-to-end study pipeline.

Glues the substrates together the way the paper's methodology does:

1. **generate/collect** snapshots per IXP and family (synthetic stand-in
   for the LG scraping, or actual LG scraping via
   :mod:`repro.collector.scraper`);
2. **sanitise** daily series (valley rule, §3);
3. **aggregate** the analysis snapshot (latest weekly, §4);
4. expose every figure/table through one :class:`Study` object.

``Study`` is the main entry point of the public API::

    from repro import Study
    study = Study.synthetic(scale=0.05)
    fig3 = study.action_vs_informational()
"""

from __future__ import annotations

import functools
import time
import types
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..collector.sanitation import SanitationReport, sanitise
from ..collector.snapshot import Snapshot
from ..ixp.dictionary import CommunityDictionary
from ..ixp.profiles import (
    ALL_IXPS,
    LARGE_FOUR,
    IxpProfile,
    get_profile,
)
from ..ixp.schemes import dictionary_for
from ..workload.generator import (
    FINAL_WEEKLY_DAY,
    ScenarioConfig,
    SnapshotGenerator,
)
from . import favorites, ineffective, prevalence, stability, summary, usage
from .aggregate import SnapshotAggregate, aggregate_snapshot
from .classification import Classifier

Key = Tuple[str, int]  # (ixp key, family)

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    stage_seconds=reg.histogram(
        "repro_pipeline_stage_seconds",
        "Wall-clock duration of one pipeline stage", ("stage",)),
    rows=reg.counter(
        "repro_pipeline_rows_total",
        "Rows (or objects) produced per pipeline stage", ("stage",)),
))


def _stage(name: str) -> Callable:
    """Meter one pipeline stage: a nested trace span plus duration
    histogram and row counter under the given stage label. Zero-cost
    (one bool check) while observability is disabled."""
    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not obs.enabled():
                return func(*args, **kwargs)
            started = time.perf_counter()
            with obs.span(f"pipeline:{name}"):
                result = func(*args, **kwargs)
            metrics = _METRICS()
            metrics.stage_seconds.labels(name).observe(
                time.perf_counter() - started)
            try:
                rows = len(result)  # type: ignore[arg-type]
            except TypeError:
                rows = 1
            metrics.rows.labels(name).inc(rows)
            return result
        return wrapper
    return decorate


@dataclass
class Study:
    """A loaded study: one analysis snapshot per (IXP, family), plus the
    dictionaries needed to classify them."""

    snapshots: Dict[Key, Snapshot] = field(default_factory=dict)
    dictionaries: Dict[str, CommunityDictionary] = field(default_factory=dict)
    _aggregates: Dict[Key, SnapshotAggregate] = field(default_factory=dict)

    # -- construction ----------------------------------------------------

    @classmethod
    @_stage("generate")
    def synthetic(cls, ixps: Sequence[str] = LARGE_FOUR,
                  families: Sequence[int] = (4, 6),
                  scale: float = 0.05,
                  seed: int = 20211004,
                  day: int = FINAL_WEEKLY_DAY) -> "Study":
        """Build a study from the synthetic generator (no I/O)."""
        study = cls()
        config = ScenarioConfig(scale=scale, seed=seed)
        for ixp_key in ixps:
            profile = get_profile(ixp_key)
            generator = SnapshotGenerator(profile, config)
            study.dictionaries[ixp_key] = generator.dictionary
            for family in families:
                study.snapshots[(ixp_key, family)] = generator.snapshot(
                    family, day, degraded=False)
        return study

    @classmethod
    @_stage("load_store")
    def from_store(cls, store, ixps: Sequence[str] = LARGE_FOUR,
                   families: Sequence[int] = (4, 6),
                   damaged: Optional[List] = None) -> "Study":
        """Build a study from a :class:`~repro.collector.store.DatasetStore`,
        degrading gracefully over damaged data.

        A damaged latest snapshot is quarantined by the store and the
        next-newest date is analysed instead; a damaged dictionary
        falls back to the IXP's documented scheme. Pass a list as
        ``damaged`` to receive the quarantine records — the analysis
        treats those artefacts exactly like missing collection days.
        """
        from ..collector.integrity import IntegrityError

        snapshots: List[Snapshot] = []
        dictionaries: Dict[str, CommunityDictionary] = {}
        for ixp in ixps:
            try:
                dictionaries[ixp] = store.load_dictionary(ixp)
            except FileNotFoundError:
                pass  # from_snapshots falls back to the profile scheme
            except IntegrityError as error:
                if damaged is not None and error.record is not None:
                    damaged.append(error.record)
            for family in families:
                snapshot = store.latest_snapshot(ixp, family,
                                                 damaged=damaged)
                if snapshot is not None:
                    snapshots.append(snapshot)
        return cls.from_snapshots(snapshots, dictionaries)

    @classmethod
    @_stage("load")
    def from_snapshots(cls, snapshots: Iterable[Snapshot],
                       dictionaries: Optional[
                           Dict[str, CommunityDictionary]] = None) -> "Study":
        """Build a study from already-collected snapshots (e.g. loaded
        from a :class:`~repro.collector.store.DatasetStore`)."""
        study = cls()
        for snapshot in snapshots:
            study.snapshots[(snapshot.ixp, snapshot.family)] = snapshot
            if dictionaries and snapshot.ixp in dictionaries:
                study.dictionaries[snapshot.ixp] = dictionaries[snapshot.ixp]
            elif snapshot.ixp not in study.dictionaries:
                study.dictionaries[snapshot.ixp] = dictionary_for(
                    get_profile(snapshot.ixp))
        return study

    # -- aggregation ---------------------------------------------------

    @_stage("aggregate")
    def aggregate(self, ixp: str, family: int) -> SnapshotAggregate:
        key = (ixp, family)
        if key not in self._aggregates:
            snapshot = self.snapshots[key]
            dictionary = self.dictionaries[ixp]
            self._aggregates[key] = aggregate_snapshot(snapshot, dictionary)
        return self._aggregates[key]

    def aggregates(self, family: Optional[int] = None,
                   ixps: Optional[Sequence[str]] = None,
                   ) -> List[SnapshotAggregate]:
        keys = sorted(self.snapshots, key=self._paper_order)
        out = []
        for ixp, fam in keys:
            if family is not None and fam != family:
                continue
            if ixps is not None and ixp not in ixps:
                continue
            out.append(self.aggregate(ixp, fam))
        return out

    @staticmethod
    def _paper_order(key: Key) -> Tuple[int, int]:
        ixp, family = key
        order = list(ALL_IXPS)
        position = order.index(ixp) if ixp in order else len(order)
        return (position, family)

    # -- figures / tables ------------------------------------------------

    @_stage("table1")
    def table1(self) -> List[Dict[str, object]]:
        return summary.summary_table(self.snapshots.values())

    @_stage("fig1")
    def ixp_defined_vs_unknown(self, family: Optional[int] = None):
        """Fig. 1 rows."""
        return prevalence.ixp_defined_vs_unknown(self.aggregates(family))

    @_stage("fig2")
    def community_kinds(self, family: Optional[int] = None):
        """Fig. 2 rows."""
        return prevalence.community_kinds(self.aggregates(family))

    @_stage("fig3")
    def action_vs_informational(self, family: Optional[int] = None):
        """Fig. 3 rows."""
        return prevalence.action_vs_informational(self.aggregates(family))

    @_stage("fig4a")
    def ases_using_actions(self, family: Optional[int] = None):
        """Fig. 4a rows."""
        return usage.ases_using_actions(self.aggregates(family))

    @_stage("fig4b")
    def usage_concentration(self, family: Optional[int] = None):
        """Fig. 4b checkpoint rows."""
        return usage.usage_concentration(self.aggregates(family))

    @_stage("fig4b_curve")
    def concentration_curve(self, ixp: str, family: int = 4):
        """Fig. 4b full curve for one IXP."""
        return usage.usage_concentration_curve(self.aggregate(ixp, family))

    @_stage("fig4c")
    def prefix_community_correlation(self, family: Optional[int] = None):
        """Fig. 4c summary rows."""
        return usage.prefix_community_correlation(self.aggregates(family))

    @_stage("table2")
    def table2(self, family: Optional[int] = None):
        return favorites.ases_per_action_type(self.aggregates(family))

    @_stage("occurrences")
    def occurrences_per_action_type(self, family: Optional[int] = None):
        return favorites.occurrences_per_action_type(self.aggregates(family))

    @_stage("fig5")
    def top_action_communities(self, ixp: str, family: int = 4,
                               limit: int = 20):
        """Fig. 5 rows for one IXP."""
        return favorites.top_action_communities(
            self.aggregate(ixp, family), self.dictionaries[ixp], limit)

    @_stage("ineffective")
    def ineffective_summary(self, family: Optional[int] = None):
        """§5.5 headline shares."""
        return ineffective.ineffective_summary(self.aggregates(family))

    @_stage("fig6")
    def top_ineffective_communities(self, ixp: str, family: int = 4,
                                    limit: int = 20):
        """Fig. 6 rows for one IXP."""
        return ineffective.top_ineffective_communities(
            self.aggregate(ixp, family), self.dictionaries[ixp], limit)

    @_stage("fig7")
    def top_culprit_ases(self, ixp: str, family: int = 4, limit: int = 10):
        """Fig. 7 rows for one IXP."""
        return ineffective.top_culprit_ases(
            self.aggregate(ixp, family), limit)


@_stage("sanitise")
def sanitised_series(generator: SnapshotGenerator, family: int,
                     days: Sequence[int],
                     degrade: bool = True) -> SanitationReport:
    """Generate a daily series (optionally with failure injection) and
    run the §3 sanitation over it."""
    snapshots = [generator.snapshot(family, day,
                                    degraded=None if degrade else False)
                 for day in days]
    return sanitise(snapshots)
