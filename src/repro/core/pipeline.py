"""End-to-end study pipeline.

Glues the substrates together the way the paper's methodology does:

1. **generate/collect** snapshots per IXP and family (synthetic stand-in
   for the LG scraping, or actual LG scraping via
   :mod:`repro.collector.scraper`);
2. **sanitise** daily series (valley rule, §3);
3. **aggregate** the analysis snapshot (latest weekly, §4);
4. expose every figure/table through one :class:`Study` object.

``Study`` is the main entry point of the public API::

    from repro import Study
    study = Study.synthetic(scale=0.05)
    fig3 = study.action_vs_informational()

Aggregation parallelises over independent (IXP, family) keys through
:mod:`repro.core.engine` when ``jobs > 1``, and store-backed studies
can reuse a content-addressed :class:`~repro.core.engine.AggregateCache`
so re-analysing an unchanged store skips route data entirely. Both
paths are value-identical to the serial, uncached discipline.
"""

from __future__ import annotations

import functools
import time
import types
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..collector.sanitation import SanitationReport, sanitise
from ..collector.snapshot import Snapshot
from ..ixp.dictionary import CommunityDictionary
from ..ixp.profiles import (
    ALL_IXPS,
    LARGE_FOUR,
    IxpProfile,
    get_profile,
)
from ..ixp.schemes import dictionary_for
from ..workload.generator import (
    FINAL_WEEKLY_DAY,
    ScenarioConfig,
    SnapshotGenerator,
)
from . import engine, favorites, ineffective, prevalence, stability, summary, usage
from .aggregate import SnapshotAggregate, aggregate_snapshot
from .classification import Classifier
from .engine import AggregateCache, AggregationPlan, run_plans

Key = Tuple[str, int]  # (ixp key, family)

#: Paper presentation order, resolved once — ``_paper_order`` used to
#: rebuild ``list(ALL_IXPS)`` and linear-scan ``.index()`` per key.
_PAPER_POSITION: Dict[str, int] = {
    ixp: position for position, ixp in enumerate(ALL_IXPS)}

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    stage_seconds=reg.histogram(
        "repro_pipeline_stage_seconds",
        "Wall-clock duration of one pipeline stage", ("stage",)),
    rows=reg.counter(
        "repro_pipeline_rows_total",
        "Rows (or objects) produced per pipeline stage", ("stage",)),
))


def _stage(name: str, rows: Optional[Callable] = None) -> Callable:
    """Meter one pipeline stage: a nested trace span plus duration
    histogram and row counter under the given stage label. Zero-cost
    (one bool check) while observability is disabled.

    ``rows`` maps the stage result to its row count; stages whose
    result is not a plain sequence pass one explicitly instead of
    leaning on a ``len()``/``TypeError`` fallback.
    """
    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not obs.enabled():
                return func(*args, **kwargs)
            started = time.perf_counter()
            with obs.span(f"pipeline:{name}"):
                result = func(*args, **kwargs)
            metrics = _METRICS()
            metrics.stage_seconds.labels(name).observe(
                time.perf_counter() - started)
            count = len(result) if rows is None else rows(result)
            metrics.rows.labels(name).inc(count)
            return result
        return wrapper
    return decorate


def _paper_order(key: Key) -> Tuple[int, int]:
    ixp, family = key
    return (_PAPER_POSITION.get(ixp, len(_PAPER_POSITION)), family)


def _study_rows(study: "Study") -> int:
    return len(study.keys())


@dataclass
class Study:
    """A loaded study: one analysis snapshot per (IXP, family), plus the
    dictionaries needed to classify them.

    ``jobs`` bounds aggregation concurrency (1 = serial, the default);
    a warm :class:`~repro.core.engine.AggregateCache` can satisfy keys
    without any snapshot at all, so everything downstream of
    aggregation keys itself off :meth:`keys`, never ``snapshots``.
    """

    snapshots: Dict[Key, Snapshot] = field(default_factory=dict)
    dictionaries: Dict[str, CommunityDictionary] = field(default_factory=dict)
    jobs: int = 1
    _aggregates: Dict[Key, SnapshotAggregate] = field(default_factory=dict)
    #: write-back bookkeeping for lazily-aggregated store keys:
    #: key -> (collection date, snapshot payload sha256).
    _pending_cache: Dict[Key, Tuple[str, str]] = field(
        default_factory=dict, repr=False)
    _cache: Optional[AggregateCache] = field(default=None, repr=False)
    #: memoised paper-ordered key tuple + the key set it was built from.
    _key_order: Optional[Tuple[Key, ...]] = field(default=None, repr=False)
    _key_source: frozenset = field(default=frozenset(), repr=False)

    # -- construction ----------------------------------------------------

    @classmethod
    @_stage("generate", rows=_study_rows)
    def synthetic(cls, ixps: Sequence[str] = LARGE_FOUR,
                  families: Sequence[int] = (4, 6),
                  scale: float = 0.05,
                  seed: int = 20211004,
                  day: int = FINAL_WEEKLY_DAY,
                  jobs: int = 1) -> "Study":
        """Build a study from the synthetic generator (no I/O)."""
        study = cls(jobs=jobs)
        config = ScenarioConfig(scale=scale, seed=seed)
        for ixp_key in ixps:
            profile = get_profile(ixp_key)
            generator = SnapshotGenerator(profile, config)
            study.dictionaries[ixp_key] = generator.dictionary
            for family in families:
                study.snapshots[(ixp_key, family)] = generator.snapshot(
                    family, day, degraded=False)
        return study

    @classmethod
    @_stage("load_store", rows=_study_rows)
    def from_store(cls, store, ixps: Sequence[str] = LARGE_FOUR,
                   families: Sequence[int] = (4, 6),
                   damaged: Optional[List] = None,
                   jobs: int = 1,
                   cache: Optional[AggregateCache] = None) -> "Study":
        """Build a study from a :class:`~repro.collector.store.DatasetStore`,
        degrading gracefully over damaged data.

        A damaged latest snapshot is quarantined by the store and the
        next-newest date is analysed instead; a damaged dictionary
        falls back to the IXP's documented scheme. Pass a list as
        ``damaged`` to receive the quarantine records — the analysis
        treats those artefacts exactly like missing collection days.

        With ``jobs > 1`` snapshot verification + aggregation fans out
        over worker processes; workers read without healing and the
        coordinator replays any damage through the store's normal
        quarantine path, so on-disk effects match a serial run. With a
        ``cache``, keys whose newest snapshot + dictionary digest match
        a stored aggregate skip snapshot loading entirely.
        """
        from ..collector.integrity import IntegrityError

        study = cls(jobs=jobs)
        study._cache = cache
        effective: Dict[str, CommunityDictionary] = {}
        misses: List[Key] = []
        for ixp in ixps:
            try:
                dictionary = store.load_dictionary(ixp)
            except FileNotFoundError:
                dictionary = dictionary_for(get_profile(ixp))
            except IntegrityError as error:
                if damaged is not None and error.record is not None:
                    damaged.append(error.record)
                dictionary = dictionary_for(get_profile(ixp))
            effective[ixp] = dictionary
            for family in families:
                key = (ixp, family)
                if cache is not None:
                    hit = cache.probe(ixp, family, dictionary)
                    if hit is not None:
                        study._aggregates[key] = hit
                        continue
                if jobs <= 1:
                    loaded = store.latest_verified(ixp, family,
                                                   damaged=damaged)
                    if loaded is not None:
                        snapshot, digest = loaded
                        study.snapshots[key] = snapshot
                        study._pending_cache[key] = (
                            snapshot.captured_on, digest)
                else:
                    misses.append(key)

        if misses:
            # workers ship back only the compact aggregate — like a
            # cache hit, a parallel study keys everything off
            # :meth:`keys`, not raw snapshots (pickling full route
            # tables back through the pool would dominate wall clock)
            plans = [AggregationPlan(
                key=key,
                dictionary=effective[key[0]],
                root=str(store.root),
                dates=tuple(reversed(store.snapshot_dates(*key))),
                store_factory=type(store),
                return_snapshot=False,
            ) for key in misses]
            for result in run_plans(plans, jobs=jobs):
                ixp, family = result.key
                for date in result.damaged_dates:
                    # the worker saw damage read-only; replay the read
                    # through the healing path so quarantine + record
                    # happen exactly once, in this process.
                    try:
                        store.load_snapshot(ixp, family, date)
                    except FileNotFoundError:
                        pass
                    except IntegrityError as error:
                        if damaged is not None and error.record is not None:
                            damaged.append(error.record)
                if result.aggregate is None:
                    continue
                study._aggregates[result.key] = result.aggregate
                if result.snapshot is not None:
                    study.snapshots[result.key] = result.snapshot
                if (cache is not None and result.snapshot_sha256
                        and result.date):
                    cache.put(ixp, family, result.date,
                              result.snapshot_sha256, effective[ixp],
                              result.aggregate)

        for ixp, _family in study.keys():
            study.dictionaries.setdefault(ixp, effective[ixp])
        return study

    @classmethod
    @_stage("load", rows=_study_rows)
    def from_snapshots(cls, snapshots: Iterable[Snapshot],
                       dictionaries: Optional[
                           Dict[str, CommunityDictionary]] = None,
                       jobs: int = 1) -> "Study":
        """Build a study from already-collected snapshots (e.g. loaded
        from a :class:`~repro.collector.store.DatasetStore`)."""
        study = cls(jobs=jobs)
        for snapshot in snapshots:
            study.snapshots[(snapshot.ixp, snapshot.family)] = snapshot
            if dictionaries and snapshot.ixp in dictionaries:
                study.dictionaries[snapshot.ixp] = dictionaries[snapshot.ixp]
            elif snapshot.ixp not in study.dictionaries:
                study.dictionaries[snapshot.ixp] = dictionary_for(
                    get_profile(snapshot.ixp))
        return study

    # -- aggregation ---------------------------------------------------

    def keys(self) -> Tuple[Key, ...]:
        """All (IXP, family) keys this study can analyse — loaded
        snapshots plus cache-satisfied aggregates — in paper order.
        The sort is memoised and invalidated when the key set changes."""
        current = frozenset(self.snapshots) | frozenset(self._aggregates)
        if self._key_order is None or self._key_source != current:
            self._key_order = tuple(sorted(current, key=_paper_order))
            self._key_source = current
        return self._key_order

    @_stage("aggregate", rows=lambda _aggregate: 1)
    def aggregate(self, ixp: str, family: int) -> SnapshotAggregate:
        key = (ixp, family)
        if key not in self._aggregates:
            snapshot = self.snapshots[key]
            dictionary = self.dictionaries[ixp]
            self._aggregates[key] = aggregate_snapshot(snapshot, dictionary)
            self._write_back(key)
        return self._aggregates[key]

    def aggregates(self, family: Optional[int] = None,
                   ixps: Optional[Sequence[str]] = None,
                   ) -> List[SnapshotAggregate]:
        wanted = [key for key in self.keys()
                  if (family is None or key[1] == family)
                  and (ixps is None or key[0] in ixps)]
        pending = [key for key in wanted
                   if key not in self._aggregates
                   and key in self.snapshots]
        if self.jobs > 1 and len(pending) > 1:
            plans = [AggregationPlan(key=key,
                                     dictionary=self.dictionaries[key[0]],
                                     snapshot=self.snapshots[key])
                     for key in pending]
            for result in run_plans(plans, jobs=self.jobs):
                self._aggregates[result.key] = result.aggregate
                self._write_back(result.key)
        return [self.aggregate(*key) for key in wanted]

    def _write_back(self, key: Key) -> None:
        """Persist a freshly computed aggregate to the cache, if this
        study has one and knows the snapshot's content address."""
        if self._cache is None:
            return
        pending = self._pending_cache.pop(key, None)
        if pending is None:
            return
        date, snapshot_sha256 = pending
        ixp, family = key
        self._cache.put(ixp, family, date, snapshot_sha256,
                        self.dictionaries[ixp], self._aggregates[key])

    # -- figures / tables ------------------------------------------------

    @_stage("table1")
    def table1(self) -> List[Dict[str, object]]:
        return summary.summary_table(self._population())

    def _population(self) -> List[object]:
        """Per-key population facts for Table 1: the snapshot when
        loaded, else the cached aggregate (same counts, no routes)."""
        return [self.snapshots.get(key) or self._aggregates[key]
                for key in self.keys()]

    @_stage("fig1")
    def ixp_defined_vs_unknown(self, family: Optional[int] = None):
        """Fig. 1 rows."""
        return prevalence.ixp_defined_vs_unknown(self.aggregates(family))

    @_stage("fig2")
    def community_kinds(self, family: Optional[int] = None):
        """Fig. 2 rows."""
        return prevalence.community_kinds(self.aggregates(family))

    @_stage("fig3")
    def action_vs_informational(self, family: Optional[int] = None):
        """Fig. 3 rows."""
        return prevalence.action_vs_informational(self.aggregates(family))

    @_stage("fig4a")
    def ases_using_actions(self, family: Optional[int] = None):
        """Fig. 4a rows."""
        return usage.ases_using_actions(self.aggregates(family))

    @_stage("fig4b")
    def usage_concentration(self, family: Optional[int] = None):
        """Fig. 4b checkpoint rows."""
        return usage.usage_concentration(self.aggregates(family))

    @_stage("fig4b_curve")
    def concentration_curve(self, ixp: str, family: int = 4):
        """Fig. 4b full curve for one IXP."""
        return usage.usage_concentration_curve(self.aggregate(ixp, family))

    @_stage("fig4c")
    def prefix_community_correlation(self, family: Optional[int] = None):
        """Fig. 4c summary rows."""
        return usage.prefix_community_correlation(self.aggregates(family))

    @_stage("table2")
    def table2(self, family: Optional[int] = None):
        return favorites.ases_per_action_type(self.aggregates(family))

    @_stage("occurrences")
    def occurrences_per_action_type(self, family: Optional[int] = None):
        return favorites.occurrences_per_action_type(self.aggregates(family))

    @_stage("fig5")
    def top_action_communities(self, ixp: str, family: int = 4,
                               limit: int = 20):
        """Fig. 5 rows for one IXP."""
        return favorites.top_action_communities(
            self.aggregate(ixp, family), self.dictionaries[ixp], limit)

    @_stage("ineffective")
    def ineffective_summary(self, family: Optional[int] = None):
        """§5.5 headline shares."""
        return ineffective.ineffective_summary(self.aggregates(family))

    @_stage("fig6")
    def top_ineffective_communities(self, ixp: str, family: int = 4,
                                    limit: int = 20):
        """Fig. 6 rows for one IXP."""
        return ineffective.top_ineffective_communities(
            self.aggregate(ixp, family), self.dictionaries[ixp], limit)

    @_stage("fig7")
    def top_culprit_ases(self, ixp: str, family: int = 4, limit: int = 10):
        """Fig. 7 rows for one IXP."""
        return ineffective.top_culprit_ases(
            self.aggregate(ixp, family), limit)


@_stage("sanitise", rows=lambda report: 1)
def sanitised_series(generator: SnapshotGenerator, family: int,
                     days: Sequence[int],
                     degrade: bool = True) -> SanitationReport:
    """Generate a daily series (optionally with failure injection) and
    run the §3 sanitation over it."""
    snapshots = [generator.snapshot(family, day,
                                    degraded=None if degrade else False)
                 for day in days]
    return sanitise(snapshots)
