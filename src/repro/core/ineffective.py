"""§5.5 analyses: ineffective action communities (Figures 6 and 7).

Action communities targeting ASes with no session at the route server
achieve nothing — "no practical routing effect and only increasing
processing and memory storage overheads". This module quantifies them:
their overall share, the top communities doing it (Fig. 6), and the
"culprit" ASes responsible (Fig. 7).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..ixp.dictionary import CommunityDictionary
from ..ixp.taxonomy import TargetKind
from ..workload.registry import network_name
from .aggregate import SnapshotAggregate


def ineffective_summary(
        aggregates: Iterable[SnapshotAggregate]) -> List[Dict[str, object]]:
    """Per-IXP share of action instances targeting non-RS members.

    The paper: 31.8% (IX.br-SP) to 64.3% (LINX) for IPv4.
    """
    rows = []
    for aggregate in aggregates:
        rows.append({
            "ixp": aggregate.ixp,
            "family": aggregate.family,
            "action_instances": aggregate.action_instances,
            "ineffective_instances": aggregate.ineffective_instances,
            "ineffective_share": aggregate.ineffective_share,
        })
    return rows


def top_ineffective_communities(
        aggregate: SnapshotAggregate,
        dictionary: CommunityDictionary,
        limit: int = 20) -> List[Dict[str, object]]:
    """Fig. 6: top-N action communities targeting non-RS members."""
    total = aggregate.ineffective_instances
    # Rank of each community in the *overall* top list, to reproduce the
    # paper's observation that many ineffective communities are also
    # among the most popular overall.
    overall_rank = {community: rank for rank, (community, _count)
                    in enumerate(aggregate.top_communities(20), start=1)}
    rows = []
    for community, count in aggregate.top_ineffective_communities(limit):
        semantics = dictionary.lookup(community)
        target = semantics.target if semantics else None
        target_asn = (target.asn if target is not None
                      and target.kind is TargetKind.PEER_AS else None)
        rows.append({
            "ixp": aggregate.ixp,
            "family": aggregate.family,
            "community": str(community),
            "category": (semantics.category.value
                         if semantics and semantics.category else None),
            "target": str(target) if target is not None else None,
            "target_name": (network_name(target_asn)
                            if target_asn is not None else None),
            "instances": count,
            "share_of_ineffective": count / total if total else 0.0,
            "overall_top20_rank": overall_rank.get(community),
        })
    return rows


def overlap_with_overall_top(aggregate: SnapshotAggregate,
                             limit: int = 20) -> int:
    """§5.5: how many of the overall top-*limit* action communities
    target non-RS members (six at IX.br-SP, four at DE-CIX, ten at LINX,
    eight at AMS-IX for IPv4)."""
    ineffective = set(aggregate.ineffective_by_community)
    return sum(1 for community, _count in aggregate.top_communities(limit)
               if community in ineffective)


def top_culprit_ases(
        aggregate: SnapshotAggregate,
        limit: int = 10) -> List[Dict[str, object]]:
    """Fig. 7: ASes announcing the most routes with action communities
    targeting non-RS members — mostly large ISPs, with Hurricane
    Electric responsible for 24.2–59.4% of cases everywhere."""
    total = aggregate.ineffective_instances
    rows = []
    for asn, count in aggregate.top_culprits(limit):
        rows.append({
            "ixp": aggregate.ixp,
            "family": aggregate.family,
            "asn": asn,
            "name": network_name(asn),
            "instances": count,
            "share": count / total if total else 0.0,
        })
    return rows


def culprit_share(aggregate: SnapshotAggregate, asn: int) -> float:
    """Share of one AS in the IXP's ineffective instances (the paper
    tracks Hurricane Electric, AS6939)."""
    if not aggregate.ineffective_instances:
        return 0.0
    return (aggregate.ineffective_by_culprit.get(asn, 0)
            / aggregate.ineffective_instances)


def culprit_overlap(per_ixp_culprits: Dict[str, List[Dict[str, object]]],
                    first: str, second: str) -> List[int]:
    """§5.5: culprit ASNs appearing in the top-10 of two IXPs (the paper
    finds seven of the DE-CIX top-10 also in the AMS-IX top-10)."""
    def asn_set(key: str) -> set:
        return {row["asn"] for row in per_ixp_culprits.get(key, ())}
    return sorted(asn_set(first) & asn_set(second))
