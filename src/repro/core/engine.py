"""Parallel, cache-backed analysis engine.

The §4/§5 analyses decompose over independent ``(IXP, family)`` keys:
each key's :class:`~repro.core.aggregate.SnapshotAggregate` depends
only on that key's snapshot and dictionary. This module exploits that
twice:

* :func:`run_plans` fans per-key aggregation over a bounded
  ``ProcessPoolExecutor`` (``jobs`` workers, default 1 = the serial
  discipline) and reassembles results in submission order, so the
  outcome is value-identical to a serial run. Workers are strictly
  **read-only**: they verify snapshots without healing and report
  damaged dates back, and the coordinating process re-drives the
  store's normal quarantine path — manifest and quarantine writes stay
  single-process, exactly like the collection engine's coordinator
  model (PR 4).
* :class:`AggregateCache` persists computed aggregates in the
  :class:`~repro.collector.store.DatasetStore` under a key derived
  from the snapshot envelope's sha256, the dictionary digest, and
  :data:`AGGREGATOR_VERSION`. A probe costs two manifest lookups — no
  route data is read — so an analyze over an unchanged store skips
  both snapshot loading and aggregation. Cache entries ride the
  integrity envelope machinery: atomic writes, fsck awareness, and
  quarantine-on-damage falling back to recompute.

Worker processes are forked, so plans (snapshots, dictionaries) reach
them by inherited memory, not pickling; only the compact aggregates
travel back. Platforms without ``fork`` fall back to inline serial
execution — same values, no parallelism.
"""

from __future__ import annotations

import hashlib
import time
import types
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..collector.integrity import IntegrityError, SchemaDriftError
from ..collector.snapshot import Snapshot
from ..ixp.dictionary import CommunityDictionary
from .aggregate import SnapshotAggregate, aggregate_snapshot

Key = Tuple[str, int]  # (ixp key, family)

#: Version of the aggregation semantics baked into cache keys: bump it
#: whenever :func:`~repro.core.aggregate.aggregate_snapshot` changes
#: what it counts, and every stale cache entry misses automatically.
AGGREGATOR_VERSION = 2  # 2: filtered-route rejects excluded from counters

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    cache_events=reg.counter(
        "repro_analysis_cache_events_total",
        "Aggregate-cache probe outcomes "
        "(hit / miss / damaged / stale)", ("event",)),
    key_seconds=reg.histogram(
        "repro_analysis_key_seconds",
        "Wall-clock seconds aggregating one (IXP, family) key",
        ("ixp",)),
    inflight=reg.gauge(
        "repro_analysis_inflight_jobs",
        "Aggregation tasks currently in flight").labels(),
    tasks=reg.counter(
        "repro_analysis_tasks_total",
        "Aggregation tasks executed, by mode (inline / pooled)",
        ("mode",)),
))


def aggregate_cache_key(snapshot_sha256: str,
                        dictionary_sha256: str) -> str:
    """The content address of one cached aggregate: any change to the
    snapshot bytes, the dictionary, or the aggregator version moves
    the key, so stale entries can never be read — only orphaned."""
    material = (f"{AGGREGATOR_VERSION}:{snapshot_sha256}:"
                f"{dictionary_sha256}")
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass
class AggregationPlan:
    """One unit of engine work: aggregate one ``(IXP, family)`` key.

    Two task shapes share the dataclass:

    * **in-memory** — ``snapshot`` is set; the worker only aggregates;
    * **store-backed** — ``root``/``dates`` are set; the worker builds
      its own read-only store via ``store_factory(root)``, walks the
      candidate dates newest-first, loads + verifies (without healing)
      the first intact one, and aggregates it. The store factory must
      accept the root path as its only argument.
    """

    key: Key
    dictionary: CommunityDictionary
    snapshot: Optional[Snapshot] = None
    root: Optional[str] = None
    #: candidate snapshot dates, newest first (store-backed plans).
    dates: Tuple[str, ...] = ()
    store_factory: Optional[Callable] = None
    #: ship the loaded snapshot back to the coordinator (costs one
    #: pickle of the route table; aggregates alone are compact).
    return_snapshot: bool = True


@dataclass
class PlanResult:
    """What one plan produced, reassembled in plan order."""

    key: Key
    aggregate: Optional[SnapshotAggregate] = None
    snapshot: Optional[Snapshot] = None
    #: collection date actually aggregated (store-backed plans).
    date: Optional[str] = None
    #: envelope payload digest of the aggregated snapshot.
    snapshot_sha256: Optional[str] = None
    #: newer dates that failed verification, newest first — the
    #: coordinator re-reads these through the healing path so the
    #: quarantine happens exactly once, in one process.
    damaged_dates: Tuple[str, ...] = ()
    elapsed: float = 0.0


#: Plans handed to forked workers by inherited memory (fork happens
#: after this is set, so child processes see it without pickling).
_FORK_PLANS: Sequence[AggregationPlan] = ()


def _execute_plan(plan: AggregationPlan) -> PlanResult:
    result = PlanResult(key=plan.key)
    started = time.perf_counter()
    if plan.snapshot is not None:
        result.aggregate = aggregate_snapshot(plan.snapshot,
                                              plan.dictionary)
        result.snapshot = plan.snapshot
        result.date = plan.snapshot.captured_on
    else:
        store = (plan.store_factory or _default_store)(plan.root)
        damaged: List[str] = []
        ixp, family = plan.key
        for date in plan.dates:
            try:
                snapshot, digest = store.read_snapshot(
                    ixp, family, date, heal=False)
            except FileNotFoundError:
                continue
            except IntegrityError:
                damaged.append(date)
                continue
            result.aggregate = aggregate_snapshot(snapshot,
                                                  plan.dictionary)
            result.snapshot = snapshot if plan.return_snapshot else None
            result.date = date
            result.snapshot_sha256 = digest
            break
        result.damaged_dates = tuple(damaged)
    result.elapsed = time.perf_counter() - started
    return result


def _default_store(root):
    from ..collector.store import DatasetStore
    return DatasetStore(root)


def _execute_indexed(index: int) -> Tuple[int, PlanResult]:
    """Worker entry point: resolve the plan from forked memory."""
    return index, _execute_plan(_FORK_PLANS[index])


def _fork_context():
    try:
        import multiprocessing
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def run_plans(plans: Sequence[AggregationPlan],
              jobs: int = 1) -> List[PlanResult]:
    """Execute *plans* and return their results in plan order.

    ``jobs <= 1`` (or a single plan, or a platform without ``fork``)
    runs the exact same worker function inline; parallel and serial
    runs share one code path per plan and are value-identical.
    """
    global _FORK_PLANS
    metrics = _METRICS()
    context = _fork_context() if jobs > 1 and len(plans) > 1 else None
    if context is None:
        results = []
        for plan in plans:
            metrics.inflight.inc()
            try:
                result = _execute_plan(plan)
            finally:
                metrics.inflight.dec()
            metrics.tasks.labels("inline").inc()
            metrics.key_seconds.labels(plan.key[0]).observe(
                result.elapsed)
            results.append(result)
        return results

    ordered: List[Optional[PlanResult]] = [None] * len(plans)
    _FORK_PLANS = plans
    try:
        workers = min(jobs, len(plans))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            futures = []
            for index in range(len(plans)):
                metrics.inflight.inc()
                futures.append(pool.submit(_execute_indexed, index))
            for future in futures:
                try:
                    index, result = future.result()
                finally:
                    metrics.inflight.dec()
                metrics.tasks.labels("pooled").inc()
                metrics.key_seconds.labels(
                    plans[index].key[0]).observe(result.elapsed)
                ordered[index] = result
    finally:
        _FORK_PLANS = ()
    return [result for result in ordered if result is not None]


class AggregateCache:
    """Content-addressed :class:`SnapshotAggregate` cache over a
    :class:`~repro.collector.store.DatasetStore`.

    Keying: ``sha256(version : snapshot-digest : dictionary-digest)``.
    Invalidation is purely by construction — re-collecting a snapshot,
    editing the dictionary, or bumping :data:`AGGREGATOR_VERSION`
    changes the key, so the next analyze misses and recomputes; the
    orphaned entry is just dead weight for fsck to keep verifying.

    A probe inspects the newest snapshot *date* via the manifest only;
    a hit deserialises the compact cached counters and never touches
    route data. Damage in a cache entry (envelope failure or payload
    drift) quarantines the entry and reports a miss — corruption can
    therefore never change analysis output, only slow it down.
    """

    def __init__(self, store) -> None:
        self.store = store

    def probe(self, ixp: str, family: int,
              dictionary: CommunityDictionary,
              ) -> Optional[SnapshotAggregate]:
        """The cached aggregate for the newest collected snapshot of
        ``(ixp, family)`` under *dictionary*, or None on any miss."""
        metrics = _METRICS()
        dates = self.store.snapshot_dates(ixp, family)
        if not dates:
            metrics.cache_events.labels("miss").inc()
            return None
        digest = self.store.snapshot_digest(ixp, family, dates[-1])
        if digest is None:
            # the manifest cannot vouch for the newest file (legacy
            # store or unrecorded rewrite): treat as stale, recompute.
            metrics.cache_events.labels("stale").inc()
            return None
        key = aggregate_cache_key(digest, dictionary.digest())
        if not self.store.has_aggregate(ixp, key):
            metrics.cache_events.labels("miss").inc()
            return None
        try:
            payload = self.store.load_aggregate(ixp, key)
            aggregate = SnapshotAggregate.from_dict(
                payload["aggregate"])  # type: ignore[arg-type]
        except IntegrityError:
            # quarantined by the store; recompute from route data
            metrics.cache_events.labels("damaged").inc()
            return None
        except (KeyError, TypeError, ValueError) as error:
            drift = SchemaDriftError(
                f"aggregate cache payload does not deserialise: "
                f"{error}")
            self.store.quarantine_aggregate(ixp, key, drift)
            metrics.cache_events.labels("damaged").inc()
            return None
        metrics.cache_events.labels("hit").inc()
        return aggregate

    def put(self, ixp: str, family: int, date: str,
            snapshot_sha256: str, dictionary: CommunityDictionary,
            aggregate: SnapshotAggregate) -> None:
        """Persist one computed aggregate under its content address."""
        key = aggregate_cache_key(snapshot_sha256, dictionary.digest())
        self.store.save_aggregate(ixp, key, {
            "version": AGGREGATOR_VERSION,
            "key": key,
            "ixp": ixp,
            "family": family,
            "captured_on": date,
            "snapshot_sha256": snapshot_sha256,
            "dictionary_sha256": dictionary.digest(),
            "aggregate": aggregate.to_dict(),
        })
