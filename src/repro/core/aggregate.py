"""Single-pass snapshot aggregation.

All of §4/§5's analyses are views over the same per-snapshot counters, so
this module walks a snapshot's routes exactly once and materialises a
:class:`SnapshotAggregate` holding everything the analysis modules need:
Fig. 1 (defined/unknown), Fig. 2 (kinds), Fig. 3 (action/informational),
Fig. 4 (per-AS usage), Fig. 5 (per-community counts), Fig. 6/7
(ineffective targeting), and Table 2 (per-category usage).

Counting conventions follow the paper:

* an *instance* is one community on one route ("if there are two action
  communities in a route, we add two", §5.2);
* §5-level analyses consider **standard** communities only (§4 "we focus
  now on standard communities");
* a route "has an action community" if at least one of its standard
  communities is an IXP-defined action (§5.2);
* an action community is *ineffective* when its target is a single AS
  that has no session with this route server (§5.5).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..bgp.communities import Community, StandardCommunity
from ..collector.snapshot import Snapshot
from ..ixp.dictionary import CommunityDictionary
from ..ixp.taxonomy import ActionCategory, TargetKind
from .classification import Classifier


@dataclass
class SnapshotAggregate:
    """Every §4/§5 counter for one (IXP, family, day) snapshot."""

    ixp: str
    family: int
    captured_on: str

    # population
    member_count: int = 0
    route_count: int = 0
    prefix_count: int = 0
    rs_member_asns: FrozenSet[int] = frozenset()

    # Fig. 1: IXP-defined vs unknown (all community kinds)
    defined_count: int = 0
    unknown_count: int = 0

    # Fig. 2: kinds among IXP-defined instances
    kind_counts: Counter = field(default_factory=Counter)

    # Fig. 3: standard IXP-defined split
    std_action_count: int = 0
    std_informational_count: int = 0

    # Fig. 4: per-AS usage (standard action instances)
    per_as_action: Counter = field(default_factory=Counter)
    per_as_routes: Counter = field(default_factory=Counter)
    routes_with_action: int = 0
    ases_using_actions: Set[int] = field(default_factory=set)

    # Table 2 / §5.3: categories
    category_instances: Counter = field(default_factory=Counter)
    ases_by_category: Dict[ActionCategory, Set[int]] = field(
        default_factory=dict)

    # Fig. 5: per-community action counts
    community_instances: Counter = field(default_factory=Counter)

    # §5.5 / Figs. 6-7: ineffective targeting
    ineffective_instances: int = 0
    ineffective_by_community: Counter = field(default_factory=Counter)
    ineffective_by_culprit: Counter = field(default_factory=Counter)
    effective_targets: Counter = field(default_factory=Counter)
    ineffective_targets: Counter = field(default_factory=Counter)

    # -- derived ---------------------------------------------------------

    @property
    def total_instances(self) -> int:
        return self.defined_count + self.unknown_count

    @property
    def defined_share(self) -> float:
        total = self.total_instances
        return self.defined_count / total if total else 0.0

    @property
    def standard_share(self) -> float:
        """Standard share among IXP-defined instances (Fig. 2)."""
        total = sum(self.kind_counts.values())
        return self.kind_counts["standard"] / total if total else 0.0

    @property
    def action_share(self) -> float:
        """Action share among standard IXP-defined instances (Fig. 3)."""
        total = self.std_action_count + self.std_informational_count
        return self.std_action_count / total if total else 0.0

    @property
    def action_instances(self) -> int:
        return self.std_action_count

    @property
    def members_using_actions_fraction(self) -> float:
        if not self.member_count:
            return 0.0
        return len(self.ases_using_actions) / self.member_count

    @property
    def routes_with_action_fraction(self) -> float:
        return (self.routes_with_action / self.route_count
                if self.route_count else 0.0)

    @property
    def ineffective_share(self) -> float:
        """Fraction of action instances targeting non-RS members."""
        return (self.ineffective_instances / self.std_action_count
                if self.std_action_count else 0.0)

    def category_users_fraction(self, category: ActionCategory) -> float:
        users = self.ases_by_category.get(category, set())
        return len(users) / self.member_count if self.member_count else 0.0

    def top_communities(self, limit: int = 20) -> List[
            Tuple[StandardCommunity, int]]:
        """Fig. 5: the most-seen action communities."""
        return self.community_instances.most_common(limit)

    def top_ineffective_communities(self, limit: int = 20) -> List[
            Tuple[StandardCommunity, int]]:
        """Fig. 6: most-seen actions targeting non-RS members."""
        return self.ineffective_by_community.most_common(limit)

    def top_culprits(self, limit: int = 10) -> List[Tuple[int, int]]:
        """Fig. 7: ASes tagging the most ineffective communities."""
        return self.ineffective_by_culprit.most_common(limit)


def aggregate_snapshot(snapshot: Snapshot,
                       dictionary: CommunityDictionary,
                       classifier: Optional[Classifier] = None,
                       ) -> SnapshotAggregate:
    """Walk *snapshot* once and produce its :class:`SnapshotAggregate`."""
    classifier = classifier or Classifier(dictionary)
    aggregate = SnapshotAggregate(
        ixp=snapshot.ixp,
        family=snapshot.family,
        captured_on=snapshot.captured_on,
        member_count=snapshot.member_count,
        route_count=snapshot.route_count,
        prefix_count=snapshot.prefix_count,
        rs_member_asns=frozenset(snapshot.member_asns()),
    )
    rs_asns = aggregate.rs_member_asns
    for category in ActionCategory:
        aggregate.ases_by_category[category] = set()

    for route in snapshot.routes:
        peer = route.peer_asn
        aggregate.per_as_routes[peer] += 1
        route_has_action = False
        for classified in classifier.classify_route(route):
            if not classified.ixp_defined:
                aggregate.unknown_count += 1
                continue
            aggregate.defined_count += 1
            aggregate.kind_counts[classified.kind] += 1
            if classified.kind != "standard":
                continue
            if classified.is_informational:
                aggregate.std_informational_count += 1
                continue
            # standard IXP-defined action instance
            aggregate.std_action_count += 1
            route_has_action = True
            aggregate.per_as_action[peer] += 1
            aggregate.ases_using_actions.add(peer)
            category = classified.category
            assert category is not None
            aggregate.category_instances[category] += 1
            aggregate.ases_by_category[category].add(peer)
            community = classified.community
            aggregate.community_instances[community] += 1
            target_asn = classified.target_asn
            if target_asn is not None:
                if target_asn in rs_asns:
                    aggregate.effective_targets[target_asn] += 1
                else:
                    aggregate.ineffective_instances += 1
                    aggregate.ineffective_by_community[community] += 1
                    aggregate.ineffective_by_culprit[peer] += 1
                    aggregate.ineffective_targets[target_asn] += 1
        if route_has_action:
            aggregate.routes_with_action += 1
    return aggregate
