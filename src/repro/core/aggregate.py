"""Single-pass snapshot aggregation.

All of §4/§5's analyses are views over the same per-snapshot counters, so
this module walks a snapshot's routes exactly once and materialises a
:class:`SnapshotAggregate` holding everything the analysis modules need:
Fig. 1 (defined/unknown), Fig. 2 (kinds), Fig. 3 (action/informational),
Fig. 4 (per-AS usage), Fig. 5 (per-community counts), Fig. 6/7
(ineffective targeting), and Table 2 (per-category usage).

Counting conventions follow the paper:

* an *instance* is one community on one route ("if there are two action
  communities in a route, we add two", §5.2);
* §5-level analyses consider **standard** communities only (§4 "we focus
  now on standard communities");
* a route "has an action community" if at least one of its standard
  communities is an IXP-defined action (§5.2);
* an action community is *ineffective* when its target is a single AS
  that has no session with this route server (§5.5).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..bgp.communities import Community, StandardCommunity, parse_community
from ..collector.snapshot import Snapshot
from ..ixp.dictionary import CommunityDictionary
from ..ixp.taxonomy import ActionCategory, TargetKind
from .classification import Classifier


@dataclass
class SnapshotAggregate:
    """Every §4/§5 counter for one (IXP, family, day) snapshot."""

    ixp: str
    family: int
    captured_on: str

    # population
    member_count: int = 0
    route_count: int = 0
    prefix_count: int = 0
    rs_member_asns: FrozenSet[int] = frozenset()

    # Fig. 1: IXP-defined vs unknown (all community kinds)
    defined_count: int = 0
    unknown_count: int = 0

    # Fig. 2: kinds among IXP-defined instances
    kind_counts: Counter = field(default_factory=Counter)

    # Fig. 3: standard IXP-defined split
    std_action_count: int = 0
    std_informational_count: int = 0

    # Fig. 4: per-AS usage (standard action instances)
    per_as_action: Counter = field(default_factory=Counter)
    per_as_routes: Counter = field(default_factory=Counter)
    routes_with_action: int = 0
    ases_using_actions: Set[int] = field(default_factory=set)

    # Table 2 / §5.3: categories
    category_instances: Counter = field(default_factory=Counter)
    ases_by_category: Dict[ActionCategory, Set[int]] = field(
        default_factory=dict)

    # Fig. 5: per-community action counts
    community_instances: Counter = field(default_factory=Counter)

    # §5.5 / Figs. 6-7: ineffective targeting
    ineffective_instances: int = 0
    ineffective_by_community: Counter = field(default_factory=Counter)
    ineffective_by_culprit: Counter = field(default_factory=Counter)
    effective_targets: Counter = field(default_factory=Counter)
    ineffective_targets: Counter = field(default_factory=Counter)

    # -- derived ---------------------------------------------------------

    @property
    def total_instances(self) -> int:
        return self.defined_count + self.unknown_count

    @property
    def defined_share(self) -> float:
        total = self.total_instances
        return self.defined_count / total if total else 0.0

    @property
    def standard_share(self) -> float:
        """Standard share among IXP-defined instances (Fig. 2)."""
        total = sum(self.kind_counts.values())
        return self.kind_counts["standard"] / total if total else 0.0

    @property
    def action_share(self) -> float:
        """Action share among standard IXP-defined instances (Fig. 3)."""
        total = self.std_action_count + self.std_informational_count
        return self.std_action_count / total if total else 0.0

    @property
    def action_instances(self) -> int:
        return self.std_action_count

    @property
    def members_using_actions_fraction(self) -> float:
        if not self.member_count:
            return 0.0
        return len(self.ases_using_actions) / self.member_count

    @property
    def routes_with_action_fraction(self) -> float:
        return (self.routes_with_action / self.route_count
                if self.route_count else 0.0)

    @property
    def ineffective_share(self) -> float:
        """Fraction of action instances targeting non-RS members."""
        return (self.ineffective_instances / self.std_action_count
                if self.std_action_count else 0.0)

    def category_users_fraction(self, category: ActionCategory) -> float:
        users = self.ases_by_category.get(category, set())
        return len(users) / self.member_count if self.member_count else 0.0

    # Rankings break count ties deterministically (by community string /
    # ASN) instead of by counter insertion order, so a cache-restored or
    # parallel-computed aggregate ranks identically to a fresh one.

    def top_communities(self, limit: int = 20) -> List[
            Tuple[StandardCommunity, int]]:
        """Fig. 5: the most-seen action communities."""
        ranked = sorted(self.community_instances.items(),
                        key=lambda item: (-item[1], str(item[0])))
        return ranked[:limit]

    def top_ineffective_communities(self, limit: int = 20) -> List[
            Tuple[StandardCommunity, int]]:
        """Fig. 6: most-seen actions targeting non-RS members."""
        ranked = sorted(self.ineffective_by_community.items(),
                        key=lambda item: (-item[1], str(item[0])))
        return ranked[:limit]

    def top_culprits(self, limit: int = 10) -> List[Tuple[int, int]]:
        """Fig. 7: ASes tagging the most ineffective communities."""
        ranked = sorted(self.ineffective_by_culprit.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

    # -- serialisation (the aggregate-cache payload) ---------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON form persisted by the aggregate cache. Collections are
        sorted so the payload (and its digest) is deterministic."""
        def counts(counter: Counter) -> Dict[str, int]:
            return {str(key): count
                    for key, count in sorted(counter.items(),
                                             key=lambda kv: str(kv[0]))}

        return {
            "ixp": self.ixp,
            "family": self.family,
            "captured_on": self.captured_on,
            "member_count": self.member_count,
            "route_count": self.route_count,
            "prefix_count": self.prefix_count,
            "rs_member_asns": sorted(self.rs_member_asns),
            "defined_count": self.defined_count,
            "unknown_count": self.unknown_count,
            "kind_counts": counts(self.kind_counts),
            "std_action_count": self.std_action_count,
            "std_informational_count": self.std_informational_count,
            "per_as_action": counts(self.per_as_action),
            "per_as_routes": counts(self.per_as_routes),
            "routes_with_action": self.routes_with_action,
            "ases_using_actions": sorted(self.ases_using_actions),
            "category_instances": {
                category.value: count for category, count
                in sorted(self.category_instances.items(),
                          key=lambda kv: kv[0].value)},
            "ases_by_category": {
                category.value: sorted(asns) for category, asns
                in sorted(self.ases_by_category.items(),
                          key=lambda kv: kv[0].value)},
            "community_instances": counts(self.community_instances),
            "ineffective_instances": self.ineffective_instances,
            "ineffective_by_community": counts(
                self.ineffective_by_community),
            "ineffective_by_culprit": counts(self.ineffective_by_culprit),
            "effective_targets": counts(self.effective_targets),
            "ineffective_targets": counts(self.ineffective_targets),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SnapshotAggregate":
        """Inverse of :meth:`to_dict` (how the cache restores an
        aggregate without touching route data)."""
        def community_counter(record: Dict[str, int]) -> Counter:
            return Counter({parse_community(text): count
                            for text, count in record.items()})

        def asn_counter(record: Dict[str, int]) -> Counter:
            return Counter({int(asn): count
                            for asn, count in record.items()})

        return cls(
            ixp=str(payload["ixp"]),
            family=int(payload["family"]),              # type: ignore[arg-type]
            captured_on=str(payload["captured_on"]),
            member_count=int(payload["member_count"]),  # type: ignore[arg-type]
            route_count=int(payload["route_count"]),    # type: ignore[arg-type]
            prefix_count=int(payload["prefix_count"]),  # type: ignore[arg-type]
            rs_member_asns=frozenset(
                int(asn) for asn in payload["rs_member_asns"]),  # type: ignore[union-attr]
            defined_count=int(payload["defined_count"]),  # type: ignore[arg-type]
            unknown_count=int(payload["unknown_count"]),  # type: ignore[arg-type]
            kind_counts=Counter(
                {str(kind): int(count) for kind, count
                 in payload["kind_counts"].items()}),  # type: ignore[union-attr]
            std_action_count=int(payload["std_action_count"]),  # type: ignore[arg-type]
            std_informational_count=int(
                payload["std_informational_count"]),  # type: ignore[arg-type]
            per_as_action=asn_counter(payload["per_as_action"]),  # type: ignore[arg-type]
            per_as_routes=asn_counter(payload["per_as_routes"]),  # type: ignore[arg-type]
            routes_with_action=int(payload["routes_with_action"]),  # type: ignore[arg-type]
            ases_using_actions={
                int(asn) for asn in payload["ases_using_actions"]},  # type: ignore[union-attr]
            category_instances=Counter(
                {ActionCategory(category): int(count) for category, count
                 in payload["category_instances"].items()}),  # type: ignore[union-attr]
            ases_by_category={
                ActionCategory(category): {int(asn) for asn in asns}
                for category, asns
                in payload["ases_by_category"].items()},  # type: ignore[union-attr]
            community_instances=community_counter(
                payload["community_instances"]),  # type: ignore[arg-type]
            ineffective_instances=int(
                payload["ineffective_instances"]),  # type: ignore[arg-type]
            ineffective_by_community=community_counter(
                payload["ineffective_by_community"]),  # type: ignore[arg-type]
            ineffective_by_culprit=asn_counter(
                payload["ineffective_by_culprit"]),  # type: ignore[arg-type]
            effective_targets=asn_counter(
                payload["effective_targets"]),  # type: ignore[arg-type]
            ineffective_targets=asn_counter(
                payload["ineffective_targets"]),  # type: ignore[arg-type]
        )


#: Per-community-set delta, precomputed once per distinct set of
#: communities: (defined, unknown, kind items, std informational,
#: std action, category items, categories, community items,
#: effective-target items, ineffective count, ineffective-community
#: items, ineffective-target items). The peer-independent part of one
#: route's contribution to a :class:`SnapshotAggregate`.
_SetDelta = Tuple[int, int, Tuple, int, int, Tuple, Tuple, Tuple, Tuple,
                  int, Tuple, Tuple]


def _summarise_set(communities: Tuple[Community, ...], flat,
                   rs_asns: FrozenSet[int]) -> _SetDelta:
    """Classify one distinct community set into its aggregate delta."""
    n_defined = n_unknown = n_info = n_action = n_ineffective = 0
    kind_counts: Dict[str, int] = {}
    category_counts: Dict[ActionCategory, int] = {}
    community_counts: Dict[Community, int] = {}
    effective: Dict[int, int] = {}
    ineffective_communities: Dict[Community, int] = {}
    ineffective_targets: Dict[int, int] = {}
    for community in communities:
        kind, defined, std_action, informational, category, target_asn \
            = flat(community)
        if not defined:
            n_unknown += 1
            continue
        n_defined += 1
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        if kind != "standard":
            continue
        if informational:
            n_info += 1
            continue
        # standard IXP-defined action instance
        n_action += 1
        category_counts[category] = category_counts.get(category, 0) + 1
        community_counts[community] = \
            community_counts.get(community, 0) + 1
        if target_asn is not None:
            if target_asn in rs_asns:
                effective[target_asn] = effective.get(target_asn, 0) + 1
            else:
                n_ineffective += 1
                ineffective_communities[community] = \
                    ineffective_communities.get(community, 0) + 1
                ineffective_targets[target_asn] = \
                    ineffective_targets.get(target_asn, 0) + 1
    return (n_defined, n_unknown, tuple(kind_counts.items()),
            n_info, n_action, tuple(category_counts.items()),
            tuple(category_counts), tuple(community_counts.items()),
            tuple(effective.items()), n_ineffective,
            tuple(ineffective_communities.items()),
            tuple(ineffective_targets.items()))


def aggregate_snapshot(snapshot: Snapshot,
                       dictionary: CommunityDictionary,
                       classifier: Optional[Classifier] = None,
                       ) -> SnapshotAggregate:
    """Walk *snapshot* once and produce its :class:`SnapshotAggregate`.

    The same community set repeats across thousands of routes, so the
    walk deduplicates: each distinct (standard, extended, large)
    frozenset triple is classified once into a peer-independent delta
    (via the classifier's flat lookup table), then applied per route
    with plain integer updates.
    """
    classifier = classifier or Classifier(dictionary)
    aggregate = SnapshotAggregate(
        ixp=snapshot.ixp,
        family=snapshot.family,
        captured_on=snapshot.captured_on,
        member_count=snapshot.member_count,
        route_count=snapshot.route_count,
        prefix_count=snapshot.prefix_count,
        rs_member_asns=frozenset(snapshot.member_asns()),
    )
    rs_asns = aggregate.rs_member_asns
    for category in ActionCategory:
        aggregate.ases_by_category[category] = set()

    # bound locals: every counter touched per route resolved once
    flat = classifier.flat
    deltas: Dict[Tuple, _SetDelta] = {}
    deltas_get = deltas.get
    per_as_routes = aggregate.per_as_routes
    per_as_action = aggregate.per_as_action
    kind_counts = aggregate.kind_counts
    category_instances = aggregate.category_instances
    ases_by_category = aggregate.ases_by_category
    community_instances = aggregate.community_instances
    effective_targets = aggregate.effective_targets
    ineffective_by_community = aggregate.ineffective_by_community
    ineffective_by_culprit = aggregate.ineffective_by_culprit
    ineffective_targets = aggregate.ineffective_targets
    ases_using_actions_add = aggregate.ases_using_actions.add
    defined_total = unknown_total = info_total = action_total = 0
    routes_with_action = ineffective_total = 0

    for route in snapshot.routes:
        if route.filtered:
            # import-filter rejects retained for forensics carry no
            # weight in the §4/§5 counters (the paper aggregates what
            # the route server accepted)
            continue
        peer = route.peer_asn
        per_as_routes[peer] += 1
        set_key = (route.communities, route.extended_communities,
                   route.large_communities)
        delta = deltas_get(set_key)
        if delta is None:
            delta = _summarise_set(
                (*route.communities, *route.extended_communities,
                 *route.large_communities), flat, rs_asns)
            deltas[set_key] = delta
        (n_defined, n_unknown, kind_items, n_info, n_action,
         category_items, categories, community_items, effective_items,
         n_ineffective, ineffective_community_items,
         ineffective_target_items) = delta
        defined_total += n_defined
        unknown_total += n_unknown
        info_total += n_info
        for kind, count in kind_items:
            kind_counts[kind] += count
        if not n_action:
            continue
        action_total += n_action
        routes_with_action += 1
        per_as_action[peer] += n_action
        ases_using_actions_add(peer)
        for category in categories:
            ases_by_category[category].add(peer)
        for category, count in category_items:
            category_instances[category] += count
        for community, count in community_items:
            community_instances[community] += count
        for target, count in effective_items:
            effective_targets[target] += count
        if n_ineffective:
            ineffective_total += n_ineffective
            ineffective_by_culprit[peer] += n_ineffective
            for community, count in ineffective_community_items:
                ineffective_by_community[community] += count
            for target, count in ineffective_target_items:
                ineffective_targets[target] += count

    aggregate.defined_count = defined_total
    aggregate.unknown_count = unknown_total
    aggregate.std_informational_count = info_total
    aggregate.std_action_count = action_total
    aggregate.routes_with_action = routes_with_action
    aggregate.ineffective_instances = ineffective_total
    return aggregate
