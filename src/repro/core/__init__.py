"""Core analyses — the paper's contribution.

Classification of community instances, single-pass snapshot aggregation,
and one module per paper artefact (§4 prevalence, §5.2 usage, §5.3–5.4
favourites, §5.5 ineffective actions, Appendix A stability), tied
together by :class:`~repro.core.pipeline.Study`.
"""

from . import (
    blackholing,
    export,
    favorites,
    hygiene,
    ineffective,
    nonstandard,
    overhead,
    prevalence,
    stability,
    summary,
    temporal,
    usage,
)
from .aggregate import SnapshotAggregate, aggregate_snapshot
from .classification import ClassifiedCommunity, Classifier
from .engine import (
    AGGREGATOR_VERSION,
    AggregateCache,
    AggregationPlan,
    PlanResult,
    aggregate_cache_key,
    run_plans,
)
from .pipeline import Study, sanitised_series
from .report import format_table, paper_vs_measured, percent, render_share_bars

__all__ = [
    "Classifier", "ClassifiedCommunity",
    "SnapshotAggregate", "aggregate_snapshot",
    "Study", "sanitised_series",
    "AGGREGATOR_VERSION", "AggregateCache", "AggregationPlan",
    "PlanResult", "aggregate_cache_key", "run_plans",
    "format_table", "paper_vs_measured", "percent", "render_share_bars",
    "prevalence", "usage", "favorites", "ineffective", "summary",
    "stability", "nonstandard", "export", "temporal", "overhead",
    "hygiene", "blackholing",
]
