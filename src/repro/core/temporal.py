"""Temporal analyses over snapshot series.

The paper's Appendix A only quantifies *stability* (min/max variation);
this module supports the longitudinal questions its released dataset
enables: how the action share, the set of tagging ASes, and the
ineffective share move across the twelve weeks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..collector.snapshot import Snapshot, snapshots_sorted
from ..ixp.dictionary import CommunityDictionary
from .aggregate import SnapshotAggregate, aggregate_snapshot
from .classification import Classifier


def aggregate_series(snapshots: Sequence[Snapshot],
                     dictionary: CommunityDictionary,
                     ) -> List[SnapshotAggregate]:
    """Aggregate a chronological series, sharing one classifier cache."""
    classifier = Classifier(dictionary)
    return [aggregate_snapshot(snapshot, dictionary, classifier)
            for snapshot in snapshots_sorted(snapshots)]


def share_trend(aggregates: Sequence[SnapshotAggregate],
                ) -> List[Dict[str, object]]:
    """Per-snapshot headline shares — one row per date."""
    rows = []
    for aggregate in aggregates:
        rows.append({
            "date": aggregate.captured_on,
            "members": aggregate.member_count,
            "routes": aggregate.route_count,
            "defined_share": aggregate.defined_share,
            "action_share": aggregate.action_share,
            "members_using_actions":
                aggregate.members_using_actions_fraction,
            "ineffective_share": aggregate.ineffective_share,
        })
    return rows


@dataclass(frozen=True)
class TaggerChurn:
    """Week-over-week movement in the set of action-tagging ASes."""

    date: str
    joined: Tuple[int, ...]
    left: Tuple[int, ...]
    stable: int

    @property
    def churn_count(self) -> int:
        return len(self.joined) + len(self.left)


def tagger_churn(aggregates: Sequence[SnapshotAggregate],
                 ) -> List[TaggerChurn]:
    """Which ASes started/stopped using action communities between
    consecutive snapshots."""
    churn: List[TaggerChurn] = []
    previous: Optional[Set[int]] = None
    for aggregate in aggregates:
        current = set(aggregate.ases_using_actions)
        if previous is not None:
            churn.append(TaggerChurn(
                date=aggregate.captured_on,
                joined=tuple(sorted(current - previous)),
                left=tuple(sorted(previous - current)),
                stable=len(current & previous)))
        previous = current
    return churn


def trend_slope(rows: Sequence[Dict[str, object]], key: str) -> float:
    """Least-squares slope of a metric per snapshot step (index units).

    Positive → the metric grows over the window.
    """
    values = [float(row[key]) for row in rows]
    n = len(values)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    numerator = sum((i - mean_x) * (v - mean_y)
                    for i, v in enumerate(values))
    denominator = sum((i - mean_x) ** 2 for i in range(n))
    return numerator / denominator if denominator else 0.0


def persistent_targets(aggregates: Sequence[SnapshotAggregate],
                       minimum_presence: float = 1.0) -> List[int]:
    """Target ASNs of ineffective communities present in at least
    ``minimum_presence`` of the snapshots — the §5.6 "defensive"
    avoid-list entries that stay tagged week after week."""
    if not aggregates:
        return []
    counts: Dict[int, int] = {}
    for aggregate in aggregates:
        for target in aggregate.ineffective_targets:
            counts[target] = counts.get(target, 0) + 1
    threshold = minimum_presence * len(aggregates)
    return sorted(target for target, count in counts.items()
                  if count >= threshold)
