"""Extension analysis: extended and large action communities.

The paper explicitly scopes these out ("leaving the others for future
work", §4). This module implements that future work on the same
aggregates' inputs: how many members mirror their standard actions into
RFC 8092 large (or RFC 4360 extended) encodings, which categories the
mirrors express, and whether the mirrored targets are consistent with
the standard ones.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..bgp.communities import LargeCommunity, StandardCommunity
from ..collector.snapshot import Snapshot
from ..ixp.dictionary import CommunityDictionary
from ..ixp.taxonomy import ActionCategory, TargetKind
from .classification import Classifier


@dataclass
class NonStandardAggregate:
    """Counters over extended/large IXP-defined action instances."""

    ixp: str
    family: int
    large_action_instances: int = 0
    extended_action_instances: int = 0
    ases_using_large: Set[int] = field(default_factory=set)
    ases_using_extended: Set[int] = field(default_factory=set)
    category_instances: Counter = field(default_factory=Counter)
    #: routes where a large/extended action appears alongside a standard
    #: action naming the same target (the "mirror" pattern).
    mirrored_routes: int = 0
    #: routes carrying a non-standard action with NO standard mirror —
    #: semantics only expressible in the wider encodings (e.g. 32-bit
    #: targets).
    exclusive_routes: int = 0

    @property
    def total_instances(self) -> int:
        return self.large_action_instances + self.extended_action_instances

    @property
    def mirror_consistency(self) -> float:
        total = self.mirrored_routes + self.exclusive_routes
        return self.mirrored_routes / total if total else 0.0


def aggregate_nonstandard(snapshot: Snapshot,
                          dictionary: CommunityDictionary,
                          ) -> NonStandardAggregate:
    """Walk *snapshot* and count extended/large action usage."""
    classifier = Classifier(dictionary)
    aggregate = NonStandardAggregate(ixp=snapshot.ixp,
                                     family=snapshot.family)
    for route in snapshot.routes:
        standard_targets: Set[int] = set()
        nonstd_targets: Set[int] = set()
        has_nonstd = False
        for classified in classifier.classify_route(route):
            if not classified.is_action:
                continue
            target_asn = classified.target_asn
            if classified.kind == "standard":
                if target_asn is not None:
                    standard_targets.add(target_asn)
                continue
            has_nonstd = True
            if classified.kind == "large":
                aggregate.large_action_instances += 1
                aggregate.ases_using_large.add(route.peer_asn)
            else:
                aggregate.extended_action_instances += 1
                aggregate.ases_using_extended.add(route.peer_asn)
            category = classified.category
            assert category is not None
            aggregate.category_instances[category] += 1
            if target_asn is not None:
                nonstd_targets.add(target_asn)
        if has_nonstd:
            if nonstd_targets and nonstd_targets <= standard_targets:
                aggregate.mirrored_routes += 1
            else:
                aggregate.exclusive_routes += 1
    return aggregate


def nonstandard_summary(
        snapshots_and_dictionaries: Iterable[
            Tuple[Snapshot, CommunityDictionary]],
) -> List[Dict[str, object]]:
    """Row view of the extension analysis, one row per snapshot."""
    rows = []
    for snapshot, dictionary in snapshots_and_dictionaries:
        aggregate = aggregate_nonstandard(snapshot, dictionary)
        rows.append({
            "ixp": aggregate.ixp,
            "family": aggregate.family,
            "large_instances": aggregate.large_action_instances,
            "extended_instances": aggregate.extended_action_instances,
            "ases_using_large": len(aggregate.ases_using_large),
            "ases_using_extended": len(aggregate.ases_using_extended),
            "mirror_consistency": aggregate.mirror_consistency,
            "dna_share": _category_share(
                aggregate, ActionCategory.DO_NOT_ANNOUNCE_TO),
        })
    return rows


def _category_share(aggregate: NonStandardAggregate,
                    category: ActionCategory) -> float:
    total = sum(aggregate.category_instances.values())
    return (aggregate.category_instances[category] / total
            if total else 0.0)
