"""§5.3–§5.4 analyses: Table 2, per-category occurrences, and Fig. 5.

Which action types ASes use, how many instances each type contributes,
and which specific communities (and therefore targets) top the charts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..ixp.dictionary import CommunityDictionary
from ..ixp.taxonomy import ActionCategory, TargetKind
from ..workload.registry import network_name
from .aggregate import SnapshotAggregate

#: Table 2 row order.
CATEGORY_ORDER = (
    ActionCategory.DO_NOT_ANNOUNCE_TO,
    ActionCategory.ANNOUNCE_ONLY_TO,
    ActionCategory.PREPEND_TO,
    ActionCategory.BLACKHOLING,
)


def ases_per_action_type(
        aggregates: Iterable[SnapshotAggregate]) -> List[Dict[str, object]]:
    """Table 2: number and fraction of RS member ASes using each action
    community type."""
    rows = []
    for aggregate in aggregates:
        for category in CATEGORY_ORDER:
            users = aggregate.ases_by_category.get(category, set())
            rows.append({
                "ixp": aggregate.ixp,
                "family": aggregate.family,
                "category": category.value,
                "ases": len(users),
                "fraction": (len(users) / aggregate.member_count
                             if aggregate.member_count else 0.0),
            })
    return rows


def occurrences_per_action_type(
        aggregates: Iterable[SnapshotAggregate]) -> List[Dict[str, object]]:
    """§5.3 in-text numbers: occurrences of each action type.

    The paper: do-not-announce-to 66.6–92.0%, announce-only-to
    17.7–31.4%, prepend-to <1.9%, blackholing <0.4% (IPv4).
    """
    rows = []
    for aggregate in aggregates:
        total = sum(aggregate.category_instances.values())
        for category in CATEGORY_ORDER:
            count = aggregate.category_instances.get(category, 0)
            rows.append({
                "ixp": aggregate.ixp,
                "family": aggregate.family,
                "category": category.value,
                "instances": count,
                "share": count / total if total else 0.0,
            })
    return rows


def top_action_communities(
        aggregate: SnapshotAggregate,
        dictionary: CommunityDictionary,
        limit: int = 20) -> List[Dict[str, object]]:
    """Fig. 5: the top-N most used action communities at one IXP, with
    category, target, and whether the target is at the RS."""
    rows = []
    total = aggregate.action_instances
    for community, count in aggregate.top_communities(limit):
        semantics = dictionary.lookup(community)
        target = semantics.target if semantics else None
        target_asn = (target.asn if target is not None
                      and target.kind is TargetKind.PEER_AS else None)
        rows.append({
            "ixp": aggregate.ixp,
            "family": aggregate.family,
            "community": str(community),
            "category": (semantics.category.value
                         if semantics and semantics.category else None),
            "target": str(target) if target is not None else None,
            "target_name": (network_name(target_asn)
                            if target_asn is not None else None),
            "target_at_rs": (target_asn in aggregate.rs_member_asns
                             if target_asn is not None else None),
            "instances": count,
            "share": count / total if total else 0.0,
        })
    return rows


def top_target_intersection(per_ixp_tops: Dict[str, List[Dict[str, object]]],
                            ) -> List[int]:
    """§5.4: targeted ASNs common to the top lists of *all* given IXPs
    (the paper finds six common avoided ASes among the four largest)."""
    sets = []
    for rows in per_ixp_tops.values():
        asns = set()
        for row in rows:
            target = row.get("target")
            if isinstance(target, str) and target.startswith("AS"):
                asns.add(int(target[2:]))
        sets.append(asns)
    if not sets:
        return []
    common = set.intersection(*sets)
    return sorted(common)
