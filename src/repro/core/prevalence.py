"""§4 prevalence analyses: Figures 1, 2, and 3.

Each function consumes :class:`~repro.core.aggregate.SnapshotAggregate`
objects (one per IXP/family) and returns plain row dicts — the exact
series the paper's stacked-bar figures plot.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .aggregate import SnapshotAggregate


def ixp_defined_vs_unknown(
        aggregates: Iterable[SnapshotAggregate]) -> List[Dict[str, object]]:
    """Fig. 1: share of IXP-defined vs unknown community instances.

    The paper's headline: >80% of observed community instances have a
    well-defined meaning at the IXP.
    """
    rows = []
    for aggregate in aggregates:
        total = aggregate.total_instances
        rows.append({
            "ixp": aggregate.ixp,
            "family": aggregate.family,
            "total_instances": total,
            "defined": aggregate.defined_count,
            "unknown": aggregate.unknown_count,
            "defined_share": aggregate.defined_share,
            "unknown_share": (aggregate.unknown_count / total
                              if total else 0.0),
        })
    return rows


def community_kinds(
        aggregates: Iterable[SnapshotAggregate]) -> List[Dict[str, object]]:
    """Fig. 2: standard vs extended vs large among IXP-defined instances.

    Standard communities consistently exceed 80% in the paper.
    """
    rows = []
    for aggregate in aggregates:
        total = sum(aggregate.kind_counts.values())
        def share(kind: str) -> float:
            return aggregate.kind_counts[kind] / total if total else 0.0
        rows.append({
            "ixp": aggregate.ixp,
            "family": aggregate.family,
            "total_defined": total,
            "standard": aggregate.kind_counts["standard"],
            "extended": aggregate.kind_counts["extended"],
            "large": aggregate.kind_counts["large"],
            "standard_share": share("standard"),
            "extended_share": share("extended"),
            "large_share": share("large"),
        })
    return rows


def action_vs_informational(
        aggregates: Iterable[SnapshotAggregate]) -> List[Dict[str, object]]:
    """Fig. 3: action vs informational among standard IXP-defined.

    Action communities represent at least two-thirds in every IXP (§5.1),
    and more than 95% at Netnod and BCIX.
    """
    rows = []
    for aggregate in aggregates:
        total = (aggregate.std_action_count
                 + aggregate.std_informational_count)
        rows.append({
            "ixp": aggregate.ixp,
            "family": aggregate.family,
            "total_standard_defined": total,
            "action": aggregate.std_action_count,
            "informational": aggregate.std_informational_count,
            "action_share": aggregate.action_share,
            "informational_share": (
                aggregate.std_informational_count / total if total else 0.0),
        })
    return rows
