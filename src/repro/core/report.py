"""Plain-text rendering of the paper's tables and figure series.

Benchmarks and examples print through these helpers so the output reads
like the paper's artefacts ("who wins, by roughly what factor"), with a
paper-reference column where available.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render dict-rows as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        if value is None:
            return "-"
        return str(value)

    rendered = [[cell(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i])
                       for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(columns))))
    return "\n".join(lines)


def percent(value: float) -> str:
    return f"{value * 100:.1f}%"


def paper_vs_measured(rows: Iterable[Mapping[str, object]],
                      pairs: Sequence[Sequence[str]],
                      key_column: str = "ixp",
                      title: Optional[str] = None) -> str:
    """A compact paper-vs-measured comparison table.

    ``pairs`` is a sequence of (measured_column, paper_column) names;
    each becomes two adjacent columns.
    """
    out_rows: List[Dict[str, object]] = []
    for row in rows:
        out: Dict[str, object] = {key_column: row.get(key_column)}
        for measured_col, paper_col in pairs:
            out[measured_col] = row.get(measured_col)
            out[f"paper:{paper_col}"] = row.get(paper_col)
        out_rows.append(out)
    return format_table(out_rows, title=title)


def render_share_bars(rows: Sequence[Mapping[str, object]],
                      label_key: str, share_keys: Sequence[str],
                      width: int = 40) -> str:
    """ASCII stacked bars — the closest text analogue of Figs. 1–3."""
    lines = []
    glyphs = "#*o.@+"
    for row in rows:
        label = str(row.get(label_key))
        shares = [float(row.get(key, 0.0)) for key in share_keys]
        bar = ""
        for index, share in enumerate(shares):
            bar += glyphs[index % len(glyphs)] * round(share * width)
        legend = " ".join(f"{key}={share * 100:.1f}%"
                          for key, share in zip(share_keys, shares))
        lines.append(f"{label:>14} |{bar:<{width}}| {legend}")
    return "\n".join(lines)
