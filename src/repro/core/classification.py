"""Community classification against an IXP dictionary.

The first stage of the paper's pipeline: every community instance seen on
a route is classified along three axes —

1. **kind**: standard / extended / large (Fig. 2);
2. **IXP-defined vs unknown**: does the IXP's dictionary resolve it
   (Fig. 1)?
3. **role**: informational vs action, and for actions the category and
   target (Figs. 3, 5–7, Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..bgp.communities import Community
from ..bgp.route import Route
from ..ixp.dictionary import CommunityDictionary, Semantics
from ..ixp.taxonomy import ActionCategory, CommunityRole, Target, TargetKind

#: Flat classification record:
#: ``(kind, defined, standard_action, informational, category, target_asn)``.
#: Everything the aggregation hot path needs, pre-resolved into a plain
#: tuple so the per-instance cost is one dict probe + tuple unpacking
#: instead of dataclass construction and property dispatch.
FlatRecord = Tuple[str, bool, bool, bool, Optional[ActionCategory],
                   Optional[int]]


def _flatten(community: Community,
             semantics: Optional[Semantics]) -> FlatRecord:
    kind = community.kind
    if semantics is None:
        return (kind, False, False, False, None, None)
    target = semantics.target
    target_asn = (target.asn if target is not None
                  and target.kind is TargetKind.PEER_AS else None)
    return (kind, True,
            kind == "standard" and semantics.is_action,
            semantics.role is CommunityRole.INFORMATIONAL,
            semantics.category, target_asn)


@dataclass(frozen=True)
class ClassifiedCommunity:
    """One community instance with its classification."""

    community: Community
    kind: str                          # "standard" | "extended" | "large"
    semantics: Optional[Semantics]     # None → unknown to the IXP

    @property
    def ixp_defined(self) -> bool:
        return self.semantics is not None

    @property
    def is_action(self) -> bool:
        return self.semantics is not None and self.semantics.is_action

    @property
    def is_informational(self) -> bool:
        return (self.semantics is not None
                and self.semantics.role is CommunityRole.INFORMATIONAL)

    @property
    def category(self) -> Optional[ActionCategory]:
        return self.semantics.category if self.semantics else None

    @property
    def target(self) -> Optional[Target]:
        return self.semantics.target if self.semantics else None

    @property
    def target_asn(self) -> Optional[int]:
        """The targeted peer ASN, when the target is a single AS."""
        target = self.target
        if target is not None and target.kind is TargetKind.PEER_AS:
            return target.asn
        return None


class Classifier:
    """Memoising classifier for one IXP dictionary.

    The same community value appears on thousands of routes, so lookups
    are cached; a full snapshot classifies in one pass.

    Two lookup planes share one dictionary:

    * :meth:`classify` returns the rich :class:`ClassifiedCommunity`
      view (memoised — repeated calls return the same object);
    * :meth:`flat` returns the pre-resolved :data:`FlatRecord` tuple
      the aggregation hot path consumes. The table is seeded from every
      concrete dictionary entry up front; rule matches (and unknowns)
      are resolved once on first sight and memoised, since rule target
      spaces are too large to pre-expand.
    """

    def __init__(self, dictionary: CommunityDictionary) -> None:
        self.dictionary = dictionary
        self._cache: Dict[Community, ClassifiedCommunity] = {}
        self._flat: Dict[Community, FlatRecord] = {
            entry.community: _flatten(entry.community, entry.semantics)
            for entry in dictionary.entries()}

    def flat(self, community: Community) -> FlatRecord:
        """The :data:`FlatRecord` for *community* (memoised)."""
        record = self._flat.get(community)
        if record is None:
            record = _flatten(community, self.dictionary.lookup(community))
            self._flat[community] = record
        return record

    def classify(self, community: Community) -> ClassifiedCommunity:
        cached = self._cache.get(community)
        if cached is None:
            cached = ClassifiedCommunity(
                community=community,
                kind=community.kind,
                semantics=self.dictionary.lookup(community),
            )
            self._cache[community] = cached
        return cached

    def classify_route(self, route: Route) -> List[ClassifiedCommunity]:
        """Classify every community instance on *route* (all flavours)."""
        return [self.classify(community)
                for community in route.all_communities()]

    def iter_action_communities(
            self, route: Route) -> Iterator[ClassifiedCommunity]:
        for classified in self.classify_route(route):
            if classified.is_action:
                yield classified
