"""Table 1: the studied IXPs in numbers.

Builds the per-IXP summary (members, members at RS, observed prefixes,
observed routes, per family) from latest snapshots, alongside the
paper's reference values for paper-vs-measured reporting.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..collector.snapshot import Snapshot
from ..ixp.profiles import IxpProfile, get_profile


def ixp_summary(snapshot_v4: Snapshot,
                snapshot_v6: Optional[Snapshot] = None,
                profile: Optional[IxpProfile] = None) -> Dict[str, object]:
    """One Table 1 row from an IXP's latest v4 (and optional v6)
    snapshots."""
    profile = profile or get_profile(snapshot_v4.ixp)
    row: Dict[str, object] = {
        "ixp": profile.name,
        "key": profile.key,
        "location": profile.location,
        "members_rs_v4": snapshot_v4.member_count,
        "prefixes_v4": snapshot_v4.prefix_count,
        "routes_v4": snapshot_v4.route_count,
        "paper_members_total": profile.paper.members_total,
        "paper_members_rs_v4": profile.paper.members_rs_v4,
        "paper_prefixes_v4": profile.paper.prefixes_v4,
        "paper_routes_v4": profile.paper.routes_v4,
        "avg_daily_traffic": profile.paper.avg_daily_traffic,
    }
    if snapshot_v6 is not None:
        row.update({
            "members_rs_v6": snapshot_v6.member_count,
            "prefixes_v6": snapshot_v6.prefix_count,
            "routes_v6": snapshot_v6.route_count,
            "paper_members_rs_v6": profile.paper.members_rs_v6,
            "paper_prefixes_v6": profile.paper.prefixes_v6,
            "paper_routes_v6": profile.paper.routes_v6,
        })
    return row


def summary_table(snapshots: Iterable[Snapshot]) -> List[Dict[str, object]]:
    """Table 1 from a mixed collection of latest snapshots (grouped by
    IXP, v4 and v6 merged into one row per IXP)."""
    by_ixp: Dict[str, Dict[int, Snapshot]] = {}
    for snapshot in snapshots:
        by_ixp.setdefault(snapshot.ixp, {})[snapshot.family] = snapshot
    rows = []
    for ixp_key in sorted(by_ixp):
        families = by_ixp[ixp_key]
        if 4 not in families:
            continue
        rows.append(ixp_summary(families[4], families.get(6)))
    return rows


def route_to_prefix_ratio(row: Dict[str, object], family: int = 4) -> float:
    """Routes per distinct prefix — 1.0 at AMS-IX, up to ~2 at DE-CIX."""
    routes = row.get(f"routes_v{family}", 0)
    prefixes = row.get(f"prefixes_v{family}", 0)
    return routes / prefixes if prefixes else 0.0  # type: ignore[operator]
