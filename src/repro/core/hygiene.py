"""§5.6 counterfactual: member-database-driven community hygiene.

The paper's operator interviews examine whether an IXP member database
(PeeringDB / IXPDB) could eliminate ineffective communities, and list
three objections: the databases "are not updated in real time, which
could lead to traffic disruptions"; pruning requires out-of-router
processing; and every (dis)appearance of a to-avoid AS forces the
operator to re-announce *all* of its routes.

This module simulates exactly that proposal so the objections become
measurable:

* a :class:`MemberDatabase` that sees RS membership with a configurable
  staleness lag;
* :func:`simulate_hygiene` — operators prune avoid-targets the database
  says are absent; per day we measure

  - the **residual waste**: tags kept because the stale database still
    lists a departed member,
  - the **disruption risk**: tags pruned although the target joined the
    RS within the staleness window (precisely the outage the operators
    fear),
  - the **update churn**: UPDATE messages each operator must send when
    its pruned tag set changes (via the real packing logic in
    :mod:`repro.routeserver.updates`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..workload.generator import SnapshotGenerator


@dataclass
class MemberDatabase:
    """An IXPDB/PeeringDB-style membership view with update lag.

    ``staleness_days`` models the database's refresh delay: a query on
    day *d* reflects the route server's membership on day
    ``d - staleness_days``.
    """

    generator: SnapshotGenerator
    family: int
    staleness_days: int = 7
    _cache: Dict[int, FrozenSet[int]] = field(default_factory=dict)

    def membership(self, day: int) -> FrozenSet[int]:
        effective = max(0, day - self.staleness_days)
        if effective not in self._cache:
            self._cache[effective] = frozenset(
                member.asn for member in
                self.generator.members_present(self.family, effective))
        return self._cache[effective]

    def lists_member(self, asn: int, day: int) -> bool:
        return asn in self.membership(day)


@dataclass(frozen=True)
class HygieneDay:
    """One day's outcome of database-driven avoid-list pruning."""

    day: int
    #: distinct (tagger, target) pairs kept because the DB lists the
    #: target as a member.
    kept_pairs: int
    #: pairs pruned because the DB says the target is absent.
    pruned_pairs: int
    #: kept pairs whose target is NOT actually at the RS today — the
    #: residual waste the stale database fails to remove.
    residual_waste_pairs: int
    #: pruned pairs whose target IS at the RS today — pruning them
    #: breaks the operator's policy (the §5.6 disruption fear).
    disruption_pairs: int
    #: UPDATE messages operators must emit because their tag set changed
    #: vs the previous day (re-announcing every covered route).
    update_messages: int

    @property
    def residual_waste_share(self) -> float:
        return (self.residual_waste_pairs / self.kept_pairs
                if self.kept_pairs else 0.0)

    @property
    def disruption_share(self) -> float:
        return (self.disruption_pairs / self.pruned_pairs
                if self.pruned_pairs else 0.0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "day": self.day,
            "kept_pairs": self.kept_pairs,
            "pruned_pairs": self.pruned_pairs,
            "residual_waste_pairs": self.residual_waste_pairs,
            "disruption_pairs": self.disruption_pairs,
            "update_messages": self.update_messages,
            "residual_waste_share": self.residual_waste_share,
            "disruption_share": self.disruption_share,
        }


def _avoid_pairs(generator: SnapshotGenerator,
                 family: int) -> List[Tuple[int, int]]:
    """(tagger, target) pairs from the avoid tags of every behaviour."""
    pairs: List[Tuple[int, int]] = []
    for behavior in generator.behaviors(family).values():
        if not behavior.uses_actions:
            continue
        for tag in behavior.route_tags:
            if tag.asn == 0 and tag.value not in (0,):
                spec_dna_all = tag.value == min(
                    generator.profile.rs_asn, 0xFFFF)
                if not spec_dna_all:
                    pairs.append((behavior.asn, tag.value))
    return pairs


def _routes_per_member(generator: SnapshotGenerator, family: int,
                       day: int) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for member in generator.members_present(family, day):
        counts[member.asn] = len(
            generator.announcements_for(member, family, day))
    return counts


def simulate_hygiene(generator: SnapshotGenerator, family: int,
                     days: Sequence[int],
                     staleness_days: int = 7) -> List[HygieneDay]:
    """Run the §5.6 database-pruning proposal over *days*."""
    database = MemberDatabase(generator, family,
                              staleness_days=staleness_days)
    pairs = _avoid_pairs(generator, family)
    previous_kept: Optional[Dict[int, FrozenSet[int]]] = None
    results: List[HygieneDay] = []
    for day in days:
        at_rs_today = frozenset(
            member.asn for member in
            generator.members_present(family, day))
        db_view = database.membership(day)
        kept: Dict[int, Set[int]] = {}
        pruned: Dict[int, Set[int]] = {}
        for tagger, target in pairs:
            if tagger not in at_rs_today:
                continue
            bucket = kept if target in db_view else pruned
            bucket.setdefault(tagger, set()).add(target)
        kept_pairs = sum(len(v) for v in kept.values())
        pruned_pairs = sum(len(v) for v in pruned.values())
        residual = sum(
            1 for tagger, targets in kept.items()
            for target in targets if target not in at_rs_today)
        disruption = sum(
            1 for tagger, targets in pruned.items()
            for target in targets if target in at_rs_today)

        # churn: any tagger whose kept-set changed re-announces its
        # whole table; approximate UPDATE count from its route count
        # and ~120 prefixes per message (measured packing density).
        update_messages = 0
        if previous_kept is not None:
            route_counts = _routes_per_member(generator, family, day)
            for tagger in set(kept) | set(previous_kept):
                now = frozenset(kept.get(tagger, frozenset()))
                before = previous_kept.get(tagger, frozenset())
                if now != before:
                    routes = route_counts.get(tagger, 0)
                    update_messages += max(1, routes // 120)
        previous_kept = {tagger: frozenset(targets)
                         for tagger, targets in kept.items()}
        results.append(HygieneDay(
            day=day, kept_pairs=kept_pairs, pruned_pairs=pruned_pairs,
            residual_waste_pairs=residual, disruption_pairs=disruption,
            update_messages=update_messages))
    return results


def staleness_sweep(generator: SnapshotGenerator, family: int,
                    day: int,
                    staleness_values: Sequence[int] = (0, 1, 7, 30),
                    ) -> List[Dict[str, object]]:
    """Disruption-vs-waste trade-off as the database lag varies.

    A perfectly fresh database (staleness 0) removes all waste with no
    disruptions; real-world lags trade one for the other — the
    quantified form of the operators' §5.6 objection.
    """
    rows: List[Dict[str, object]] = []
    for staleness in staleness_values:
        outcome = simulate_hygiene(generator, family, [day],
                                   staleness_days=staleness)[0]
        rows.append({
            "staleness_days": staleness,
            "kept_pairs": outcome.kept_pairs,
            "pruned_pairs": outcome.pruned_pairs,
            "residual_waste_pairs": outcome.residual_waste_pairs,
            "disruption_pairs": outcome.disruption_pairs,
        })
    return rows
