"""Figure/table data export (CSV and JSON).

The paper releases its dataset for reproduction; this module gives the
same courtesy: every figure/table view of a :class:`Study` can be
written as plain CSV (one file per artefact) or one JSON bundle, ready
for external plotting.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .pipeline import Study

#: artefact name → Study method building its rows (per family).
_FAMILY_ARTEFACTS = (
    ("fig1_defined_vs_unknown", "ixp_defined_vs_unknown"),
    ("fig2_community_kinds", "community_kinds"),
    ("fig3_action_vs_informational", "action_vs_informational"),
    ("fig4a_ases_using_actions", "ases_using_actions"),
    ("fig4b_concentration", "usage_concentration"),
    ("fig4c_correlation", "prefix_community_correlation"),
    ("table2_ases_per_type", "table2"),
    ("s53_occurrences_per_type", "occurrences_per_action_type"),
    ("s55_ineffective_summary", "ineffective_summary"),
)

#: per-IXP artefacts (name, Study method, limit kwarg).
_PER_IXP_ARTEFACTS = (
    ("fig5_top_communities", "top_action_communities", 20),
    ("fig6_top_ineffective", "top_ineffective_communities", 20),
    ("fig7_top_culprits", "top_culprit_ases", 10),
)


def artefact_names() -> List[str]:
    """Every artefact name a :func:`study_rows` bundle contains, in
    bundle order (the query service's figure index is built from
    this, so the two can never drift)."""
    return (["table1_summary"]
            + [name for name, _method in _FAMILY_ARTEFACTS]
            + [name for name, _method, _limit in _PER_IXP_ARTEFACTS]
            + ["fig4b_curves"])


def dumps_rows(payload: object) -> str:
    """The canonical JSON encoding of one exported artefact (or a
    whole bundle).

    This is the single serialization authority shared by the file
    export below and the query service's HTTP bodies
    (:mod:`repro.query.views`): same encoder options, same key order
    (insertion), so a given artefact renders to identical bytes
    wherever it is served from — which is what lets the service derive
    strong ETags from the dataset's sha256 content addresses instead
    of hashing response bodies.
    """
    return json.dumps(payload, indent=1)


def write_csv(rows: Sequence[Mapping[str, object]], path: Path) -> Path:
    """Write dict-rows to one CSV file (columns from the first row)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return path
    columns = list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns,
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def study_rows(study: Study,
               families: Sequence[int] = (4, 6),
               ) -> Dict[str, List[Dict[str, object]]]:
    """All artefact rows of *study*, keyed by artefact name."""
    bundle: Dict[str, List[Dict[str, object]]] = {
        "table1_summary": study.table1(),
    }
    for name, method in _FAMILY_ARTEFACTS:
        rows: List[Dict[str, object]] = []
        for family in families:
            rows.extend(getattr(study, method)(family))
        bundle[name] = rows
    keys = set(study.keys())
    ixps = sorted({ixp for ixp, _family in keys})
    for name, method, limit in _PER_IXP_ARTEFACTS:
        rows = []
        for ixp in ixps:
            for family in families:
                if (ixp, family) not in keys:
                    continue
                rows.extend(getattr(study, method)(ixp, family, limit))
        bundle[name] = rows
    # Fig. 4b full curves, flattened
    curves: List[Dict[str, object]] = []
    for ixp in ixps:
        for family in families:
            if (ixp, family) not in keys:
                continue
            for as_fraction, share in study.concentration_curve(
                    ixp, family):
                curves.append({"ixp": ixp, "family": family,
                               "as_fraction": as_fraction,
                               "cumulative_share": share})
    bundle["fig4b_curves"] = curves
    return bundle


def export_study_csv(study: Study, directory: Path,
                     families: Sequence[int] = (4, 6)) -> List[Path]:
    """Write one CSV per artefact under *directory*; returns the paths."""
    directory = Path(directory)
    paths = []
    for name, rows in study_rows(study, families).items():
        paths.append(write_csv(rows, directory / f"{name}.csv"))
    return sorted(paths)


def export_study_json(study: Study, path: Path,
                      families: Sequence[int] = (4, 6)) -> Path:
    """Write the whole artefact bundle as one JSON document (encoded
    by :func:`dumps_rows` — byte-identical to the query service's
    ``/v1/export`` body over the same store)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_rows(study_rows(study, families)))
    return path
