"""§5.6 operational implications, quantified.

The paper's discussion section argues that communities targeting
non-RS-members create "unnecessary overheads at the IXP infrastructure"
and mentions DE-CIX's countermeasure — filtering routes with "too many
communities" — as an incentive for ASes to hygienise their tagging.
This module turns both arguments into numbers:

* :func:`overhead_summary` — memory (attribute bytes in the RIB) and
  processing (policy lookups per route propagation) attributable to
  ineffective action communities;
* :func:`max_communities_cap_sweep` — how many routes a given
  max-communities import cap would reject, per cap value, and how much
  of the rejected tagging is ineffective anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..collector.snapshot import Snapshot
from ..ixp.dictionary import CommunityDictionary
from .aggregate import SnapshotAggregate
from .classification import Classifier

#: wire size of one community instance per flavour (RFC 1997/4360/8092).
_BYTES_PER_KIND = {"standard": 4, "extended": 8, "large": 12}


def overhead_summary(aggregate: SnapshotAggregate) -> Dict[str, object]:
    """RS overheads attributable to community tagging (one snapshot).

    Memory: bytes of community attributes held in the Adj-RIB-Ins.
    Processing: every accepted route's action communities are evaluated
    once per candidate export peer — ineffective targets burn those
    lookups for nothing (§5.5: "only increasing processing and memory
    storage overheads").
    """
    community_bytes = sum(
        count * _BYTES_PER_KIND[kind]
        for kind, count in aggregate.kind_counts.items())
    # unknown instances are standard-sized in our substrate
    community_bytes += 4 * aggregate.unknown_count
    ineffective_bytes = 4 * aggregate.ineffective_instances
    peers = max(0, aggregate.member_count - 1)
    total_lookups = aggregate.std_action_count * peers
    wasted_lookups = aggregate.ineffective_instances * peers
    return {
        "ixp": aggregate.ixp,
        "family": aggregate.family,
        "community_bytes": community_bytes,
        "ineffective_bytes": ineffective_bytes,
        "ineffective_bytes_share": (
            ineffective_bytes / community_bytes if community_bytes
            else 0.0),
        "policy_lookups_per_propagation": total_lookups,
        "wasted_lookups_per_propagation": wasted_lookups,
        "wasted_lookup_share": (wasted_lookups / total_lookups
                                if total_lookups else 0.0),
    }


@dataclass(frozen=True)
class CapSweepRow:
    """Effect of one max-communities import cap."""

    cap: int
    rejected_routes: int
    rejected_fraction: float
    #: action instances the cap would remove from the RIB...
    suppressed_action_instances: int
    #: ...of which this many were ineffective anyway.
    suppressed_ineffective_instances: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "cap": self.cap,
            "rejected_routes": self.rejected_routes,
            "rejected_fraction": self.rejected_fraction,
            "suppressed_action_instances":
                self.suppressed_action_instances,
            "suppressed_ineffective_instances":
                self.suppressed_ineffective_instances,
        }


def max_communities_cap_sweep(snapshot: Snapshot,
                              dictionary: CommunityDictionary,
                              caps: Sequence[int] = (100, 50, 30, 20, 10),
                              ) -> List[CapSweepRow]:
    """Simulate DE-CIX's "too many communities" import cap (§5.6).

    For each cap, count the routes whose total community count exceeds
    it, and how many of their action instances were ineffective —
    i.e. how well the blunt cap aligns with the actual waste.
    """
    classifier = Classifier(dictionary)
    rs_members = frozenset(snapshot.member_asns())
    per_route: List[tuple] = []
    for route in snapshot.routes:
        actions = 0
        ineffective = 0
        for classified in classifier.classify_route(route):
            if not classified.is_action or classified.kind != "standard":
                continue
            actions += 1
            target = classified.target_asn
            if target is not None and target not in rs_members:
                ineffective += 1
        per_route.append((route.community_count, actions, ineffective))

    total_routes = len(per_route)
    rows: List[CapSweepRow] = []
    for cap in sorted(caps, reverse=True):
        rejected = [(count, actions, ineffective)
                    for count, actions, ineffective in per_route
                    if count > cap]
        rows.append(CapSweepRow(
            cap=cap,
            rejected_routes=len(rejected),
            rejected_fraction=(len(rejected) / total_routes
                               if total_routes else 0.0),
            suppressed_action_instances=sum(r[1] for r in rejected),
            suppressed_ineffective_instances=sum(r[2] for r in rejected),
        ))
    return rows
