"""§5.2 usage analyses: Figures 4a, 4b, and 4c.

Who uses action communities, how concentrated the usage is across ASes,
and how per-AS community counts correlate with per-AS route counts.
"""

from __future__ import annotations

import math
import types
from typing import Dict, Iterable, List, Sequence, Tuple

from .. import obs
from .aggregate import SnapshotAggregate

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    member_undercount=reg.counter(
        "repro_analysis_member_undercount_total",
        "ASes observed tagging action communities beyond the "
        "snapshot's RS member count (a degraded member list padded "
        "into the Fig. 4b denominators)", ("ixp", "family")),
))


def _member_floor(aggregate: SnapshotAggregate, ranked: int) -> int:
    """The Fig. 4b denominator: RS member count, padded up to the
    number of distinct tagging ASes when the member list undercounts
    (degraded captures). Padding is no longer silent — it increments
    ``repro_analysis_member_undercount_total`` by the shortfall."""
    if ranked > aggregate.member_count:
        _METRICS().member_undercount.labels(
            aggregate.ixp, str(aggregate.family)).inc(
                ranked - aggregate.member_count)
    return max(aggregate.member_count, ranked)


def ases_using_actions(
        aggregates: Iterable[SnapshotAggregate]) -> List[Dict[str, object]]:
    """Fig. 4a: ASes using action communities (count and fraction of RS
    members) and routes tagged with at least one action community."""
    rows = []
    for aggregate in aggregates:
        rows.append({
            "ixp": aggregate.ixp,
            "family": aggregate.family,
            "rs_members": aggregate.member_count,
            "ases_using_actions": len(aggregate.ases_using_actions),
            "ases_fraction": aggregate.members_using_actions_fraction,
            "routes": aggregate.route_count,
            "routes_with_actions": aggregate.routes_with_action,
            "routes_fraction": aggregate.routes_with_action_fraction,
            "action_instances": aggregate.action_instances,
        })
    return rows


def usage_concentration_curve(
        aggregate: SnapshotAggregate) -> List[Tuple[float, float]]:
    """Fig. 4b: cumulative share of action instances vs fraction of ASes.

    ASes are ranked by descending contribution; the curve gives, for the
    top x-fraction of RS members, the y-fraction of all action-community
    instances they account for.
    """
    counts = sorted(aggregate.per_as_action.values(), reverse=True)
    total = sum(counts)
    members = _member_floor(aggregate, len(counts))
    if not total or not members:
        return []
    curve: List[Tuple[float, float]] = []
    cumulative = 0
    for index, count in enumerate(counts, start=1):
        cumulative += count
        curve.append((index / members, cumulative / total))
    return curve


def concentration_at(aggregate: SnapshotAggregate,
                     as_fraction: float) -> float:
    """Share of action instances held by the top *as_fraction* of RS
    members (e.g. 0.01 → the paper's "1% of the ASes" checkpoints)."""
    counts = sorted(aggregate.per_as_action.values(), reverse=True)
    total = sum(counts)
    members = _member_floor(aggregate, len(counts))
    if not total or not members:
        return 0.0
    top_n = max(1, math.floor(members * as_fraction))
    return sum(counts[:top_n]) / total


def usage_concentration(
        aggregates: Iterable[SnapshotAggregate]) -> List[Dict[str, object]]:
    """Fig. 4b summary rows: concentration checkpoints per IXP."""
    rows = []
    for aggregate in aggregates:
        rows.append({
            "ixp": aggregate.ixp,
            "family": aggregate.family,
            "action_instances": aggregate.action_instances,
            "top_1pct_share": concentration_at(aggregate, 0.01),
            "top_10pct_share": concentration_at(aggregate, 0.10),
            "bottom_90pct_share": 1.0 - concentration_at(aggregate, 0.10),
        })
    return rows


def prefix_community_points(
        aggregate: SnapshotAggregate) -> List[Tuple[float, float]]:
    """Fig. 4c: one (community-share, route-share) point per AS.

    Points near the diagonal mean an AS contributes routes and action
    communities in similar proportion.
    """
    total_actions = sum(aggregate.per_as_action.values())
    total_routes = sum(aggregate.per_as_routes.values())
    if not total_actions or not total_routes:
        return []
    points = []
    # sorted iteration pins the float-summation order downstream in
    # _pearson, so cached and freshly-computed aggregates correlate to
    # the exact same bits.
    for asn, action_count in sorted(aggregate.per_as_action.items()):
        route_count = aggregate.per_as_routes.get(asn, 0)
        points.append((action_count / total_actions,
                       route_count / total_routes))
    return points


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def prefix_community_correlation(
        aggregates: Iterable[SnapshotAggregate]) -> List[Dict[str, object]]:
    """Fig. 4c summary: per-IXP correlation between route share and
    action-community share (log-log Pearson, as the figure is log-log),
    plus how many ASes sit far above the diagonal (big announcers that
    tag little) vs far below (the paper observes the former exists, the
    latter does not)."""
    rows = []
    for aggregate in aggregates:
        points = prefix_community_points(aggregate)
        log_points = [(math.log10(c), math.log10(r))
                      for c, r in points if c > 0 and r > 0]
        correlation = _pearson([p[0] for p in log_points],
                               [p[1] for p in log_points])
        above = sum(1 for c, r in points if r > c * 10)
        below = sum(1 for c, r in points if c > r * 10 and r > 0)
        rows.append({
            "ixp": aggregate.ixp,
            "family": aggregate.family,
            "ases": len(points),
            "log_pearson": correlation,
            "far_above_diagonal": above,
            "far_below_diagonal": below,
        })
    return rows
