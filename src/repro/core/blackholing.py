"""Blackholing target-prefix profiles (extension beyond §5.3).

The paper counts blackholing *instances* per IXP (Table 2) and revisits
acceptance in June 2022; this extension characterises what those
instances are attached to:

* **which prefixes** attract blackhole-action communities, and from how
  many peers;
* **how specific** the targets are — classic remote-triggered
  blackholing announces host routes (/32, /128), so the blackholed
  prefix-length distribution should sit far to the right of the overall
  table's;
* **whether a covering route exists** — the aggregate the victim
  normally announces, under which the blackholed more-specific hides
  (resolved with the sorted prefix index,
  :class:`repro.io.prefixindex.PrefixIndex`);
* **how long targets persist** across a daily snapshot series — DDoS
  mitigation is bursty, so most targets should be short-lived.

Everything consumes accepted routes only, like the §4/§5 aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..collector.snapshot import Snapshot, snapshots_sorted
from ..io.prefixindex import PrefixIndex
from ..ixp.dictionary import CommunityDictionary
from ..ixp.taxonomy import ActionCategory
from .classification import Classifier


@dataclass(frozen=True)
class BlackholedPrefix:
    """One blackholing target in one snapshot."""

    prefix: str
    prefixlen: int
    #: distinct ASes announcing the prefix with a blackhole action.
    peers: Tuple[int, ...]
    #: distinct blackhole-action communities seen on those routes.
    communities: Tuple[str, ...]
    #: /32 (IPv4) or /128 (IPv6) — the RTBH host-route signature.
    host_route: bool
    #: the most specific *other* accepted prefix covering this one
    #: (the victim's normal aggregate), or None.
    covering_prefix: Optional[str]

    @property
    def covered(self) -> bool:
        return self.covering_prefix is not None

    def as_dict(self) -> Dict[str, object]:
        return {
            "prefix": self.prefix,
            "prefixlen": self.prefixlen,
            "peers": list(self.peers),
            "communities": list(self.communities),
            "host_route": self.host_route,
            "covering_prefix": self.covering_prefix,
        }


def _route_width(prefix: str) -> int:
    return 128 if ":" in prefix else 32


def blackholed_prefixes(snapshot: Snapshot,
                        dictionary: CommunityDictionary,
                        classifier: Optional[Classifier] = None,
                        ) -> List[BlackholedPrefix]:
    """Every blackholing target in *snapshot*, in prefix-index order.

    A route is a blackhole announcement when any of its communities is
    a standard IXP-defined action of category
    :attr:`~repro.ixp.taxonomy.ActionCategory.BLACKHOLING` — the same
    classification discipline as the Table 2 aggregation. Community
    sets repeat across routes, so each distinct set is classified once.
    """
    classifier = classifier or Classifier(dictionary)
    flat = classifier.flat
    set_hits: Dict[Tuple, Tuple[str, ...]] = {}
    peers: Dict[str, set] = {}
    tags: Dict[str, set] = {}
    index = PrefixIndex(snapshot.routes)
    for route in snapshot.routes:
        if route.filtered:
            continue
        set_key = (route.communities, route.extended_communities,
                   route.large_communities)
        hits = set_hits.get(set_key)
        if hits is None:
            hits = tuple(
                str(community) for community in
                (*route.communities, *route.extended_communities,
                 *route.large_communities)
                if (record := flat(community))[2]
                and record[4] is ActionCategory.BLACKHOLING)
            set_hits[set_key] = hits
        if not hits:
            continue
        peers.setdefault(route.prefix, set()).add(route.peer_asn)
        tags.setdefault(route.prefix, set()).update(hits)
    targets: List[BlackholedPrefix] = []
    for prefix in index.prefixes():
        if prefix not in peers:
            continue
        prefixlen = int(prefix.rsplit("/", 1)[1])
        covering = next(
            (match.prefix for match in index.covering(prefix)
             if match.prefix != prefix), None)
        targets.append(BlackholedPrefix(
            prefix=prefix,
            prefixlen=prefixlen,
            peers=tuple(sorted(peers[prefix])),
            communities=tuple(sorted(tags[prefix])),
            host_route=prefixlen == _route_width(prefix),
            covering_prefix=covering,
        ))
    return targets


def specificity_profile(snapshot: Snapshot,
                        targets: Sequence[BlackholedPrefix],
                        ) -> Dict[str, object]:
    """How blackholed prefixes compare with the overall table.

    Returns the blackholed prefix-length histogram, the host-route and
    covered shares, and the median prefix length of blackholed vs all
    accepted prefixes (the "more specific than the table" claim in one
    number pair).
    """
    all_lengths = sorted(
        int(route.prefix.rsplit("/", 1)[1])
        for route in snapshot.routes if not route.filtered)
    target_lengths = sorted(t.prefixlen for t in targets)

    def median(values: Sequence[int]) -> float:
        if not values:
            return 0.0
        mid = len(values) // 2
        if len(values) % 2:
            return float(values[mid])
        return (values[mid - 1] + values[mid]) / 2.0

    histogram: Dict[int, int] = {}
    for length in target_lengths:
        histogram[length] = histogram.get(length, 0) + 1
    count = len(targets)
    return {
        "ixp": snapshot.ixp,
        "family": snapshot.family,
        "captured_on": snapshot.captured_on,
        "blackholed_prefixes": count,
        "plen_histogram": {str(length): histogram[length]
                           for length in sorted(histogram)},
        "host_route_share": (sum(1 for t in targets if t.host_route)
                             / count if count else 0.0),
        "covered_share": (sum(1 for t in targets if t.covered)
                          / count if count else 0.0),
        "median_plen_blackholed": median(target_lengths),
        "median_plen_table": median(all_lengths),
    }


def persistence_rows(snapshots: Iterable[Snapshot],
                     dictionary: CommunityDictionary,
                     classifier: Optional[Classifier] = None,
                     ) -> List[Dict[str, object]]:
    """Per-target persistence over a daily series of one (IXP, family).

    For each prefix ever blackholed: the days it was observed
    blackholed, first/last date, and the longest consecutive-day
    streak (consecutive meaning adjacent snapshots in the series, the
    collection cadence — missing days break a streak exactly like a
    withdrawn blackhole).
    """
    classifier = classifier or Classifier(dictionary)
    series = snapshots_sorted(snapshots)
    keys = {(s.ixp, s.family) for s in series}
    if len(keys) > 1:
        raise ValueError(
            "persistence_rows needs snapshots of a single "
            f"(IXP, family); got {sorted(keys)}")
    seen: Dict[str, Dict[str, object]] = {}
    streaks: Dict[str, int] = {}
    for position, snapshot in enumerate(series):
        for target in blackholed_prefixes(snapshot, dictionary,
                                          classifier):
            record = seen.get(target.prefix)
            if record is None:
                record = {"prefix": target.prefix,
                          "prefixlen": target.prefixlen,
                          "first_seen": snapshot.captured_on,
                          "last_seen": snapshot.captured_on,
                          "days_observed": 0, "max_streak": 0,
                          "_last_position": None}
                seen[target.prefix] = record
            record["days_observed"] += 1
            record["last_seen"] = snapshot.captured_on
            if record["_last_position"] == position - 1:
                streaks[target.prefix] += 1
            else:
                streaks[target.prefix] = 1
            record["max_streak"] = max(record["max_streak"],
                                       streaks[target.prefix])
            record["_last_position"] = position
    rows = []
    for prefix in sorted(seen):
        record = dict(seen[prefix])
        del record["_last_position"]
        rows.append(record)
    return rows


def blackholing_profile(snapshots: Sequence[Snapshot],
                        dictionary: CommunityDictionary,
                        ) -> Dict[str, object]:
    """The headline numbers for one (IXP, family) daily series: latest
    snapshot's specificity profile plus persistence summary."""
    classifier = Classifier(dictionary)
    series = snapshots_sorted(snapshots)
    latest = series[-1]
    targets = blackholed_prefixes(latest, dictionary, classifier)
    profile = specificity_profile(latest, targets)
    rows = persistence_rows(series, dictionary, classifier)
    transient = sum(1 for row in rows if row["max_streak"] == 1)
    profile["targets_over_series"] = len(rows)
    profile["single_day_share"] = (transient / len(rows)
                                   if rows else 0.0)
    profile["max_streak_days"] = max(
        (row["max_streak"] for row in rows), default=0)
    return profile
