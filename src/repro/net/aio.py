"""``repro.net.aio`` — a stdlib-only event-driven I/O layer.

The collection path is dominated by waiting on Looking Glass HTTP
round-trips. The thread-pool engine (PR 4) tops out at tens of
in-flight requests per process — every waiting request pins a thread.
This module provides the substrate for pushing per-process concurrency
past that: a :class:`selectors.DefaultSelector` event loop driving
generator-based coroutines over non-blocking sockets, with

* a :class:`TimerWheel` ordering timeouts and backoff sleeps,
* a minimal HTTP/1.1 **client** codec (status line, headers,
  ``Content-Length`` and ``chunked`` bodies), and
* a per-host keep-alive :class:`ConnectionPool` with a **hard
  connection cap** — the paper's "single connection to the LG server,
  to avoid overloading it" discipline promoted to a first-class limit
  instead of an accident of pool size.

No ``asyncio``: coroutines are plain generators that ``yield``
instruction objects (sleep, wait-for-I/O, park) and compose with
``yield from``. That keeps the loop ~300 lines, trivially inspectable,
and — crucially — lets a *synchronous* coordinator drive it one turn
at a time (:meth:`EventLoop.run_once`), exactly how the campaign
engine folds completions and writes checkpoints between
``wait(FIRST_COMPLETED)`` passes on the thread-pool path.

This module is observability-free by design: the loop and pool expose
plain observer hooks (``on_turn``, ``on_open``/``on_reuse``/
``on_close``) and :mod:`repro.lg.aio` wires them into ``repro_lg_aio_*``
metrics.
"""

from __future__ import annotations

import errno
import itertools
import heapq
import selectors
import socket
import time
import urllib.parse
from collections import deque
from typing import (Any, Callable, Deque, Dict, Generator, List, Optional,
                    Tuple)

__all__ = [
    "EventLoop", "Task", "TimerWheel", "Semaphore", "ConnectionPool",
    "HTTPResponse", "http_request", "sleep", "join",
    "IOTimeout", "ConnectionClosed", "ProtocolError", "TaskCancelled",
]

#: bytes of response head (status line + headers) we will buffer before
#: declaring the peer broken.
MAX_HEAD_BYTES = 65536
#: per-recv read size.
RECV_CHUNK = 65536


class IOTimeout(OSError):
    """An I/O wait exceeded its timeout (mirrors ``socket.timeout``)."""


class ConnectionClosed(OSError):
    """The peer closed (or reset) the connection mid-exchange."""


class ProtocolError(ValueError):
    """The peer sent bytes that do not parse as HTTP/1.1."""


class TaskCancelled(BaseException):
    """Thrown into a task by :meth:`Task.cancel`.

    A ``BaseException`` (like :class:`asyncio.CancelledError`) so that
    coroutine code catching ``Exception`` cannot accidentally swallow a
    cancellation.
    """


# -- coroutine instructions -----------------------------------------------
#
# A coroutine is a generator yielding these. ``yield from`` composes
# sub-coroutines; the loop only ever sees the innermost instruction.

class _Sleep:
    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds


class _WaitIO:
    __slots__ = ("sock", "events", "timeout")

    def __init__(self, sock: socket.socket, events: int,
                 timeout: Optional[float]) -> None:
        self.sock = sock
        self.events = events
        self.timeout = timeout


class _Park:
    """Suspend until somebody wakes the task (e.g. a pool waiter list).

    ``register`` receives the parked :class:`Task`; the owner wakes it
    later via ``task.loop.wake(task)``. Waiters that are already done
    when woken are skipped by the waker, so stale registrations are
    harmless.
    """

    __slots__ = ("register",)

    def __init__(self, register: Callable[["Task"], None]) -> None:
        self.register = register


def sleep(seconds: float) -> Generator[Any, Any, None]:
    """Coroutine: suspend for ``seconds`` (loop-timer based)."""
    if seconds > 0:
        yield _Sleep(seconds)


def wait_io(sock: socket.socket, events: int,
            timeout: Optional[float]) -> Generator[Any, Any, None]:
    """Coroutine: suspend until ``sock`` is ready (or :class:`IOTimeout`)."""
    yield _WaitIO(sock, events, timeout)


def join(task: "Task") -> Generator[Any, Any, "Task"]:
    """Coroutine: suspend until ``task`` finishes; returns it (inspect
    ``.result`` / ``.error`` — joining never re-raises by itself)."""
    if not task.done:
        def register(waiter: "Task") -> None:
            task.add_done_callback(lambda _t: waiter.loop.wake(waiter))
        yield _Park(register)
    return task


# -- timers ----------------------------------------------------------------

class _Timer:
    __slots__ = ("deadline", "seq", "callback", "cancelled")

    def __init__(self, deadline: float, seq: int,
                 callback: Callable[[], None]) -> None:
        self.deadline = deadline
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_Timer") -> bool:
        return (self.deadline, self.seq) < (other.deadline, other.seq)


class TimerWheel:
    """Deadline-ordered timers for the loop (timeouts, backoff sleeps).

    Heap-ordered rather than a hashed wheel: O(log n) insert is
    indistinguishable from O(1) below the ~10^3 live timers a
    collection loop carries, and the heap keeps exact deadlines (a
    spoked wheel quantises them). Cancellation is a tombstone flag;
    dead entries are dropped lazily when they surface.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self._heap: List[_Timer] = []
        self._seq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, delay: float,
                 callback: Callable[[], None]) -> _Timer:
        timer = _Timer(self.clock() + max(0.0, delay), next(self._seq),
                       callback)
        heapq.heappush(self._heap, timer)
        self._live += 1
        return timer

    def _prune(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def next_deadline(self) -> Optional[float]:
        self._prune()
        return self._heap[0].deadline if self._heap else None

    def fire_due(self, now: Optional[float] = None) -> int:
        """Run every timer whose deadline has passed; returns count."""
        now = self.clock() if now is None else now
        fired = 0
        while self._heap:
            self._prune()
            if not self._heap or self._heap[0].deadline > now:
                break
            timer = heapq.heappop(self._heap)
            # mark fired so a later discard() (the wake path's cleanup
            # runs after we fired the wake) cannot double-decrement
            timer.cancelled = True
            self._live -= 1
            fired += 1
            timer.callback()
        return fired

    def discard(self, timer: _Timer) -> None:
        """Cancel and account (used by the loop's cleanups)."""
        if not timer.cancelled:
            timer.cancel()
            self._live -= 1


# -- tasks and the loop ----------------------------------------------------

class Task:
    """One spawned coroutine. ``done``/``result``/``error`` mirror
    ``concurrent.futures.Future`` just enough for the campaign
    coordinator to treat loop tasks like pool futures."""

    __slots__ = ("loop", "gen", "name", "done", "result", "error",
                 "_callbacks", "_cleanup", "_cancelled")

    def __init__(self, loop: "EventLoop", gen: Generator,
                 name: str = "") -> None:
        self.loop = loop
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "task")
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Task"], None]] = []
        #: undo for the instruction currently parking this task
        #: (unregister a socket, cancel a timer); consumed by wake().
        self._cleanup: Optional[Callable[[], None]] = None
        self._cancelled = False

    def add_done_callback(self, fn: Callable[["Task"], None]) -> None:
        if self.done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def cancel(self) -> None:
        """Throw :class:`TaskCancelled` into the coroutine (no-op once
        done). ``finally`` blocks run, so held resources are released."""
        if self.done or self._cancelled:
            return
        self._cancelled = True
        self.loop.wake(self, exc=TaskCancelled())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"<Task {self.name} {state}>"


class EventLoop:
    """A single-threaded selectors loop.

    Not thread-safe: exactly one thread drives it at a time (the
    campaign's per-target coordinating thread). ``on_turn`` is called
    with the duration of every :meth:`run_once` turn.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 on_turn: Optional[Callable[[float], None]] = None) -> None:
        self.clock = clock
        self.on_turn = on_turn
        self.selector = selectors.DefaultSelector()
        self.timers = TimerWheel(clock)
        #: tasks ready to step: (task, value, exc)
        self._ready: Deque[Tuple[Task, Any, Optional[BaseException]]] = \
            deque()
        self._live_tasks = 0

    # -- spawning and waking ------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Task:
        task = Task(self, gen, name)
        self._live_tasks += 1
        self._ready.append((task, None, None))
        return task

    def wake(self, task: Task, value: Any = None,
             exc: Optional[BaseException] = None) -> None:
        """Make a suspended task runnable (idempotent on done tasks)."""
        if task.done:
            return
        cleanup, task._cleanup = task._cleanup, None
        if cleanup is not None:
            cleanup()
        self._ready.append((task, value, exc))

    # -- stepping ------------------------------------------------------

    def _finish(self, task: Task, result: Any,
                error: Optional[BaseException]) -> None:
        task.done = True
        task.result = result
        task.error = error
        task.gen.close()
        self._live_tasks -= 1
        callbacks, task._callbacks = task._callbacks, []
        for fn in callbacks:
            fn(task)

    def _step(self, task: Task, value: Any,
              exc: Optional[BaseException]) -> None:
        if task.done:
            return
        if task._cancelled and exc is None:
            exc = TaskCancelled()
        try:
            if exc is not None:
                instruction = task.gen.throw(exc)
            else:
                instruction = task.gen.send(value)
        except StopIteration as stop:
            self._finish(task, stop.value, None)
        except TaskCancelled as cancel:
            self._finish(task, None, cancel)
        except Exception as error:
            self._finish(task, None, error)
        else:
            self._dispatch(task, instruction)

    def _dispatch(self, task: Task, instruction: Any) -> None:
        if isinstance(instruction, _Sleep):
            timer = self.timers.schedule(
                instruction.seconds, lambda: self.wake(task))
            task._cleanup = lambda: self.timers.discard(timer)
        elif isinstance(instruction, _WaitIO):
            self._dispatch_wait_io(task, instruction)
        elif isinstance(instruction, _Park):
            instruction.register(task)
        else:
            self.wake(task, exc=RuntimeError(
                f"task {task.name} yielded a non-instruction: "
                f"{instruction!r}"))

    def _dispatch_wait_io(self, task: Task, instr: _WaitIO) -> None:
        sock = instr.sock
        timer: Optional[_Timer] = None
        if instr.timeout is not None:
            timer = self.timers.schedule(
                instr.timeout,
                lambda: self.wake(task, exc=IOTimeout(
                    f"I/O wait exceeded {instr.timeout}s")))
        try:
            self.selector.register(sock, instr.events, task)
        except (KeyError, ValueError, OSError) as error:
            if timer is not None:
                self.timers.discard(timer)
            self.wake(task, exc=ConnectionClosed(
                f"cannot wait on socket: {error}"))
            return

        def cleanup() -> None:
            try:
                self.selector.unregister(sock)
            except (KeyError, ValueError):
                pass
            if timer is not None:
                self.timers.discard(timer)

        task._cleanup = cleanup

    # -- driving -------------------------------------------------------

    def _drain_ready(self) -> bool:
        progressed = bool(self._ready)
        while self._ready:
            task, value, exc = self._ready.popleft()
            self._step(task, value, exc)
        return progressed

    @property
    def idle(self) -> bool:
        """True when nothing can ever make progress again without an
        external wake — runnable, waiting-on-I/O and timer queues all
        empty (parked tasks may still exist, but only a runnable task
        could wake them)."""
        return (not self._ready and not self.selector.get_map()
                and not len(self.timers))

    @property
    def live_tasks(self) -> int:
        return self._live_tasks

    def run_once(self, max_wait: float = 0.05) -> bool:
        """One loop turn: step runnable tasks, poll I/O (bounded by
        ``max_wait`` so a synchronous caller regains control), fire due
        timers, step again. Returns True if any task was stepped."""
        turn_started = self.clock()
        progressed = self._drain_ready()
        timeout = max(0.0, float(max_wait))
        deadline = self.timers.next_deadline()
        if deadline is not None:
            timeout = min(timeout, max(0.0, deadline - self.clock()))
        if self._ready:
            timeout = 0.0
        if self.selector.get_map():
            for key, _events in self.selector.select(timeout):
                self.wake(key.data)
        elif timeout > 0 and not self._ready and len(self.timers):
            # Nothing waits on I/O but a timer is pending: sleep until
            # it is due. With no timers either, return immediately —
            # a task that completed during the first drain (its reply
            # raced ahead of the recv) must not cost a full max_wait.
            time.sleep(timeout)
        self.timers.fire_due(self.clock())
        progressed = self._drain_ready() or progressed
        if self.on_turn is not None:
            self.on_turn(self.clock() - turn_started)
        return progressed

    def run_until_complete(self, task: Task,
                           max_wait: float = 0.05) -> Any:
        """Drive the loop until ``task`` finishes; returns its result
        or raises its error. Raises ``RuntimeError`` on a stalled loop
        (every remaining task parked with no possible waker)."""
        while not task.done:
            if self.idle:
                raise RuntimeError(
                    f"event loop stalled with task {task.name} pending "
                    f"({self._live_tasks} live tasks, all parked)")
            self.run_once(max_wait)
        if task.error is not None:
            raise task.error
        return task.result

    def close(self) -> None:
        self.selector.close()


# -- synchronisation -------------------------------------------------------

class Semaphore:
    """A counting semaphore for loop tasks (single-threaded: no locks).

    ``release`` wakes one parked waiter, which re-checks the count —
    wake-ups are advisory, never a slot transfer, so a waiter cancelled
    between wake and step cannot strand the slot.
    """

    def __init__(self, value: int) -> None:
        if value < 1:
            raise ValueError("semaphore needs a positive initial value")
        self._value = value
        self._waiters: Deque[Task] = deque()

    @property
    def available(self) -> int:
        return self._value

    def acquire(self) -> Generator[Any, Any, None]:
        while True:
            if self._value > 0:
                self._value -= 1
                return
            try:
                yield _Park(self._waiters.append)
            except BaseException:
                # a wake meant for us may be in flight — pass it on.
                self._kick()
                raise

    def release(self) -> None:
        self._value += 1
        self._kick()

    def _kick(self) -> None:
        while self._waiters:
            task = self._waiters.popleft()
            if not task.done and not task._cancelled:
                task.loop.wake(task)
                return


# -- HTTP/1.1 client codec -------------------------------------------------

class HTTPResponse:
    """One decoded HTTP response."""

    __slots__ = ("status", "reason", "headers", "body", "reusable")

    def __init__(self, status: int, reason: str,
                 headers: Dict[str, str], body: bytes,
                 reusable: bool) -> None:
        self.status = status
        self.reason = reason
        self.headers = headers
        self.body = body
        #: keep-alive verdict: protocol allows reusing the connection.
        self.reusable = reusable

    def header(self, name: str, default: Optional[str] = None,
               ) -> Optional[str]:
        return self.headers.get(name.lower(), default)


_CONNECT_IN_PROGRESS = {errno.EINPROGRESS, errno.EWOULDBLOCK,
                        errno.EALREADY, errno.EINTR}


class _Connection:
    """One non-blocking client connection with a receive buffer."""

    __slots__ = ("host", "port", "sock", "requests_served", "_buffer")

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.sock: Optional[socket.socket] = None
        self.requests_served = 0
        self._buffer = b""

    @property
    def key(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass
            self.sock = None

    # -- connect -------------------------------------------------------

    def connect(self, timeout: Optional[float],
                ) -> Generator[Any, Any, None]:
        # getaddrinfo is synchronous; campaign targets are literal
        # addresses (the simulated LG binds 127.0.0.1) so this never
        # blocks on a resolver in practice.
        infos = socket.getaddrinfo(self.host, self.port,
                                   type=socket.SOCK_STREAM)
        family, kind, proto, _name, address = infos[0]
        sock = socket.socket(family, kind, proto)
        sock.setblocking(False)
        try:
            # keep-alive request/response traffic is many small
            # writes; Nagle + delayed ACK turns each into a ~40ms
            # stall.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            code = sock.connect_ex(address)
            if code not in _CONNECT_IN_PROGRESS and code != 0:
                raise ConnectionClosed(
                    f"connect to {self.host}:{self.port} failed: "
                    f"{errno.errorcode.get(code, code)}")
            if code != 0:
                yield _WaitIO(sock, selectors.EVENT_WRITE, timeout)
                code = sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
                if code != 0:
                    raise ConnectionClosed(
                        f"connect to {self.host}:{self.port} failed: "
                        f"{errno.errorcode.get(code, code)}")
        except BaseException:
            sock.close()
            raise
        self.sock = sock

    # -- raw I/O -------------------------------------------------------

    def _send_all(self, data: bytes, timeout: Optional[float],
                  ) -> Generator[Any, Any, None]:
        assert self.sock is not None
        view = memoryview(data)
        while view:
            try:
                sent = self.sock.send(view)
            except (BlockingIOError, InterruptedError):
                sent = 0
            except OSError as error:
                raise ConnectionClosed(f"send failed: {error}") from error
            view = view[sent:]
            if view:
                yield _WaitIO(self.sock, selectors.EVENT_WRITE, timeout)

    def _recv_more(self, timeout: Optional[float],
                   ) -> Generator[Any, Any, bool]:
        """Grow the buffer by one recv; False on orderly EOF."""
        assert self.sock is not None
        while True:
            try:
                chunk = self.sock.recv(RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                yield _WaitIO(self.sock, selectors.EVENT_READ, timeout)
                continue
            except OSError as error:
                raise ConnectionClosed(f"recv failed: {error}") from error
            if chunk:
                self._buffer += chunk
                return True
            return False

    def _read_line(self, timeout: Optional[float],
                   ) -> Generator[Any, Any, bytes]:
        while b"\r\n" not in self._buffer:
            if len(self._buffer) > MAX_HEAD_BYTES:
                raise ProtocolError("unterminated header line")
            if not (yield from self._recv_more(timeout)):
                raise ConnectionClosed("EOF inside response head")
        line, _, self._buffer = self._buffer.partition(b"\r\n")
        return line

    def _read_exact(self, count: int, timeout: Optional[float],
                    ) -> Generator[Any, Any, bytes]:
        while len(self._buffer) < count:
            if not (yield from self._recv_more(timeout)):
                raise ConnectionClosed(
                    f"EOF with {count - len(self._buffer)} body bytes "
                    f"outstanding")
        taken, self._buffer = self._buffer[:count], self._buffer[count:]
        return taken

    # -- one request/response exchange --------------------------------

    def request(self, method: str, path: str,
                headers: List[Tuple[str, str]],
                timeout: Optional[float],
                ) -> Generator[Any, Any, HTTPResponse]:
        lines = [f"{method} {path} HTTP/1.1"]
        lines.extend(f"{name}: {value}" for name, value in headers)
        lines.extend(("", ""))
        yield from self._send_all("\r\n".join(lines).encode("latin-1"),
                                  timeout)
        response = yield from self._read_response(timeout)
        self.requests_served += 1
        return response

    def _read_response(self, timeout: Optional[float],
                       ) -> Generator[Any, Any, HTTPResponse]:
        status_line = yield from self._read_line(timeout)
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
            raise ProtocolError(f"bad status line: {status_line[:80]!r}")
        version = parts[0].decode("latin-1")
        try:
            status = int(parts[1])
        except ValueError:
            raise ProtocolError(
                f"bad status code: {status_line[:80]!r}") from None
        reason = parts[2].decode("latin-1") if len(parts) > 2 else ""
        headers: Dict[str, str] = {}
        while True:
            line = yield from self._read_line(timeout)
            if not line:
                break
            name, sep, value = line.partition(b":")
            if not sep:
                raise ProtocolError(f"bad header line: {line[:80]!r}")
            headers[name.decode("latin-1").strip().lower()] = \
                value.decode("latin-1").strip()

        delimited = True
        if headers.get("transfer-encoding", "").lower() == "chunked":
            body = yield from self._read_chunked(timeout)
        elif "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise ProtocolError("unparseable Content-Length") from None
            body = yield from self._read_exact(length, timeout)
        elif status in (204, 304):
            body = b""
        else:
            # no framing: body runs to EOF, connection is spent.
            delimited = False
            chunks = [self._buffer]
            self._buffer = b""
            while (yield from self._recv_more(timeout)):
                chunks.append(self._buffer)
                self._buffer = b""
            body = b"".join(chunks)

        connection = headers.get("connection", "").lower()
        reusable = (delimited and connection != "close"
                    and (version == "HTTP/1.1"
                         or connection == "keep-alive"))
        return HTTPResponse(status, reason, headers, bytes(body),
                            reusable)

    def _read_chunked(self, timeout: Optional[float],
                      ) -> Generator[Any, Any, bytes]:
        body = bytearray()
        while True:
            size_line = yield from self._read_line(timeout)
            try:
                size = int(size_line.split(b";", 1)[0], 16)
            except ValueError:
                raise ProtocolError(
                    f"bad chunk size: {size_line[:80]!r}") from None
            if size == 0:
                while True:  # trailers until the blank line
                    trailer = yield from self._read_line(timeout)
                    if not trailer:
                        return bytes(body)
            chunk = yield from self._read_exact(size, timeout)
            body.extend(chunk)
            terminator = yield from self._read_exact(2, timeout)
            if terminator != b"\r\n":
                raise ProtocolError("chunk missing CRLF terminator")


# -- connection pool -------------------------------------------------------

class ConnectionPool:
    """Keep-alive connections per (host, port), hard-capped.

    ``max_per_host`` is the pressure bound on any one server: when
    every connection is checked out, further acquirers **park** until a
    release — they never open an extra socket. Idle connections are
    liveness-checked with a zero-copy ``MSG_PEEK`` before reuse, so a
    server that closed an idle connection costs a reopen, not an error.
    """

    def __init__(self, max_per_host: int = 8,
                 connect_timeout: Optional[float] = None,
                 on_open: Optional[Callable[[Tuple[str, int]], None]] = None,
                 on_reuse: Optional[Callable[[Tuple[str, int]], None]] = None,
                 on_close: Optional[Callable[[Tuple[str, int]], None]] = None,
                 ) -> None:
        if max_per_host < 1:
            raise ValueError("max_per_host must be >= 1")
        self.max_per_host = max_per_host
        self.connect_timeout = connect_timeout
        self.on_open = on_open
        self.on_reuse = on_reuse
        self.on_close = on_close
        self._idle: Dict[Tuple[str, int], Deque[_Connection]] = {}
        self._open: Dict[Tuple[str, int], int] = {}
        self._waiters: Dict[Tuple[str, int], Deque[Task]] = {}
        self.opened = 0
        self.reused = 0
        self.closed = 0

    def open_connections(self,
                         key: Optional[Tuple[str, int]] = None) -> int:
        if key is not None:
            return self._open.get(key, 0)
        return sum(self._open.values())

    @staticmethod
    def _alive(conn: _Connection) -> bool:
        if conn.sock is None:
            return False
        try:
            peeked = conn.sock.recv(1, socket.MSG_PEEK)
        except (BlockingIOError, InterruptedError):
            return True  # no bytes pending: idle and healthy
        except OSError:
            return False
        # pending bytes on an idle keep-alive connection are protocol
        # garbage; EOF means the server hung up. Either way: discard.
        return False

    def acquire(self, host: str, port: int,
                timeout: Optional[float] = None,
                ) -> Generator[Any, Any, _Connection]:
        key = (host, port)
        while True:
            idle = self._idle.get(key)
            while idle:
                conn = idle.pop()
                if self._alive(conn):
                    self.reused += 1
                    if self.on_reuse is not None:
                        self.on_reuse(key)
                    return conn
                self._discard(conn)
            if self._open.get(key, 0) < self.max_per_host:
                self._open[key] = self._open.get(key, 0) + 1
                conn = _Connection(host, port)
                try:
                    yield from conn.connect(
                        timeout if timeout is not None
                        else self.connect_timeout)
                except BaseException:
                    self._open[key] -= 1
                    self._kick(key)
                    raise
                self.opened += 1
                if self.on_open is not None:
                    self.on_open(key)
                return conn
            # at the cap: park until a release (or discard) frees slack.
            try:
                yield _Park(
                    self._waiters.setdefault(key, deque()).append)
            except BaseException:
                self._kick(key)
                raise

    def release(self, conn: _Connection, reusable: bool = True) -> None:
        if reusable and conn.sock is not None:
            self._idle.setdefault(conn.key, deque()).append(conn)
        else:
            self._discard(conn)
        self._kick(conn.key)

    def _discard(self, conn: _Connection) -> None:
        conn.close()
        key = conn.key
        self._open[key] = max(0, self._open.get(key, 0) - 1)
        self.closed += 1
        if self.on_close is not None:
            self.on_close(key)

    def _kick(self, key: Tuple[str, int]) -> None:
        waiters = self._waiters.get(key)
        while waiters:
            task = waiters.popleft()
            if not task.done and not task._cancelled:
                task.loop.wake(task)
                return

    def close_all(self) -> None:
        for idle in self._idle.values():
            while idle:
                self._discard(idle.pop())


# -- request helper --------------------------------------------------------

def http_request(pool: ConnectionPool, method: str, url: str,
                 headers: Optional[List[Tuple[str, str]]] = None,
                 timeout: Optional[float] = None,
                 ) -> Generator[Any, Any, HTTPResponse]:
    """Coroutine: one HTTP exchange through the pool.

    A request on a **reused** connection that dies before any response
    byte is retried once on a fresh connection — the server closed the
    idle connection between our liveness peek and the request landing
    (the classic stale keep-alive race; safe for the GETs we issue).
    """
    parsed = urllib.parse.urlsplit(url)
    if parsed.scheme != "http":
        raise ProtocolError(f"unsupported scheme in {url!r}")
    host = parsed.hostname or ""
    port = parsed.port or 80
    path = parsed.path or "/"
    if parsed.query:
        path = f"{path}?{parsed.query}"
    host_header = host if port == 80 else f"{host}:{port}"
    wire_headers = [("Host", host_header),
                    ("Accept", "application/json"),
                    ("User-Agent", "repro-aio/1.0")]
    if headers:
        wire_headers.extend(headers)
    for attempt in (0, 1):
        conn = yield from pool.acquire(host, port, timeout)
        fresh = conn.requests_served == 0
        try:
            response = yield from conn.request(method, path,
                                               wire_headers, timeout)
        except ConnectionClosed:
            pool.release(conn, reusable=False)
            if fresh or attempt == 1:
                raise
            continue
        except BaseException:
            pool.release(conn, reusable=False)
            raise
        pool.release(conn, reusable=response.reusable)
        return response
    raise AssertionError("unreachable")
