"""Token-bucket rate limiting shared by both HTTP servers.

The class used to live in :mod:`repro.lg.ratelimit` (the simulated
Looking Glass grew it first, to reproduce the paper's §3 "query rate
limits"); the query API needs the identical discipline, so the neutral
mechanics moved here. The LG keeps a thin subclass that counts
rejections into its own metric family.

``retry_after`` fix: the original property computed
``max(0, 1 - tokens) / rate`` from the token count *at read time*.
Between a failed :meth:`try_acquire` (HTTP 429 sent) and the
``Retry-After`` header being rendered, refill can race a token back
into the bucket, so clients could be told to retry after ``0.000``
seconds — and a burst of them would immediately 429 again. The wait is
now computed against the post-acquire deficit and clamped to
:data:`MIN_RETRY_AFTER`, so a rejected request always receives a
positive, monotonically sensible sleep.
"""

from __future__ import annotations

import threading
import time

#: floor for ``retry_after``: a rejected client is never told to sleep
#: zero (or negative) seconds, even when refill has raced a token back
#: into the bucket before the header was rendered.
MIN_RETRY_AFTER = 0.001


class TokenBucket:
    """Classic token bucket; thread-safe (both HTTP servers are
    threaded). ``try_acquire`` never blocks; ``retry_after`` suggests a
    strictly positive client sleep."""

    def __init__(self, rate_per_second: float, burst: int) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate_per_second
        self.capacity = max(1, burst)
        self._tokens = float(self.capacity)
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        """Accrue tokens since the last update (lock held)."""
        now = time.monotonic()
        elapsed = now - self._updated
        self._updated = now
        self._tokens = min(self.capacity,
                           self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; never blocks."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def retry_after(self) -> float:
        """Suggested wait (seconds) before the next token is available.

        Always at least :data:`MIN_RETRY_AFTER` — under a burst refill
        race the deficit can be zero or negative by the time the
        header is rendered, and "retry after 0s" just re-synchronises
        the thundering herd onto the next 429.
        """
        with self._lock:
            self._refill()
            missing = 1.0 - self._tokens
            return max(missing / self.rate, MIN_RETRY_AFTER)
