"""``repro.net`` — HTTP-server substrate shared by every serving layer.

Both HTTP front doors of this repository — the simulated Looking Glass
(:mod:`repro.lg.server`) and the study query API
(:mod:`repro.query.server`) — need the same two ingredients:

* a :class:`TokenBucket` request rate limiter whose ``retry_after``
  suggestion is always a positive sleep (a 429 must never tell the
  client to retry "in 0 seconds"), and
* a :class:`ShutdownLatch` that turns SIGINT/SIGTERM into an event a
  foreground server can block on, instead of polling ``time.sleep``
  loops that only ``KeyboardInterrupt`` can break, and
* the shared full-jitter backoff schedule (:mod:`repro.net.backoff`)
  every retry loop in the repository draws its delays from — the LG
  client, dispatch work stealing, and filesystem fault retries, and
* the client-side event-driven I/O substrate (:mod:`repro.net.aio`):
  a selectors event loop, HTTP/1.1 client codec, and capped keep-alive
  connection pool behind the async LG client.

Keeping them here (rather than inside ``repro.lg``) lets the query
service depend on the rate limiter without importing the Looking
Glass, route servers, and workload machinery behind it.
"""

from .aio import (
    ConnectionClosed,
    ConnectionPool,
    EventLoop,
    HTTPResponse,
    IOTimeout,
    ProtocolError,
    Semaphore,
    Task,
    TaskCancelled,
    TimerWheel,
    http_request,
)
from .backoff import FullJitterBackoff, full_jitter_delay
from .ratelimit import MIN_RETRY_AFTER, TokenBucket
from .shutdown import ShutdownLatch

__all__ = ["TokenBucket", "MIN_RETRY_AFTER", "ShutdownLatch",
           "FullJitterBackoff", "full_jitter_delay",
           "EventLoop", "Task", "TimerWheel", "Semaphore",
           "ConnectionPool", "HTTPResponse", "http_request",
           "IOTimeout", "ConnectionClosed", "ProtocolError",
           "TaskCancelled"]
