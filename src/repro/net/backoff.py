"""Shared full-jitter exponential backoff.

Three subsystems independently grew the same retry discipline — the LG
client backing off transient HTTP failures, dispatch workers backing
off a fully leased unit list, and (new) filesystem-level retries over
NFS-style transient faults. They all want the AWS-style *full jitter*
schedule: an exponentially growing ceiling ``min(cap, base * 2**n)``
with the actual delay drawn uniformly from ``[0, ceiling)`` so a crowd
of contenders never re-converges on the same instant.

This module is that one implementation. :func:`full_jitter_delay` is
the pure function (callers that already hold an attempt counter and an
rng, like the LG client); :class:`FullJitterBackoff` carries the round
counter, rng, and sleep hook for callers that want a stateful
``pause()`` / ``reset()`` pair (the dispatch steal loop, faultfs
retries).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

#: ceiling growth stops doubling past this round — 2**16 dwarfs any
#: sane cap, so larger exponents only risk float overflow.
MAX_BACKOFF_ROUND = 16


def full_jitter_delay(attempt: int, base: float, cap: float,
                      rng: Optional[random.Random] = None,
                      jitter: bool = True) -> float:
    """One full-jitter delay for the Nth (0-based) retry round.

    With ``jitter=False`` the deterministic ceiling itself is returned
    (exact-delay tests); otherwise the delay is drawn uniformly from
    ``[0, ceiling)`` using *rng* (or the module's shared rng).
    """
    exponent = min(max(attempt, 0), MAX_BACKOFF_ROUND)
    ceiling = min(cap, base * (2 ** exponent))
    if not jitter:
        return ceiling
    return (rng if rng is not None else _SHARED_RNG).uniform(0.0, ceiling)


#: rng behind callers that do not care about reproducing exact delays.
_SHARED_RNG = random.Random(0xB0FF)


@dataclass
class FullJitterBackoff:
    """Stateful full-jitter schedule: ``pause()`` sleeps the next
    delay and advances the round; ``reset()`` rewinds after progress.
    """

    base: float = 0.05
    cap: float = 1.0
    jitter: bool = True
    rng: random.Random = field(
        default_factory=lambda: random.Random(0xB0FF))
    sleep: Callable[[float], None] = time.sleep
    round: int = 0

    def delay(self) -> float:
        """The next delay, advancing the round (no sleep)."""
        value = full_jitter_delay(self.round, self.base, self.cap,
                                  self.rng, self.jitter)
        self.round = min(self.round + 1, MAX_BACKOFF_ROUND)
        return value

    def pause(self) -> float:
        """Sleep the next delay; returns the seconds slept."""
        value = self.delay()
        self.sleep(value)
        return value

    def reset(self) -> None:
        self.round = 0
