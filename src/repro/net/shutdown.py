"""Signal-driven shutdown for foreground servers.

``repro-study serve`` used to park its main thread in a
``while True: time.sleep(3600)`` loop, which only ``KeyboardInterrupt``
(SIGINT) could break — ``kill <pid>`` (SIGTERM, what init systems and
CI send) left the process sleeping until the poll woke up and never
ran the server's stop path. :class:`ShutdownLatch` replaces the poll
with an event the main thread blocks on and a handler that trips it on
the first SIGINT/SIGTERM, mirroring the campaign's
``install_shutdown_handlers`` discipline: the first signal requests a
graceful stop and restores the previous handlers, so a second signal
behaves as before (typically a hard ``KeyboardInterrupt``).

Both foreground servers share it: the Looking Glass (``serve``) and
the query API (``api``), including every pre-fork query worker.
"""

from __future__ import annotations

import signal as _signal
import threading
from typing import Any, Callable, Dict, Optional, Sequence


class ShutdownLatch:
    """A one-shot event tripped by SIGINT/SIGTERM (or programmatically).

    Usage::

        latch = ShutdownLatch()
        restore = latch.install()
        try:
            latch.wait()          # blocks until a signal (or trip())
        finally:
            restore()
            server.stop()
    """

    def __init__(self,
                 signals: Sequence[int] = (_signal.SIGINT,
                                           _signal.SIGTERM)) -> None:
        self.signals = tuple(signals)
        #: the signal number that tripped the latch, if any.
        self.received: Optional[int] = None
        self._event = threading.Event()
        self._previous: Dict[int, Any] = {}

    # -- latch ----------------------------------------------------------

    def trip(self, signum: Optional[int] = None) -> None:
        """Release every waiter (idempotent; safe from any thread)."""
        if signum is not None and self.received is None:
            self.received = signum
        self._event.set()

    def tripped(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the latch trips; returns ``tripped()``."""
        return self._event.wait(timeout)

    # -- signal plumbing ------------------------------------------------

    def install(self) -> Callable[[], None]:
        """Route the configured signals into :meth:`trip`.

        The first signal trips the latch and immediately restores the
        previous handlers (second signal = hard stop, exactly like the
        campaign's handlers). Returns a restore callable for the
        non-signal exit paths; like ``install_shutdown_handlers``,
        callers off the main thread get a no-op restore back.
        """
        def restore() -> None:
            for signum, handler in self._previous.items():
                try:
                    _signal.signal(signum, handler)
                except (ValueError, OSError):  # pragma: no cover
                    pass
            self._previous.clear()

        def handler(signum: int, _frame: Any) -> None:
            restore()
            self.trip(signum)

        try:
            for signum in self.signals:
                self._previous[signum] = _signal.signal(signum, handler)
        except ValueError:  # not the main thread
            self._previous.clear()
        return restore
