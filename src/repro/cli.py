"""``repro-study`` command-line interface.

Subcommands:

* ``generate`` — build the synthetic dataset (snapshots + dictionaries)
  into a :class:`~repro.collector.store.DatasetStore` directory;
* ``analyze``  — run the paper's analyses over a store (or directly over
  freshly generated snapshots) and print the figures/tables;
* ``serve``    — start a Looking Glass HTTP server over a generated
  route server, for interactive poking / the scraping example;
* ``api``      — serve the study itself over HTTP: a read-only JSON
  query API (tables, figures, per-IXP aggregates) over a collected
  store, with content-addressed ETags, a bounded response cache, and
  a pre-fork worker pool (``--workers N``); bodies are byte-identical
  to ``export --json`` output;
* ``sanitise`` — run the §3 valley sanitation over a store and report
  what would be removed;
* ``campaign`` — run a fault-tolerant collection campaign against a
  Looking Glass URL (checkpointed; re-run with ``--resume`` to pick up
  an interrupted collection at the last completed peer; SIGINT/SIGTERM
  park the run gracefully with exit code 2; ``--workers N`` fans
  per-peer fetches over a bounded pool and ``--target-workers M``
  collects mounts concurrently — snapshot bytes are identical to a
  serial run either way);
* ``fsck``     — verify every artefact in a store against its manifest
  and embedded checksums; ``--repair`` quarantines damaged files
  (never deletes) and rebuilds the manifest. Exit 0 = clean,
  1 = damage found;
* ``convert``  — re-encode stored snapshots between payload codecs
  (``--to json`` / ``--to columnar``) in place; each rewrite is
  verified to round-trip to the identical snapshot before the
  original is replaced, so exported analyses stay byte-identical;
* ``export``   — write every figure/table's data as CSV (and optionally
  one JSON bundle) for external plotting;
* ``metrics``  — fetch a running LG's ``/metrics`` endpoint, validate
  the Prometheus exposition format, and print it (used by CI to fail
  on malformed output).

``analyze`` is also reachable as ``pipeline``. Both it and ``campaign``
accept ``--metrics-out PATH`` to enable the :mod:`repro.obs` registry
and dump a JSON run report (metrics snapshot + trace summary) on exit —
including campaign exits that park incomplete targets for ``--resume``.

Store and I/O failures print a one-line diagnostic and exit 1 instead
of a raw traceback.
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import Callable, List, Optional, Sequence

from . import obs
from .collector import DatasetStore, IntegrityError, sanitise_store
from .core import Study
from .core.report import format_table, render_share_bars
from .ixp import ALL_IXPS, LARGE_FOUR, get_profile
from .workload import ScenarioConfig, SnapshotGenerator, weekly_days


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ixps", nargs="+", default=list(LARGE_FOUR),
                        choices=list(ALL_IXPS), metavar="IXP",
                        help="IXP keys (default: the four largest)")
    parser.add_argument("--families", nargs="+", type=int, default=[4, 6],
                        choices=[4, 6], help="address families")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="population scale vs the paper (default 0.05)")
    parser.add_argument("--seed", type=int, default=20211004)


def _guarded(func: Callable[[argparse.Namespace], int]
             ) -> Callable[[argparse.Namespace], int]:
    """Turn store/IO failures into a one-line diagnostic + exit 1.

    Campaign park exits (2) and other deliberate return codes pass
    through untouched; only exceptions are translated.
    """
    @functools.wraps(func)
    def wrapper(args: argparse.Namespace) -> int:
        try:
            return func(args)
        except IntegrityError as error:
            where = f" [{error.path}]" if error.path else ""
            print(f"error: dataset damage ({error.damage_class})"
                  f"{where}: {error}", file=sys.stderr)
            return 1
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    return wrapper


def _report_damage(damaged: Sequence) -> None:
    for record in damaged:
        print(f"warning: quarantined damaged artefact "
              f"{record.original} ({record.damage_class}) — treated "
              f"as a missing day", file=sys.stderr)


def _dump_metrics(args: argparse.Namespace, kind: str,
                  meta: Optional[dict] = None) -> None:
    """Write the run report for ``--metrics-out`` (when given)."""
    path = getattr(args, "metrics_out", None)
    if not path:
        return
    report = obs.build_run_report(kind, meta=meta or {},
                                 registry=obs.get_registry(),
                                 tracer=obs.get_tracer())
    obs.write_run_report(path, report)
    print(f"wrote metrics report to {path}")


def cmd_generate(args: argparse.Namespace) -> int:
    store = DatasetStore(args.store)
    config = ScenarioConfig(scale=args.scale, seed=args.seed)
    for ixp in args.ixps:
        generator = SnapshotGenerator(get_profile(ixp), config)
        store.save_dictionary(ixp, generator.dictionary)
        days = weekly_days() if args.weekly else range(args.days)
        for family in args.families:
            for day in days:
                snapshot = generator.snapshot(
                    family, day, degraded=None if args.failures else False)
                path = store.save_snapshot(snapshot)
                print(f"wrote {path}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    if args.metrics_out:
        obs.enable()
    try:
        return _run_analyze(args)
    finally:
        _dump_metrics(args, "pipeline",
                      meta={"ixps": list(args.ixps),
                            "families": list(args.families),
                            "store": args.store})


def _run_analyze(args: argparse.Namespace) -> int:
    if args.store:
        from .core.engine import AggregateCache

        store = DatasetStore(args.store)
        damaged: list = []
        cache = None if args.no_cache else AggregateCache(store)
        study = Study.from_store(store, args.ixps, args.families,
                                 damaged=damaged, jobs=args.jobs,
                                 cache=cache)
        _report_damage(damaged)
    else:
        study = Study.synthetic(ixps=args.ixps, families=args.families,
                                scale=args.scale, seed=args.seed,
                                jobs=args.jobs)

    print(format_table(study.table1(), title="Table 1 — IXPs in numbers"))
    for family in args.families:
        print(f"\n== IPv{family} ==")
        print(render_share_bars(
            study.ixp_defined_vs_unknown(family), "ixp",
            ["defined_share", "unknown_share"]))
        print(render_share_bars(
            study.action_vs_informational(family), "ixp",
            ["action_share", "informational_share"]))
        print(format_table(study.ases_using_actions(family),
                           title=f"Fig. 4a (IPv{family})"))
        print(format_table(study.ineffective_summary(family),
                           title=f"§5.5 ineffective shares (IPv{family})"))
    if args.store and obs.enabled():
        # attach the pipeline's self-measurement to the dataset it read
        store = DatasetStore(args.store)
        path = store.save_run_report(
            "analyze", obs.build_run_report(
                "pipeline", meta={"ixps": list(args.ixps),
                                  "families": list(args.families)}))
        print(f"attached metrics report: {path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .lg import LookingGlassServer

    if not args.no_metrics:
        obs.enable()  # makes the LG's /metrics endpoint live
    config = ScenarioConfig(scale=args.scale, seed=args.seed)
    mounts = {}
    for ixp in args.ixps:
        generator = SnapshotGenerator(get_profile(ixp), config)
        for family in args.families:
            print(f"populating {ixp} v{family} ...", flush=True)
            mounts[(ixp, family)] = generator.populated_route_server(family)
    server = LookingGlassServer(mounts, port=args.port,
                                failure_rate=args.failure_rate)
    url = server.start()
    print(f"Looking glass serving at {url}")
    for (ixp, family) in mounts:
        print(f"  {url}/{ixp}/v{family}/api/v1/neighbors")
    if not args.no_metrics:
        print(f"  {url}/metrics")
    _wait_for_shutdown()
    server.stop()
    return 0


def _wait_for_shutdown() -> None:
    """Block until SIGINT/SIGTERM (signal-driven — no polling loop).

    Shared by ``serve`` and ``api``: both are "run until told to stop"
    commands, and both must honour SIGTERM (what process supervisors
    and CI send) exactly like Ctrl-C, so a drain actually runs instead
    of the process being killed mid-response.
    """
    from .net import ShutdownLatch

    latch = ShutdownLatch()
    restore = latch.install()
    try:
        latch.wait()
    except KeyboardInterrupt:
        pass  # latch couldn't claim the signal (non-main thread)
    finally:
        restore()


def cmd_api(args: argparse.Namespace) -> int:
    from .query import (
        PreforkServer,
        QueryHTTPServer,
        QueryService,
        ResponseCache,
    )

    if not args.no_metrics:
        obs.enable()  # inherited across fork: every worker is live
    # fail fast (before binding or forking) on an unreadable store
    DatasetStore(args.store).ixps()
    ixps = args.ixps or None

    def factory(sock) -> QueryHTTPServer:
        # runs post-fork, in the worker: own store handles, own
        # response cache, own rate limiter.
        service = QueryService(
            DatasetStore(args.store), ixps=ixps,
            families=tuple(args.families), jobs=args.jobs,
            response_cache=ResponseCache(
                max_entries=args.cache_entries,
                max_bytes=args.cache_bytes))
        return QueryHTTPServer(
            service, rate_per_second=args.rate, burst=args.burst,
            max_inflight=args.max_inflight, sock=sock)

    supervisor = PreforkServer(
        factory, host=args.host, port=args.port, workers=args.workers,
        prefer_reuse_port=not args.no_reuse_port)
    return supervisor.run()


def cmd_sanitise(args: argparse.Namespace) -> int:
    store = DatasetStore(args.store)
    for ixp in args.ixps:
        for family in args.families:
            report = sanitise_store(store, ixp, family)
            if not (report.kept or report.removed
                    or report.quarantined):
                continue
            line = (f"{ixp} v{family}: kept {len(report.kept)}, removed "
                    f"{len(report.removed)} "
                    f"({report.removed_fraction * 100:.1f}%)")
            if report.quarantined:
                line += (f", {len(report.quarantined)} quarantined "
                         f"(missing days)")
            print(line)
            for original in report.quarantined:
                print(f"  quarantined damaged snapshot: {original}")
            for snapshot in report.removed:
                reason = report.reasons[snapshot.key]
                print(f"  valley in {reason}: {snapshot.key}")
                if args.delete:
                    store.delete_snapshot(
                        snapshot.ixp, snapshot.family, snapshot.captured_on)
    return 0


def _run_dispatch(args: argparse.Namespace,
                  store: DatasetStore) -> int:
    """The ``campaign --dispatch N`` path: shard (IXP, family, day)
    units across worker processes under lease-based claims. Exit codes
    mirror the serial campaign: 0 = every unit published, 2 = units
    still claimable (re-run to continue), 1 = units abandoned."""
    from .collector.dispatch import (
        DispatchConfig,
        DispatchCoordinator,
        WorkUnit,
    )
    from .collector.scraper import utc_today

    date = args.date or utc_today()
    units = [WorkUnit(ixp=ixp, family=family, date=date,
                      dialect=args.dialect)
             for ixp in args.ixps for family in args.families]
    config = DispatchConfig(
        base_url=args.url.rstrip("/"),
        units=units,
        workers=args.dispatch,
        lease_ttl=args.lease_ttl,
        peer_attempts=args.peer_attempts,
        snapshot_deadline=args.deadline,
        checkpoint_every=args.checkpoint_every,
        fetch_workers=args.workers,
        io=args.io,
        max_inflight=args.max_inflight,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        max_retries=args.max_retries,
        request_timeout=args.timeout,
        host_id=args.host_id,
        clock_skew_budget=args.clock_skew_budget,
        snapshot_codec=args.snapshot_format,
    )
    if args.metrics_out:
        obs.enable()
    report = None
    try:
        report = DispatchCoordinator(store, config).run()
        print(report.format_summary())
        if report.fsck_clean is False:
            print("merged store failed the fsck audit — run "
                  "`repro-study fsck --repair`", file=sys.stderr)
            return 1
        if report.complete:
            return 0
        return 2 if report.resumable else 1
    finally:
        _dump_metrics(args, "dispatch",
                      meta=report.to_dict() if report is not None
                      else {"url": config.base_url, "aborted": True})


def cmd_campaign(args: argparse.Namespace) -> int:
    from .collector.campaign import (
        CampaignConfig,
        CampaignTarget,
        CollectionCampaign,
        install_shutdown_handlers,
    )

    store = DatasetStore(args.store,
                         snapshot_codec=args.snapshot_format)
    if args.dispatch:
        return _run_dispatch(args, store)
    targets = [CampaignTarget(ixp=ixp, family=family,
                              dialect=args.dialect)
               for ixp in args.ixps for family in args.families]
    config = CampaignConfig(
        base_url=args.url.rstrip("/"),
        targets=targets,
        captured_on=args.date,
        peer_attempts=args.peer_attempts,
        snapshot_deadline=args.deadline,
        checkpoint_every=args.checkpoint_every,
        workers=args.workers,
        target_workers=args.target_workers,
        io=args.io,
        max_inflight=args.max_inflight,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        max_retries=args.max_retries,
        request_timeout=args.timeout,
    )
    campaign = CollectionCampaign(store, config)
    if args.metrics_out:
        obs.enable()
    # SIGINT/SIGTERM flush a checkpoint and park resumable (exit 2)
    # instead of tearing mid-write; a second signal hard-stops.
    restore_signals = install_shutdown_handlers(campaign)
    report = None
    try:
        report = campaign.run(resume=args.resume)
        print(report.format_summary())
        if report.interrupted:
            print("shutdown requested — progress checkpointed; "
                  "re-run with --resume to continue")
            return 2
        if report.resumable:
            print("incomplete targets parked as checkpoints — "
                  "re-run with --resume to continue")
            return 2
        return 0 if all(t.status != "failed" for t in report.targets) else 1
    finally:
        restore_signals()
        # runs on every exit path, including parked (exit 2) campaigns,
        # so an interrupted collection still leaves its metrics behind
        _dump_metrics(args, "campaign",
                      meta=report.to_dict() if report is not None
                      else {"url": config.base_url, "aborted": True})


def cmd_metrics(args: argparse.Namespace) -> int:
    import json as _json
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/metrics"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as response:
            text = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as error:
        print(f"metrics fetch failed: {error}", file=sys.stderr)
        return 1
    try:
        families = obs.parse_prometheus(text)
    except obs.ExpositionFormatError as error:
        print(f"malformed exposition output: {error}", file=sys.stderr)
        return 1
    if args.json:
        payload = {
            name: {"type": family["type"],
                   "samples": [
                       {"name": sample_name, "labels": labels,
                        "value": value}
                       for sample_name, labels, value
                       in family["samples"]]}
            for name, family in families.items()}
        print(_json.dumps(payload, indent=1, sort_keys=True))
    elif not args.quiet:
        sys.stdout.write(text)
    print(f"# exposition OK: {len(families)} metric families",
          file=sys.stderr)
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    import json as _json

    from .collector import fsck_store
    from .collector.fsck import DEFAULT_RECLAIM_AGE

    store = DatasetStore(args.store)
    reclaim_age = (DEFAULT_RECLAIM_AGE if args.reclaim_age is None
                   else args.reclaim_age)
    report = fsck_store(store, repair=args.repair,
                        reclaim_age=reclaim_age)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(report.format_summary())
    return 0 if report.clean else 1


def cmd_convert(args: argparse.Namespace) -> int:
    store = DatasetStore(args.store)
    ixps = args.ixps or store.ixps()
    families = args.families or [4, 6]
    converted = unchanged = damaged = 0
    for ixp in ixps:
        for family in families:
            for date in store.snapshot_dates(ixp, family):
                try:
                    _path, changed = store.convert_snapshot(
                        ixp, family, date, args.to)
                except IntegrityError as error:
                    damaged += 1
                    where = f" [{error.path}]" if error.path else ""
                    print(f"warning: {ixp}/v{family}/{date} damaged "
                          f"({error.damage_class}){where} — "
                          f"quarantined, not converted",
                          file=sys.stderr)
                    continue
                if changed:
                    converted += 1
                    if not args.quiet:
                        print(f"converted {ixp}/v{family}/{date} "
                              f"-> {args.to}")
                else:
                    unchanged += 1
    print(f"convert: {converted} converted, {unchanged} already "
          f"{args.to}, {damaged} damaged")
    return 1 if damaged else 0


def cmd_export(args: argparse.Namespace) -> int:
    from .core.export import export_study_csv, export_study_json

    if args.store:
        store = DatasetStore(args.store)
        damaged: list = []
        study = Study.from_store(store, args.ixps, args.families,
                                 damaged=damaged)
        _report_damage(damaged)
    else:
        study = Study.synthetic(ixps=args.ixps, families=args.families,
                                scale=args.scale, seed=args.seed)
    paths = export_study_csv(study, args.out, families=args.families)
    for path in paths:
        print(f"wrote {path}")
    if args.json:
        print(f"wrote {export_study_json(study, args.json, args.families)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a synthetic dataset")
    _add_common(p_gen)
    p_gen.add_argument("--store", required=True, help="dataset directory")
    p_gen.add_argument("--weekly", action="store_true",
                       help="one snapshot per week (12) instead of daily")
    p_gen.add_argument("--days", type=int, default=84,
                       help="daily snapshots to generate (without --weekly)")
    p_gen.add_argument("--failures", action="store_true",
                       help="inject LG collection failures (§3 valleys)")
    p_gen.set_defaults(func=_guarded(cmd_generate))

    p_ana = sub.add_parser("analyze", aliases=["pipeline"],
                           help="run the paper's analyses")
    _add_common(p_ana)
    p_ana.add_argument("--store", help="dataset directory (else generate "
                                       "in memory)")
    p_ana.add_argument("--metrics-out", metavar="PATH",
                       help="enable observability and write a JSON "
                            "metrics run report here on exit")
    p_ana.add_argument("--jobs", type=int, default=1,
                       help="aggregation worker processes (default 1 = "
                            "serial; results are value-identical "
                            "either way)")
    p_ana.add_argument("--no-cache", action="store_true",
                       help="skip the store's aggregate cache and "
                            "recompute from route data (with --store; "
                            "output is identical, only slower)")
    p_ana.set_defaults(func=_guarded(cmd_analyze))

    p_srv = sub.add_parser("serve", help="serve a Looking Glass")
    _add_common(p_srv)
    p_srv.add_argument("--port", type=int, default=8642)
    p_srv.add_argument("--failure-rate", type=float, default=0.0)
    p_srv.add_argument("--no-metrics", action="store_true",
                       help="leave observability off (/metrics reports "
                            "'disabled')")
    p_srv.set_defaults(func=cmd_serve)

    p_api = sub.add_parser(
        "api", help="serve the study as a read-only JSON query API "
                    "over a collected store")
    p_api.add_argument("--store", required=True, help="dataset directory")
    p_api.add_argument("--ixps", nargs="+", default=[],
                       choices=list(ALL_IXPS), metavar="IXP",
                       help="IXP keys to serve (default: every IXP "
                            "present in the store)")
    p_api.add_argument("--families", nargs="+", type=int, default=[4, 6],
                       choices=[4, 6], help="address families")
    p_api.add_argument("--host", default="127.0.0.1")
    p_api.add_argument("--port", type=int, default=8700,
                       help="listening port (0 = any free port)")
    p_api.add_argument("--workers", type=int, default=2,
                       help="pre-fork worker processes sharing the "
                            "port (1 = serve in-process)")
    p_api.add_argument("--jobs", type=int, default=1,
                       help="aggregation worker processes per study "
                            "rebuild (as for analyze --jobs)")
    p_api.add_argument("--rate", type=float, default=500.0,
                       help="sustained requests/second budget per "
                            "worker before 429s")
    p_api.add_argument("--burst", type=int, default=500,
                       help="rate-limiter burst size per worker")
    p_api.add_argument("--max-inflight", type=int, default=64,
                       help="concurrent requests per worker before "
                            "503 overload shedding")
    p_api.add_argument("--cache-entries", type=int, default=256,
                       help="response-cache entry budget per worker")
    p_api.add_argument("--cache-bytes", type=int,
                       default=64 * 1024 * 1024,
                       help="response-cache byte budget per worker")
    p_api.add_argument("--no-reuse-port", action="store_true",
                       help="force the inherited-FD worker model even "
                            "where SO_REUSEPORT is available")
    p_api.add_argument("--no-metrics", action="store_true",
                       help="leave observability off (/metrics reports "
                            "'disabled')")
    p_api.set_defaults(func=_guarded(cmd_api))

    p_san = sub.add_parser("sanitise", help="run §3 valley sanitation")
    _add_common(p_san)
    p_san.add_argument("--store", required=True)
    p_san.add_argument("--delete", action="store_true",
                       help="actually delete valley snapshots")
    p_san.set_defaults(func=_guarded(cmd_sanitise))

    p_camp = sub.add_parser(
        "campaign", help="run a fault-tolerant collection campaign")
    p_camp.add_argument("--ixps", nargs="+", default=list(LARGE_FOUR),
                        choices=list(ALL_IXPS), metavar="IXP",
                        help="IXP keys (default: the four largest)")
    p_camp.add_argument("--families", nargs="+", type=int, default=[4, 6],
                        choices=[4, 6], help="address families")
    p_camp.add_argument("--url", required=True,
                        help="Looking Glass base URL (see `serve`)")
    p_camp.add_argument("--store", required=True,
                        help="dataset directory for snapshots "
                             "and checkpoints")
    p_camp.add_argument("--date", help="snapshot date (default: today)")
    p_camp.add_argument("--resume", action="store_true",
                        help="continue from checkpoints; skip dates "
                             "already collected")
    p_camp.add_argument("--deadline", type=float, default=None,
                        help="per-snapshot wall-clock budget, seconds")
    p_camp.add_argument("--peer-attempts", type=int, default=2,
                        help="collection attempts per peer")
    p_camp.add_argument("--max-retries", type=int, default=3,
                        help="HTTP retries per request")
    p_camp.add_argument("--timeout", type=float, default=30.0,
                        help="HTTP request timeout, seconds")
    p_camp.add_argument("--breaker-threshold", type=int, default=3,
                        help="consecutive failures that open the "
                             "circuit breaker")
    p_camp.add_argument("--breaker-reset", type=float, default=5.0,
                        help="seconds before an open breaker probes")
    p_camp.add_argument("--checkpoint-every", type=int, default=1,
                        help="persist a checkpoint every N peers")
    p_camp.add_argument("--workers", type=int, default=1,
                        help="per-peer fetch workers within one mount "
                             "(1 = strictly sequential; snapshots are "
                             "byte-identical either way)")
    p_camp.add_argument("--target-workers", type=int, default=1,
                        help="(ixp, family) mounts collected "
                             "concurrently")
    p_camp.add_argument("--io", choices=("threads", "async"),
                        default="threads",
                        help="per-peer fetch engine: 'threads' fans "
                             "peers over --workers pool threads, "
                             "'async' fans route pages over one "
                             "selectors event loop (snapshots are "
                             "byte-identical either way)")
    p_camp.add_argument("--max-inflight", type=int, default=32,
                        help="concurrent page fetches (and at most "
                             "that many connections) under "
                             "--io async; ignored for threads")
    p_camp.add_argument("--dispatch", type=int, default=0, metavar="N",
                        help="shard units across N worker processes "
                             "under lease-based claims (0 = run "
                             "in-process; survives kill -9 of any "
                             "worker — re-run to continue)")
    p_camp.add_argument("--lease-ttl", type=float, default=15.0,
                        help="dispatch lease TTL, seconds; an "
                             "unrenewed lease older than this is "
                             "stolen by an idle worker")
    p_camp.add_argument("--host-id", default=None, metavar="NAME",
                        help="host name written into dispatch lease "
                             "identities (default: the machine's "
                             "hostname); give each host sharing one "
                             "store a distinct name")
    p_camp.add_argument("--clock-skew-budget", type=float, default=0.0,
                        metavar="SECONDS",
                        help="how far another host's wall clock may "
                             "run ahead before its lease renewals are "
                             "distrusted and judged by monotonic "
                             "observation instead (multi-host "
                             "dispatch; 0 = trust wall clocks)")
    p_camp.add_argument("--dialect", default="alice",
                        choices=["alice", "birdseye"],
                        help="LG API dialect")
    p_camp.add_argument("--snapshot-format", default="json",
                        choices=["json", "columnar"],
                        help="payload codec for written snapshots; "
                             "reads auto-detect, so mixed stores are "
                             "fine (see `convert` to migrate)")
    p_camp.add_argument("--metrics-out", metavar="PATH",
                        help="enable observability and write a JSON "
                             "metrics run report here on exit (also on "
                             "parked/resumable exits)")
    p_camp.set_defaults(func=_guarded(cmd_campaign))

    p_met = sub.add_parser(
        "metrics", help="fetch and validate a Looking Glass /metrics "
                        "exposition")
    p_met.add_argument("--url", required=True,
                       help="Looking Glass base URL (see `serve`)")
    p_met.add_argument("--timeout", type=float, default=10.0,
                       help="HTTP timeout, seconds")
    p_met.add_argument("--json", action="store_true",
                       help="print the parsed families as JSON instead "
                            "of the raw exposition text")
    p_met.add_argument("--quiet", action="store_true",
                       help="validate only; do not print the payload")
    p_met.set_defaults(func=cmd_metrics)

    p_exp = sub.add_parser("export", help="export figure/table data")
    _add_common(p_exp)
    p_exp.add_argument("--store", help="dataset directory (else generate "
                                       "in memory)")
    p_exp.add_argument("--out", required=True, help="CSV output directory")
    p_exp.add_argument("--json", help="also write one JSON bundle here")
    p_exp.set_defaults(func=_guarded(cmd_export))

    p_fsck = sub.add_parser(
        "fsck", help="verify a store's artefacts; --repair quarantines "
                     "damage and rebuilds the manifests")
    p_fsck.add_argument("--store", required=True, help="dataset directory")
    p_fsck.add_argument("--repair", action="store_true",
                        help="move damaged artefacts to quarantine/ "
                             "(never deletes) and rebuild manifests")
    p_fsck.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    p_fsck.add_argument("--reclaim-age", type=float,
                        default=None, metavar="SECONDS",
                        help="age past which orphaned dispatch state "
                             "(leases/, staging/) is reported and, "
                             "with --repair, reclaimed "
                             "(default: 7 days)")
    p_fsck.set_defaults(func=_guarded(cmd_fsck))

    p_con = sub.add_parser(
        "convert", help="re-encode stored snapshots between payload "
                        "codecs in place (json <-> columnar); every "
                        "rewrite is round-trip-verified first and "
                        "analysis output is byte-identical")
    p_con.add_argument("--store", required=True, help="dataset directory")
    p_con.add_argument("--to", required=True,
                       choices=["json", "columnar"],
                       help="target payload codec")
    p_con.add_argument("--ixps", nargs="+", default=None,
                       metavar="IXP",
                       help="limit to these IXP keys (default: every "
                            "IXP in the store)")
    p_con.add_argument("--families", nargs="+", type=int, default=None,
                       choices=[4, 6],
                       help="limit to these address families")
    p_con.add_argument("--quiet", action="store_true",
                       help="print only the final summary line")
    p_con.set_defaults(func=_guarded(cmd_convert))
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
