"""IXP member modelling.

A :class:`Member` is one AS connected to the IXP. Members may or may not
have a BGP session with the route server (the paper's §3 distinguishes
total members from members *at the RS*: 72.2% for IPv4 and 57.1% for IPv6
on average), and per address family at that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class MemberRole(str, enum.Enum):
    """Business role of a member network.

    Roles drive both tagging behaviour (large ISPs tag aggressively,
    §5.5) and targeting (content providers are the most-avoided targets,
    §5.4).
    """

    CONTENT_PROVIDER = "content-provider"
    TRANSIT_ISP = "transit-isp"
    ACCESS_ISP = "access-isp"
    ENTERPRISE = "enterprise"
    EDUCATION = "education"
    CLOUD = "cloud"


@dataclass(frozen=True)
class Member:
    """One IXP member AS.

    Attributes:
        asn: the member's AS number.
        name: human-readable network name.
        role: business role (see :class:`MemberRole`).
        at_rs_v4 / at_rs_v6: whether the member maintains a BGP session
            with the IPv4 / IPv6 route server. A member with neither is
            bilateral-only — precisely the kind of AS that action
            communities *uselessly* target in §5.5.
        peering_ip_v4 / peering_ip_v6: addresses on the peering LAN.
        prefix_count_v4 / prefix_count_v6: how many prefixes the member
            originates towards the RS (0 for sessions that only listen).
    """

    asn: int
    name: str
    role: MemberRole
    at_rs_v4: bool = True
    at_rs_v6: bool = False
    peering_ip_v4: Optional[str] = None
    peering_ip_v6: Optional[str] = None
    prefix_count_v4: int = 0
    prefix_count_v6: int = 0

    def at_rs(self, family: int) -> bool:
        """Is this member at the route server for the given family?"""
        return self.at_rs_v4 if family == 4 else self.at_rs_v6

    def prefix_count(self, family: int) -> int:
        return self.prefix_count_v4 if family == 4 else self.prefix_count_v6

    def peering_ip(self, family: int) -> Optional[str]:
        return self.peering_ip_v4 if family == 4 else self.peering_ip_v6

    def to_dict(self) -> Dict[str, Any]:
        """JSON form used in LG ``/neighbors`` responses and snapshots."""
        return {
            "asn": self.asn,
            "name": self.name,
            "role": self.role.value,
            "at_rs_v4": self.at_rs_v4,
            "at_rs_v6": self.at_rs_v6,
            "peering_ip_v4": self.peering_ip_v4,
            "peering_ip_v6": self.peering_ip_v6,
            "prefix_count_v4": self.prefix_count_v4,
            "prefix_count_v6": self.prefix_count_v6,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Member":
        return cls(
            asn=int(payload["asn"]),
            name=str(payload["name"]),
            role=MemberRole(payload["role"]),
            at_rs_v4=bool(payload.get("at_rs_v4", True)),
            at_rs_v6=bool(payload.get("at_rs_v6", False)),
            peering_ip_v4=payload.get("peering_ip_v4"),
            peering_ip_v6=payload.get("peering_ip_v6"),
            prefix_count_v4=int(payload.get("prefix_count_v4", 0)),
            prefix_count_v6=int(payload.get("prefix_count_v6", 0)),
        )
