"""AMS-IX (Amsterdam) community scheme.

AMS-IX route servers (AS6777) document the smallest scheme of the four
large IXPs — 37 concrete entries. Standard-community prepending is only
available towards *all* peers; fine-grained prepending requires extended
communities (paper §5.3), so ``supports_targeted_prepend`` is False and
Table 2 reports zero ASes using prepend-to standard communities at
AMS-IX. Blackholing was not documented during the collection window.
"""

from __future__ import annotations

from .common import SchemeSpec

SPEC = SchemeSpec(
    rs_asn=6777,
    prepend_bases=((65511, 1), (65512, 2), (65513, 3)),
    supports_targeted_prepend=False,
    # The RS accepts RFC 7999 blackhole requests even though the website
    # documentation does not mention the service — Table 2 still shows 9
    # ASes (1.4%) using blackholing at AMS-IX; the paper's June 2022
    # re-collection found 1367 blackhole routes, suggesting the service
    # was being introduced.
    supports_blackholing=True,
    informational_count=11,
    documented_target_count=10,
)
