"""Per-IXP community schemes and the dictionary factory.

:func:`dictionary_for` returns the union dictionary (RS config ∪ website
docs) for an IXP profile, which is what the paper classifies with;
:func:`dictionary_pair_for` returns the two sources separately for the
dictionary-union ablation.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..dictionary import CommunityDictionary
from ..profiles import IxpProfile
from . import amsix, bcix, decix, ixbr, linx, netnod
from .common import (
    BLACKHOLE_COMMUNITY,
    FAMOUS_TARGETS,
    SchemeSpec,
    build_pair,
    build_union,
    documented_target_asns,
)

_SPECS: Dict[str, SchemeSpec] = {
    "ixbr-sp": ixbr.SPEC,
    "decix-fra": decix.FRANKFURT,
    "decix-mad": decix.MADRID,
    "decix-nyc": decix.NEW_YORK,
    "linx": linx.SPEC,
    "amsix": amsix.SPEC,
    "bcix": bcix.SPEC,
    "netnod": netnod.SPEC,
}


def spec_for(profile: IxpProfile) -> SchemeSpec:
    """The community scheme spec for an IXP profile."""
    try:
        return _SPECS[profile.key]
    except KeyError:
        raise KeyError(f"no community scheme for IXP {profile.key!r}; "
                       f"known: {sorted(_SPECS)}") from None


def dictionary_for(profile: IxpProfile) -> CommunityDictionary:
    """The union dictionary for *profile* (RS config ∪ website docs)."""
    return build_union(spec_for(profile), profile.name)


def dictionary_pair_for(
        profile: IxpProfile,
) -> Tuple[CommunityDictionary, CommunityDictionary]:
    """The (rs-config, website) dictionaries before taking the union."""
    return build_pair(spec_for(profile), profile.name)


__all__ = [
    "SchemeSpec", "spec_for", "dictionary_for", "dictionary_pair_for",
    "build_pair", "build_union", "documented_target_asns",
    "FAMOUS_TARGETS", "BLACKHOLE_COMMUNITY",
]
