"""Generic machinery to build per-IXP community dictionaries.

Every studied IXP documents the same *shape* of scheme (BIRD route-server
conventions), parameterised by its route-server ASN:

* ``0:<peer-as>``        — do not announce to <peer-as>;
* ``0:<rs-asn>``         — do not announce to anyone;
* ``<rs-asn>:<peer-as>`` — announce only to <peer-as>;
* ``<rs-asn>:<rs-asn>``  — announce to everyone;
* ``<prepend-base+n>:<peer-as>`` — prepend n× to <peer-as> (where
  supported); value ``<rs-asn>`` means prepend to everyone;
* ``65535:666``          — RFC 7999 blackhole (where supported);
* ``<rs-asn>:<1000+k>``  — informational tags added by the RS.

An IXP's dictionary is the union of the RS-config list and the website
documentation (§3); we reproduce the paper's observation that the RS list
is *incomplete* by marking a slice of entries website-only.

A :class:`SchemeSpec` captures the per-IXP parameters; :func:`build_pair`
produces the (rs-config, website) dictionaries whose union has exactly the
entry count the paper reports for that IXP.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ...bgp.communities import StandardCommunity, standard
from ..dictionary import (
    SOURCE_BOTH,
    SOURCE_RS_CONFIG,
    SOURCE_WEBSITE,
    CommunityDictionary,
    CommunityEntry,
    CommunityRule,
    ExtendedCommunityRule,
    LargeCommunityRule,
    Semantics,
)
from ..taxonomy import ActionCategory, CommunityRole, Target

#: Well-known networks that IXP documentation pages name explicitly as
#: community targets (the "documented targets"). These are public ASNs;
#: the set skews towards content providers, matching §5.4's finding that
#: CPs are the most targeted networks.
FAMOUS_TARGETS: Tuple[Tuple[int, str], ...] = (
    (6939, "Hurricane Electric"),
    (15169, "Google"),
    (20940, "Akamai"),
    (13335, "Cloudflare"),
    (2906, "Netflix"),
    (16276, "OVHcloud"),
    (60781, "LeaseWeb"),
    (15133, "Edgecast"),
    (714, "Apple"),
    (8075, "Microsoft"),
    (16509, "Amazon"),
    (54113, "Fastly"),
    (32934, "Meta"),
    (22822, "Limelight"),
    (46489, "Twitch"),
    (3356, "Lumen"),
    (1299, "Arelion"),
    (174, "Cogent"),
    (6453, "TATA"),
    (2914, "NTT"),
)

#: RFC 7999 blackhole community.
BLACKHOLE_COMMUNITY = standard(65535, 666)


def documented_target_asns(count: int, extra: Sequence[int] = ()) -> List[int]:
    """A deterministic list of *count* documented target ASNs.

    Starts from :data:`FAMOUS_TARGETS` plus *extra*, padded with a
    deterministic spread of plausible 16-bit ASNs. Used to hit the exact
    per-IXP dictionary sizes from the paper.
    """
    seen: List[int] = []
    for asn, _ in FAMOUS_TARGETS:
        if asn not in seen:
            seen.append(asn)
    for asn in extra:
        if asn not in seen:
            seen.append(asn)
    filler = 3000
    while len(seen) < count:
        if filler not in seen:
            seen.append(filler)
        filler += 97  # co-prime stride to spread across the ASN space
    return seen[:count]


@dataclass(frozen=True)
class SchemeSpec:
    """Parameters of one IXP's community scheme."""

    rs_asn: int
    #: (asn_field, prepend_count) pairs for targeted prepending, e.g.
    #: DE-CIX's ((65501, 1), (65502, 2), (65503, 3)).
    prepend_bases: Tuple[Tuple[int, int], ...] = ()
    supports_targeted_prepend: bool = False
    supports_blackholing: bool = False
    informational_count: int = 12
    documented_target_count: int = 10
    extra_documented_targets: Tuple[int, ...] = ()
    #: fraction of per-target entries present only in the website docs
    #: (reproducing the incomplete-RS-config finding of §3).
    website_only_fraction: float = 0.2
    #: informational entries that only appear in the RS config dump.
    rs_only_informational: int = 2

    @property
    def dna_all(self) -> StandardCommunity:
        """Do-not-announce-to-anyone."""
        return standard(0, min(self.rs_asn, 0xFFFF))

    @property
    def announce_all(self) -> StandardCommunity:
        """Announce-to-everyone."""
        rs16 = min(self.rs_asn, 0xFFFF)
        return standard(rs16, rs16)


def _informational_entries(spec: SchemeSpec) -> List[CommunityEntry]:
    """RS-added informational tags: origin location, learned-from, RTT
    class, etc. — the kind of tags §5.1 says "the IXP typically adds to
    every route"."""
    descriptions = (
        "route learned at primary site",
        "route learned at secondary site",
        "route learned from peer at RS",
        "route received on 100G port",
        "route received on 10G port",
        "origin validated by RPKI",
        "origin unknown to RPKI",
        "route from local member",
        "route from remote peering",
        "member of MLPA",
        "premium peering port",
        "legacy peering LAN",
        "route older than 1 day",
        "route refreshed recently",
        "IRR-validated route object",
        "route via reseller port",
        "backup route server origin",
        "maintenance drain tag",
        "route learned via PNI gateway",
        "community metrics sampling tag",
    )
    rs16 = min(spec.rs_asn, 0xFFFF)
    entries = []
    for index in range(spec.informational_count):
        description = descriptions[index % len(descriptions)]
        entries.append(CommunityEntry(
            community=standard(rs16, 1000 + index),
            semantics=Semantics(
                role=CommunityRole.INFORMATIONAL,
                description=description),
            source=SOURCE_BOTH))
    return entries


def _fixed_action_entries(spec: SchemeSpec) -> List[CommunityEntry]:
    entries = [
        CommunityEntry(
            community=spec.dna_all,
            semantics=Semantics(
                role=CommunityRole.ACTION,
                category=ActionCategory.DO_NOT_ANNOUNCE_TO,
                target=Target.all_peers(),
                description="do not announce to any peer"),
            source=SOURCE_BOTH),
        CommunityEntry(
            community=spec.announce_all,
            semantics=Semantics(
                role=CommunityRole.ACTION,
                category=ActionCategory.ANNOUNCE_ONLY_TO,
                target=Target.all_peers(),
                description="announce to all peers"),
            source=SOURCE_BOTH),
    ]
    rs16 = min(spec.rs_asn, 0xFFFF)
    for asn_field, count in spec.prepend_bases:
        entries.append(CommunityEntry(
            community=standard(asn_field, rs16),
            semantics=Semantics(
                role=CommunityRole.ACTION,
                category=ActionCategory.PREPEND_TO,
                target=Target.all_peers(),
                description=f"prepend {count}x to all peers",
                prepend_count=count),
            source=SOURCE_BOTH))
    if spec.supports_blackholing:
        entries.append(CommunityEntry(
            community=BLACKHOLE_COMMUNITY,
            semantics=Semantics(
                role=CommunityRole.ACTION,
                category=ActionCategory.BLACKHOLING,
                target=Target.none(),
                description="blackhole traffic for this prefix (RFC 7999)"),
            source=SOURCE_BOTH))
    return entries


def _per_target_entries(spec: SchemeSpec,
                        targets: Sequence[int]) -> List[CommunityEntry]:
    rs16 = min(spec.rs_asn, 0xFFFF)
    famous_names = dict(FAMOUS_TARGETS)
    entries: List[CommunityEntry] = []
    website_stride = (max(2, round(1 / spec.website_only_fraction))
                      if spec.website_only_fraction > 0 else 0)
    for position, target_asn in enumerate(targets):
        name = famous_names.get(target_asn, f"AS{target_asn}")
        website_only = website_stride and position % website_stride == 0
        source = SOURCE_WEBSITE if website_only else SOURCE_BOTH
        entries.append(CommunityEntry(
            community=standard(0, target_asn),
            semantics=Semantics(
                role=CommunityRole.ACTION,
                category=ActionCategory.DO_NOT_ANNOUNCE_TO,
                target=Target.peer(target_asn),
                description=f"do not announce to {name}"),
            source=source))
        entries.append(CommunityEntry(
            community=standard(rs16, target_asn),
            semantics=Semantics(
                role=CommunityRole.ACTION,
                category=ActionCategory.ANNOUNCE_ONLY_TO,
                target=Target.peer(target_asn),
                description=f"announce only to {name}"),
            source=source))
        if spec.supports_targeted_prepend:
            for asn_field, count in spec.prepend_bases:
                entries.append(CommunityEntry(
                    community=standard(asn_field, target_asn),
                    semantics=Semantics(
                        role=CommunityRole.ACTION,
                        category=ActionCategory.PREPEND_TO,
                        target=Target.peer(target_asn),
                        description=f"prepend {count}x to {name}",
                        prepend_count=count),
                    source=source))
    return entries


def _rules(spec: SchemeSpec) -> List[object]:
    rs16 = min(spec.rs_asn, 0xFFFF)
    rules: List[object] = [
        CommunityRule(
            asn_field=0,
            category=ActionCategory.DO_NOT_ANNOUNCE_TO,
            description="0:<peer-as> — do not announce to <peer-as>"),
        CommunityRule(
            asn_field=rs16,
            category=ActionCategory.ANNOUNCE_ONLY_TO,
            description=f"{rs16}:<peer-as> — announce only to <peer-as>",
            # the informational block (1000+) and announce-all value are
            # handled by concrete entries which take precedence; cap the
            # rule below the informational range to stay unambiguous for
            # values that collide with the tag block of *other* IXPs.
        ),
    ]
    if spec.supports_targeted_prepend:
        for asn_field, count in spec.prepend_bases:
            rules.append(CommunityRule(
                asn_field=asn_field,
                category=ActionCategory.PREPEND_TO,
                prepend_count=count,
                description=(f"{asn_field}:<peer-as> — prepend {count}x "
                             f"to <peer-as>")))
    # Large-community mirrors (RFC 8092): <rs-asn>:<function>:<target>.
    # Function values follow the widespread BIRD RS convention of 0 =
    # do-not-announce, 1 = announce-only, 101..103 = prepend 1..3x. The
    # full (32-bit-capable) RS ASN is the global administrator.
    rules.append(LargeCommunityRule(
        global_admin=spec.rs_asn,
        function=0,
        category=ActionCategory.DO_NOT_ANNOUNCE_TO,
        description=f"{spec.rs_asn}:0:<target> — do not announce"))
    rules.append(LargeCommunityRule(
        global_admin=spec.rs_asn,
        function=1,
        category=ActionCategory.ANNOUNCE_ONLY_TO,
        description=f"{spec.rs_asn}:1:<target> — announce only to"))
    for offset, count in ((101, 1), (102, 2), (103, 3)):
        rules.append(LargeCommunityRule(
            global_admin=spec.rs_asn,
            function=offset,
            category=ActionCategory.PREPEND_TO,
            prepend_count=count,
            description=(f"{spec.rs_asn}:{offset}:<target> — "
                         f"prepend {count}x")))
    # Extended-community mirror of the do-not-announce family
    # (two-octet-AS-specific, rt subtype, RS ASN as administrator).
    rules.append(ExtendedCommunityRule(
        global_admin=rs16,
        type_high=0x00,
        type_low=0x02,
        category=ActionCategory.DO_NOT_ANNOUNCE_TO,
        description=f"rt:{rs16}:<target> — do not announce to <target>"))
    return rules


def build_pair(spec: SchemeSpec, ixp_name: str,
               ) -> Tuple[CommunityDictionary, CommunityDictionary]:
    """Build the (rs-config, website) dictionary pair for one IXP."""
    informational = _informational_entries(spec)
    fixed = _fixed_action_entries(spec)
    targets = documented_target_asns(
        spec.documented_target_count,
        extra=spec.extra_documented_targets)
    per_target = _per_target_entries(spec, targets)

    rs_entries: List[CommunityEntry] = []
    website_entries: List[CommunityEntry] = []
    for index, entry in enumerate(informational):
        if index < spec.rs_only_informational:
            rs_entries.append(CommunityEntry(
                entry.community, entry.semantics, SOURCE_RS_CONFIG))
        else:
            rs_entries.append(CommunityEntry(
                entry.community, entry.semantics, SOURCE_RS_CONFIG))
            website_entries.append(CommunityEntry(
                entry.community, entry.semantics, SOURCE_WEBSITE))
    for entry in fixed:
        rs_entries.append(CommunityEntry(
            entry.community, entry.semantics, SOURCE_RS_CONFIG))
        website_entries.append(CommunityEntry(
            entry.community, entry.semantics, SOURCE_WEBSITE))
    for entry in per_target:
        if entry.source == SOURCE_WEBSITE:
            website_entries.append(entry)
        else:
            rs_entries.append(CommunityEntry(
                entry.community, entry.semantics, SOURCE_RS_CONFIG))
            website_entries.append(CommunityEntry(
                entry.community, entry.semantics, SOURCE_WEBSITE))

    rules = _rules(spec)
    # The RS config dump only spells out the two basic propagation
    # families (0:<peer>, <rs>:<peer>); the prepend families and the
    # large/extended mirror encodings are documented on the website
    # only — this is the §3 "RS config list could be incomplete"
    # observation, and what the dictionary-union ablation measures.
    rs_rules = [r for r in rules
                if isinstance(r, CommunityRule)
                and r.category in (ActionCategory.DO_NOT_ANNOUNCE_TO,
                                   ActionCategory.ANNOUNCE_ONLY_TO)]
    rs_dict = CommunityDictionary(
        ixp_name,
        entries=rs_entries,
        rules=[dataclasses.replace(r, source=SOURCE_RS_CONFIG)
               for r in rs_rules])
    website_dict = CommunityDictionary(
        ixp_name,
        entries=website_entries,
        rules=[dataclasses.replace(r, source=SOURCE_WEBSITE)
               for r in rules])
    return rs_dict, website_dict


def build_union(spec: SchemeSpec, ixp_name: str) -> CommunityDictionary:
    """The union dictionary (what the paper's pipeline classifies with)."""
    rs_dict, website_dict = build_pair(spec, ixp_name)
    return CommunityDictionary.union(ixp_name, rs_dict, website_dict)
