"""Netnod (Stockholm) community scheme.

Netnod's route servers (AS52005) document a 67-entry scheme. Like BCIX,
action communities dominate the IXP-defined standard communities seen
there (>95%, §5.1).
"""

from __future__ import annotations

from .common import SchemeSpec

SPEC = SchemeSpec(
    rs_asn=52005,
    prepend_bases=((65031, 1), (65032, 2), (65033, 3)),
    supports_targeted_prepend=True,
    supports_blackholing=False,
    informational_count=12,
    documented_target_count=10,
)
