"""DE-CIX community scheme (Frankfurt, Madrid, New York).

DE-CIX documents per-peer propagation control (``0:<peer>``,
``<rs>:<peer>``), targeted prepending via ``65501..65503:<peer>``, and
RFC 7999 blackholing — DE-CIX markets "advanced blackholing" as a
service, which is why Table 2 shows blackholing usage essentially only
at DE-CIX.

Every DE-CIX location shares the same documented scheme, hence the paper
reports the same 774-entry dictionary for Frankfurt, Madrid, and New
York: 18 informational tags + 6 fixed actions + 5 entries for each of
the 150 documented targets.
"""

from __future__ import annotations

from .common import SchemeSpec


def spec_for(rs_asn: int) -> SchemeSpec:
    """DE-CIX spec parameterised by the location's RS ASN."""
    return SchemeSpec(
        rs_asn=rs_asn,
        prepend_bases=((65501, 1), (65502, 2), (65503, 3)),
        supports_targeted_prepend=True,
        supports_blackholing=True,
        informational_count=18,
        documented_target_count=150,
        # Filanco (AS29076) is the top IPv6 do-not-announce target at
        # DE-CIX in §5.4.
        extra_documented_targets=(29076, 3320, 6830, 12876, 24940),
    )


FRANKFURT = spec_for(6695)
MADRID = spec_for(8631)
NEW_YORK = spec_for(63034)
