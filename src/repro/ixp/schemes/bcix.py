"""BCIX (Berlin) community scheme.

BCIX (route servers in AS16374) documents a 50-entry scheme. Per §5.1,
action communities represent more than 95% of the IXP-defined standard
communities seen at BCIX — its route server adds few informational tags.
"""

from __future__ import annotations

from .common import SchemeSpec

SPEC = SchemeSpec(
    rs_asn=16374,
    prepend_bases=((65021, 1), (65022, 2), (65023, 3)),
    supports_targeted_prepend=True,
    supports_blackholing=False,
    informational_count=10,
    documented_target_count=7,
)
