"""IX.br (São Paulo) community scheme.

IX.br's route servers (AS26162) document the common BIRD conventions:
``0:<peer>`` / ``26162:<peer>`` for propagation control, and the
``65001..65003:<peer>`` family for 1–3× prepending. No blackholing
community was supported during the paper's collection window (§5.3,
confirmed by the IX.br Forum presentation cited as [32]).

The dictionary has 649 concrete entries, matching the paper's §3 count:
14 informational tags + 5 fixed actions + 5 entries for each of the 126
documented targets.
"""

from __future__ import annotations

from .common import SchemeSpec

SPEC = SchemeSpec(
    rs_asn=26162,
    prepend_bases=((65001, 1), (65002, 2), (65003, 3)),
    supports_targeted_prepend=True,
    supports_blackholing=False,
    informational_count=14,
    documented_target_count=126,
    # Brazilian networks named in the IX.br documentation examples
    # (paper §5.4: NIC-Simet, RNP, Itaú, CDNetworks appear in the top
    # announce-only-to communities at IX.br-SP).
    extra_documented_targets=(1916, 14026, 28571, 36408, 52863, 61568),
)
