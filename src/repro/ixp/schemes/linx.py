"""LINX (London) community scheme.

LINX route servers (AS8714) document a compact scheme — 58 concrete
entries. AS-path prepending on the LINX route servers was announced on
29 June 2021 (paper [41]), a few weeks before the collection window,
which the paper uses to explain the small number of ASes using
prepend-to there (Table 2: 10 ASes, 1.5%).
"""

from __future__ import annotations

from .common import SchemeSpec

SPEC = SchemeSpec(
    rs_asn=8714,
    prepend_bases=((65011, 1), (65012, 2), (65013, 3)),
    supports_targeted_prepend=True,
    supports_blackholing=False,
    informational_count=13,
    documented_target_count=8,
)
