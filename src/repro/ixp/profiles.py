"""Profiles of the eight studied IXPs.

Each :class:`IxpProfile` carries the public facts the paper reports in
Table 1 (membership, RS membership, prefixes, routes) plus the
calibration knobs the synthetic workload generator uses so that the
reproduction's aggregate statistics land in the paper's bands (see
DESIGN.md §7). The numbers of the paper's latest snapshot (4 Oct 2021)
are kept verbatim as ``paper_*`` reference fields so benchmarks can print
paper-vs-measured rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class PaperNumbers:
    """Table 1 reference values (latest paper snapshot)."""

    members_total: int
    members_rs_v4: int
    members_rs_v6: int
    prefixes_v4: int
    prefixes_v6: int
    routes_v4: int
    routes_v6: int
    avg_daily_traffic: str


@dataclass(frozen=True)
class CategoryUsage:
    """Table 2 + §5.3 reference values for one IXP.

    ``*_users_*`` fields are fractions of RS members using each action
    type (Table 2); ``*_occ`` fields are the shares of action-community
    *occurrences* per category (§5.3 in-text numbers), IPv4.
    """

    dna_users_v4: float
    dna_users_v6: float
    ao_users_v4: float
    ao_users_v6: float
    prepend_users_v4: float
    prepend_users_v6: float
    blackhole_users_v4: float
    blackhole_users_v6: float
    dna_occ: float
    ao_occ: float
    prepend_occ: float
    blackhole_occ: float


@dataclass(frozen=True)
class CalibrationTargets:
    """Paper-reported shares used to parameterise the workload.

    All fractions are for IPv4 unless suffixed ``_v6``.
    """

    ixp_defined_share: float        # Fig. 1 (v4)
    ixp_defined_share_v6: float     # Fig. 1 (v6)
    standard_share: float           # Fig. 2 (v4)
    action_share: float             # Fig. 3 (v4)
    action_share_v6: float          # Fig. 3 (v6)
    members_using_actions: float    # Fig. 4a (v4)
    members_using_actions_v6: float  # Fig. 4a (v6)
    routes_with_actions: float      # §5.2 (v4)
    ineffective_share: float        # §5.5 (v4): actions targeting non-RS
    ineffective_share_v6: float     # §5.5 (v6)
    dna_occurrence_share: float     # §5.3: do-not-announce occurrences
    supports_blackholing: bool
    supports_prepending: bool
    # Derived from the paper's figure counts (see DESIGN.md §7): mean
    # action-community instances per route, informational tags the RS
    # stamps per route, routes carrying at least one action (v6), the
    # share of action instances held by the top 1% of ASes (Fig. 4b),
    # and the exponent tying avoid-list size to table size.
    actions_per_route_v4: float = 10.0
    actions_per_route_v6: float = 10.0
    info_tags_v4: float = 2.0
    info_tags_v6: float = 2.0
    routes_with_actions_v6: float = 0.65
    top1pct_share: float = 0.55
    size_exponent: float = 0.5
    # empirical correction factors (fit once against the paper's bands;
    # see tests/core/test_calibration.py): multiplier on the
    # ineffective-target draw bias and on the non-standard mirror budget.
    ineffective_correction: float = 1.0
    nonstd_correction: float = 1.0


@dataclass(frozen=True)
class IxpProfile:
    """Static description of one IXP."""

    key: str                  # short machine name, e.g. "ixbr-sp"
    name: str                 # display name, e.g. "IX.br-SP"
    location: str
    rs_asn: int               # route server ASN (communities use this)
    mgmt_asn_block: int       # base ASN for auxiliary communities
    peering_lan_v4: str
    peering_lan_v6: str
    dictionary_size: int      # paper §3 dictionary entry count
    paper: PaperNumbers
    calibration: CalibrationTargets
    category_usage: "CategoryUsage" = None  # type: ignore[assignment]
    is_large: bool = True     # the four IXPs the paper focuses on


#: Route server ASNs: IX.br-SP uses AS26162, DE-CIX Frankfurt AS6695,
#: LINX AS8714, AMS-IX AS6777, BCIX AS16374, DE-CIX Madrid AS8631 (IXP
#: route server ASN per their docs; Madrid/NYC share the DE-CIX scheme),
#: DE-CIX NYC AS63034, Netnod AS52005 (values as documented publicly at
#: collection time; they parameterise the community schemes).
PROFILES: Dict[str, IxpProfile] = {}


def _register(profile: IxpProfile) -> IxpProfile:
    PROFILES[profile.key] = profile
    return profile


IXBR_SP = _register(IxpProfile(
    key="ixbr-sp",
    name="IX.br-SP",
    location="São Paulo, Brazil",
    rs_asn=26162,
    mgmt_asn_block=65000,
    peering_lan_v4="187.16.216.0/21",
    peering_lan_v6="2001:12f8::/32",
    dictionary_size=649,
    paper=PaperNumbers(
        members_total=2338, members_rs_v4=1803, members_rs_v6=1627,
        prefixes_v4=163981, prefixes_v6=60203,
        routes_v4=282697, routes_v6=88652,
        avg_daily_traffic="9.6 Tbps"),
    calibration=CalibrationTargets(
        ixp_defined_share=0.833, ixp_defined_share_v6=0.913,
        standard_share=0.849,
        action_share=0.705, action_share_v6=0.705,
        members_using_actions=0.519, members_using_actions_v6=0.293,
        routes_with_actions=0.737,
        ineffective_share=0.318, ineffective_share_v6=0.403,
        dna_occurrence_share=0.80,
        supports_blackholing=False, supports_prepending=True,
        actions_per_route_v4=10.5, actions_per_route_v6=10.7,
        info_tags_v4=4.4, info_tags_v6=4.5,
        routes_with_actions_v6=0.70, top1pct_share=0.86,
        size_exponent=0.78,
        ineffective_correction=1.20, nonstd_correction=1.0),
    category_usage=CategoryUsage(
        dna_users_v4=0.483, dna_users_v6=0.273,
        ao_users_v4=0.061, ao_users_v6=0.021,
        prepend_users_v4=0.057, prepend_users_v6=0.029,
        blackhole_users_v4=0.0, blackhole_users_v6=0.0,
        dna_occ=0.8, ao_occ=0.185, prepend_occ=0.015, blackhole_occ=0.0),
))

DECIX_FRA = _register(IxpProfile(
    key="decix-fra",
    name="DE-CIX",
    location="Frankfurt, Germany",
    rs_asn=6695,
    mgmt_asn_block=65500,
    peering_lan_v4="80.81.192.0/21",
    peering_lan_v6="2001:7f8::/32",
    dictionary_size=774,
    paper=PaperNumbers(
        members_total=1072, members_rs_v4=874, members_rs_v6=711,
        prefixes_v4=451544, prefixes_v6=65395,
        routes_v4=888478, routes_v6=130084,
        avg_daily_traffic="9.27 Tbps"),
    calibration=CalibrationTargets(
        ixp_defined_share=0.802, ixp_defined_share_v6=0.809,
        standard_share=0.909,
        action_share=0.704, action_share_v6=0.665,
        members_using_actions=0.540, members_using_actions_v6=0.336,
        routes_with_actions=0.617,
        ineffective_share=0.495, ineffective_share_v6=0.404,
        dna_occurrence_share=0.666,
        supports_blackholing=True, supports_prepending=True,
        actions_per_route_v4=9.5, actions_per_route_v6=8.0,
        info_tags_v4=4.0, info_tags_v6=4.0,
        routes_with_actions_v6=0.487, top1pct_share=0.55,
        size_exponent=0.5,
        ineffective_correction=0.97, nonstd_correction=0.86),
    category_usage=CategoryUsage(
        dna_users_v4=0.381, dna_users_v6=0.231,
        ao_users_v4=0.244, ao_users_v6=0.157,
        prepend_users_v4=0.083, prepend_users_v6=0.039,
        blackhole_users_v4=0.157, blackhole_users_v6=0.014,
        dna_occ=0.666, ao_occ=0.314, prepend_occ=0.016, blackhole_occ=0.004),
))

LINX = _register(IxpProfile(
    key="linx",
    name="LINX",
    location="London, United Kingdom",
    rs_asn=8714,
    mgmt_asn_block=65010,
    peering_lan_v4="195.66.224.0/21",
    peering_lan_v6="2001:7f8:4::/48",
    dictionary_size=58,
    paper=PaperNumbers(
        members_total=847, members_rs_v4=669, members_rs_v6=508,
        prefixes_v4=241084, prefixes_v6=62912,
        routes_v4=315215, routes_v6=79690,
        avg_daily_traffic="3.8 Tbps"),
    calibration=CalibrationTargets(
        ixp_defined_share=0.861, ixp_defined_share_v6=0.889,
        standard_share=0.850,
        action_share=0.836, action_share_v6=0.858,
        members_using_actions=0.404, members_using_actions_v6=0.285,
        routes_with_actions=0.766,
        ineffective_share=0.643, ineffective_share_v6=0.526,
        dna_occurrence_share=0.70,
        supports_blackholing=False, supports_prepending=True,
        actions_per_route_v4=13.2, actions_per_route_v6=11.4,
        info_tags_v4=2.59, info_tags_v6=1.9,
        routes_with_actions_v6=0.855, top1pct_share=0.55,
        size_exponent=0.5,
        ineffective_correction=1.05, nonstd_correction=0.95),
    category_usage=CategoryUsage(
        dna_users_v4=0.276, dna_users_v6=0.169,
        ao_users_v4=0.209, ao_users_v6=0.159,
        prepend_users_v4=0.015, prepend_users_v6=0.012,
        blackhole_users_v4=0.0, blackhole_users_v6=0.0,
        dna_occ=0.7, ao_occ=0.292, prepend_occ=0.008, blackhole_occ=0.0),
))

AMSIX = _register(IxpProfile(
    key="amsix",
    name="AMS-IX",
    location="Amsterdam, Netherlands",
    rs_asn=6777,
    mgmt_asn_block=65020,
    peering_lan_v4="80.249.208.0/21",
    peering_lan_v6="2001:7f8:1::/64",
    dictionary_size=37,
    paper=PaperNumbers(
        members_total=861, members_rs_v4=636, members_rs_v6=488,
        prefixes_v4=252704, prefixes_v6=61528,
        routes_v4=252704, routes_v6=61528,
        avg_daily_traffic="7.6 Tbps"),
    calibration=CalibrationTargets(
        ixp_defined_share=0.868, ixp_defined_share_v6=0.925,
        standard_share=0.965,
        action_share=0.834, action_share_v6=0.804,
        members_using_actions=0.355, members_using_actions_v6=0.241,
        routes_with_actions=0.68,
        ineffective_share=0.543, ineffective_share_v6=0.459,
        dna_occurrence_share=0.75,
        supports_blackholing=False, supports_prepending=False,
        actions_per_route_v4=15.2, actions_per_route_v6=12.3,
        info_tags_v4=3.02, info_tags_v6=3.0,
        routes_with_actions_v6=0.70, top1pct_share=0.55,
        size_exponent=0.5,
        ineffective_correction=0.90, nonstd_correction=0.74),
    category_usage=CategoryUsage(
        dna_users_v4=0.283, dna_users_v6=0.176,
        ao_users_v4=0.126, ao_users_v6=0.096,
        prepend_users_v4=0.0, prepend_users_v6=0.0,
        blackhole_users_v4=0.014, blackhole_users_v6=0.002,
        dna_occ=0.75, ao_occ=0.246, prepend_occ=0.0, blackhole_occ=0.004),
))

DECIX_MAD = _register(IxpProfile(
    key="decix-mad",
    name="DE-CIX Mad",
    location="Madrid, Spain",
    rs_asn=8631,
    mgmt_asn_block=65500,
    peering_lan_v4="185.1.56.0/22",
    peering_lan_v6="2001:7f8:a0::/48",
    dictionary_size=774,
    paper=PaperNumbers(
        members_total=214, members_rs_v4=151, members_rs_v6=85,
        prefixes_v4=116237, prefixes_v6=45321,
        routes_v4=125812, routes_v6=48711,
        avg_daily_traffic="492 Gbps"),
    calibration=CalibrationTargets(
        ixp_defined_share=0.82, ixp_defined_share_v6=0.85,
        standard_share=0.90,
        action_share=0.72, action_share_v6=0.70,
        members_using_actions=0.45, members_using_actions_v6=0.30,
        routes_with_actions=0.62,
        ineffective_share=0.45, ineffective_share_v6=0.40,
        dna_occurrence_share=0.70,
        supports_blackholing=True, supports_prepending=True,
        actions_per_route_v4=9.5, actions_per_route_v6=8.0,
        info_tags_v4=3.7, info_tags_v6=3.5,
        routes_with_actions_v6=0.60, top1pct_share=0.50,
        size_exponent=0.5,
        ineffective_correction=0.95, nonstd_correction=0.9),
    category_usage=CategoryUsage(
        dna_users_v4=0.35, dna_users_v6=0.22,
        ao_users_v4=0.2, ao_users_v6=0.13,
        prepend_users_v4=0.06, prepend_users_v6=0.03,
        blackhole_users_v4=0.1, blackhole_users_v6=0.01,
        dna_occ=0.7, ao_occ=0.28, prepend_occ=0.015, blackhole_occ=0.005),
    is_large=False,
))

DECIX_NYC = _register(IxpProfile(
    key="decix-nyc",
    name="DE-CIX NYC",
    location="New York, USA",
    rs_asn=63034,
    mgmt_asn_block=65500,
    peering_lan_v4="206.130.10.0/23",
    peering_lan_v6="2001:504:36::/64",
    dictionary_size=774,
    paper=PaperNumbers(
        members_total=256, members_rs_v4=171, members_rs_v6=145,
        prefixes_v4=162469, prefixes_v6=48951,
        routes_v4=186983, routes_v6=61638,
        avg_daily_traffic="941 Gbps"),
    calibration=CalibrationTargets(
        ixp_defined_share=0.82, ixp_defined_share_v6=0.85,
        standard_share=0.90,
        action_share=0.72, action_share_v6=0.70,
        members_using_actions=0.45, members_using_actions_v6=0.30,
        routes_with_actions=0.62,
        ineffective_share=0.45, ineffective_share_v6=0.40,
        dna_occurrence_share=0.70,
        supports_blackholing=True, supports_prepending=True,
        actions_per_route_v4=8.1, actions_per_route_v6=8.0,
        info_tags_v4=3.2, info_tags_v6=3.0,
        routes_with_actions_v6=0.60, top1pct_share=0.50,
        size_exponent=0.5,
        ineffective_correction=0.95, nonstd_correction=0.9),
    category_usage=CategoryUsage(
        dna_users_v4=0.35, dna_users_v6=0.22,
        ao_users_v4=0.2, ao_users_v6=0.13,
        prepend_users_v4=0.06, prepend_users_v6=0.03,
        blackhole_users_v4=0.1, blackhole_users_v6=0.01,
        dna_occ=0.7, ao_occ=0.28, prepend_occ=0.015, blackhole_occ=0.005),
    is_large=False,
))

BCIX = _register(IxpProfile(
    key="bcix",
    name="BCIX",
    location="Berlin, Germany",
    rs_asn=16374,
    mgmt_asn_block=65030,
    peering_lan_v4="193.178.185.0/24",
    peering_lan_v6="2001:7f8:19:1::/64",
    dictionary_size=50,
    paper=PaperNumbers(
        members_total=145, members_rs_v4=88, members_rs_v6=78,
        prefixes_v4=106249, prefixes_v6=46873,
        routes_v4=111115, routes_v6=50569,
        avg_daily_traffic="640 Gbps"),
    calibration=CalibrationTargets(
        ixp_defined_share=0.85, ixp_defined_share_v6=0.88,
        standard_share=0.92,
        # §5.1: at BCIX action communities are >95% of IXP-defined
        # standard communities.
        action_share=0.96, action_share_v6=0.96,
        members_using_actions=0.40, members_using_actions_v6=0.28,
        routes_with_actions=0.65,
        ineffective_share=0.40, ineffective_share_v6=0.38,
        dna_occurrence_share=0.75,
        supports_blackholing=False, supports_prepending=True,
        actions_per_route_v4=11.2, actions_per_route_v6=11.0,
        info_tags_v4=0.47, info_tags_v6=0.5,
        routes_with_actions_v6=0.62, top1pct_share=0.50,
        size_exponent=0.5,
        ineffective_correction=0.95, nonstd_correction=0.9),
    category_usage=CategoryUsage(
        dna_users_v4=0.32, dna_users_v6=0.2,
        ao_users_v4=0.12, ao_users_v6=0.08,
        prepend_users_v4=0.03, prepend_users_v6=0.02,
        blackhole_users_v4=0.0, blackhole_users_v6=0.0,
        dna_occ=0.78, ao_occ=0.21, prepend_occ=0.01, blackhole_occ=0.0),
    is_large=False,
))

NETNOD = _register(IxpProfile(
    key="netnod",
    name="Netnod",
    location="Stockholm, Sweden",
    rs_asn=52005,
    mgmt_asn_block=65040,
    peering_lan_v4="194.68.123.0/24",
    peering_lan_v6="2001:7f8:d:ff::/64",
    dictionary_size=67,
    paper=PaperNumbers(
        members_total=187, members_rs_v4=127, members_rs_v6=101,
        prefixes_v4=132179, prefixes_v6=45507,
        routes_v4=150670, routes_v6=48874,
        avg_daily_traffic="1.12 Tbps"),
    calibration=CalibrationTargets(
        ixp_defined_share=0.85, ixp_defined_share_v6=0.88,
        standard_share=0.92,
        action_share=0.96, action_share_v6=0.96,
        members_using_actions=0.42, members_using_actions_v6=0.30,
        routes_with_actions=0.66,
        ineffective_share=0.42, ineffective_share_v6=0.40,
        dna_occurrence_share=0.78,
        supports_blackholing=False, supports_prepending=True,
        actions_per_route_v4=25.0, actions_per_route_v6=14.0,
        info_tags_v4=1.06, info_tags_v6=0.6,
        routes_with_actions_v6=0.62, top1pct_share=0.50,
        size_exponent=0.5,
        ineffective_correction=0.95, nonstd_correction=0.9),
    category_usage=CategoryUsage(
        dna_users_v4=0.34, dna_users_v6=0.22,
        ao_users_v4=0.12, ao_users_v6=0.08,
        prepend_users_v4=0.03, prepend_users_v6=0.02,
        blackhole_users_v4=0.0, blackhole_users_v6=0.0,
        dna_occ=0.82, ao_occ=0.17, prepend_occ=0.01, blackhole_occ=0.0),
    is_large=False,
))

#: The four IXPs the paper's analysis focuses on, in paper order.
LARGE_FOUR: Tuple[str, ...] = ("ixbr-sp", "decix-fra", "linx", "amsix")

#: All eight, in Table 1 order.
ALL_IXPS: Tuple[str, ...] = (
    "ixbr-sp", "decix-fra", "linx", "amsix",
    "decix-mad", "decix-nyc", "bcix", "netnod")


def get_profile(key: str) -> IxpProfile:
    """Look up an IXP profile by key; raises KeyError with the valid set."""
    try:
        return PROFILES[key]
    except KeyError:
        raise KeyError(
            f"unknown IXP {key!r}; valid keys: {sorted(PROFILES)}") from None


def large_profiles() -> Tuple[IxpProfile, ...]:
    return tuple(PROFILES[k] for k in LARGE_FOUR)


def all_profiles() -> Tuple[IxpProfile, ...]:
    return tuple(PROFILES[k] for k in ALL_IXPS)
