"""Parser and renderer for IXP community documentation text.

The paper's §3 builds half of its dictionary from "the documentation
published at the corresponding IXP website". This module models that
source concretely: a plain-text documentation format (one community per
line, the way IXP route-server guides render their tables), a renderer
that writes a :class:`~repro.ixp.dictionary.CommunityDictionary` out as
such documentation, and a parser that reads it back.

Format (lines; ``#`` comments and blanks ignored)::

    0:<peer-as>        | action        | do-not-announce-to | do not announce to <peer-as>
    0:6939             | action        | do-not-announce-to | do not announce to Hurricane Electric
    6695:6695          | action        | announce-only-to!all | announce to all peers
    65501:<peer-as>    | action        | prepend-to+1       | prepend 1x to <peer-as>
    65535:666          | action        | blackholing        | blackhole (RFC 7999)
    6695:1000          | informational | -                  | route learned at primary site
    6695:0:<target>    | action        | do-not-announce-to | large-community mirror

Columns: community (concrete, or with one ``<...>`` placeholder in the
last field), role, category (with ``!all`` marking an all-peers target
and ``+N`` a prepend count), description.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..bgp.communities import parse_community
from .dictionary import (
    SOURCE_WEBSITE,
    CommunityDictionary,
    CommunityEntry,
    CommunityRule,
    ExtendedCommunityRule,
    LargeCommunityRule,
    Semantics,
)
from .taxonomy import ActionCategory, CommunityRole, Target, TargetKind


class DocumentationError(ValueError):
    """A documentation line could not be parsed."""


_PLACEHOLDER = re.compile(r"<[^>]+>")


def _split_category(token: str) -> Tuple[Optional[ActionCategory],
                                         bool, int]:
    """Parse the category column → (category, all_peers, prepend_count)."""
    if token == "-":
        return None, False, 0
    all_peers = token.endswith("!all")
    if all_peers:
        token = token[:-len("!all")]
    prepend_count = 0
    if "+" in token:
        token, _, count_text = token.partition("+")
        prepend_count = int(count_text)
    try:
        category = ActionCategory(token)
    except ValueError as exc:
        raise DocumentationError(f"unknown category {token!r}") from exc
    return category, all_peers, prepend_count


def parse_line(line: str, ixp_name: str = "") -> Optional[object]:
    """Parse one documentation line → CommunityEntry or a rule object.

    Returns None for blank/comment lines.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = [part.strip() for part in stripped.split("|")]
    if len(parts) != 4:
        raise DocumentationError(
            f"expected 4 |-separated columns, got {len(parts)}: {line!r}")
    community_text, role_text, category_text, description = parts
    try:
        role = CommunityRole(role_text)
    except ValueError as exc:
        raise DocumentationError(f"unknown role {role_text!r}") from exc
    category, all_peers, prepend_count = _split_category(category_text)
    if role is CommunityRole.ACTION and category is None:
        raise DocumentationError(f"action line without category: {line!r}")

    fields = community_text.split(":")
    has_placeholder = bool(_PLACEHOLDER.search(community_text))
    if has_placeholder:
        if _PLACEHOLDER.search(":".join(fields[:-1])):
            raise DocumentationError(
                f"placeholder only allowed in the last field: {line!r}")
        if role is not CommunityRole.ACTION or category is None:
            raise DocumentationError(
                f"parameterised line must be an action: {line!r}")
        if len(fields) == 2:
            return CommunityRule(
                asn_field=int(fields[0]), category=category,
                prepend_count=prepend_count, description=description,
                source=SOURCE_WEBSITE)
        if len(fields) == 3:
            return LargeCommunityRule(
                global_admin=int(fields[0]), function=int(fields[1]),
                category=category, prepend_count=prepend_count,
                description=description, source=SOURCE_WEBSITE)
        raise DocumentationError(f"cannot parameterise: {line!r}")

    community = parse_community(community_text)
    if role is CommunityRole.INFORMATIONAL:
        semantics = Semantics(role=role, description=description)
    else:
        if all_peers:
            target: Optional[Target] = Target.all_peers()
        elif category is ActionCategory.BLACKHOLING:
            target = Target.none()
        else:
            # concrete action lines encode the target in the last field
            last = int(community_text.rsplit(":", 1)[1])
            target = Target.peer(last) if last else Target.all_peers()
        semantics = Semantics(role=role, category=category, target=target,
                              description=description,
                              prepend_count=prepend_count)
    return CommunityEntry(community, semantics, source=SOURCE_WEBSITE)


def parse_documentation(text: str, ixp_name: str) -> CommunityDictionary:
    """Parse a whole documentation page into a website dictionary."""
    dictionary = CommunityDictionary(ixp_name)
    for line_number, line in enumerate(text.splitlines(), start=1):
        try:
            item = parse_line(line, ixp_name)
        except DocumentationError as error:
            raise DocumentationError(
                f"line {line_number}: {error}") from error
        if item is None:
            continue
        if isinstance(item, CommunityEntry):
            dictionary.add_entry(item)
        else:
            dictionary.add_rule(item)
    return dictionary


def _category_token(semantics: Semantics) -> str:
    if semantics.category is None:
        return "-"
    token = semantics.category.value
    if semantics.prepend_count:
        token += f"+{semantics.prepend_count}"
    if (semantics.target is not None
            and semantics.target.kind is TargetKind.ALL_PEERS):
        token += "!all"
    return token


def render_documentation(dictionary: CommunityDictionary) -> str:
    """Render a dictionary as a documentation page (inverse of
    :func:`parse_documentation` for website-expressible content)."""
    lines = [f"# {dictionary.ixp_name} BGP communities", ""]
    lines.append("# informational")
    for entry in sorted(dictionary.informational_entries(),
                        key=lambda e: str(e.community)):
        lines.append(f"{entry.community} | informational | - | "
                     f"{entry.semantics.description}")
    lines.append("")
    lines.append("# actions")
    for entry in sorted(dictionary.action_entries(),
                        key=lambda e: str(e.community)):
        lines.append(
            f"{entry.community} | action | "
            f"{_category_token(entry.semantics)} | "
            f"{entry.semantics.description}")
    lines.append("")
    lines.append("# parameterised families")
    for rule in dictionary.rules():
        if isinstance(rule, CommunityRule):
            token = rule.category.value
            if rule.prepend_count:
                token += f"+{rule.prepend_count}"
            lines.append(f"{rule.asn_field}:<peer-as> | action | "
                         f"{token} | {rule.description}")
        elif isinstance(rule, LargeCommunityRule):
            token = rule.category.value
            if rule.prepend_count:
                token += f"+{rule.prepend_count}"
            lines.append(f"{rule.global_admin}:{rule.function}:<target> "
                         f"| action | {token} | {rule.description}")
        elif isinstance(rule, ExtendedCommunityRule):
            # extended families are not expressible in the plain-text
            # documentation format; they come from the RS config side.
            continue
    return "\n".join(lines) + "\n"
