"""IXP community dictionaries.

The paper builds, for each IXP, a dictionary mapping BGP community values
to their semantics, as the union of two sources (§3):

1. the route-server configuration file fetched via the LG API, and
2. the community documentation published on the IXP website.

This module models that dictionary. It supports two complementary entry
forms:

* :class:`CommunityEntry` — a concrete community value with full
  semantics (this is what the paper's 3,183-entry dictionary contains);
* :class:`CommunityRule` — a *parameterised* pattern such as
  DE-CIX's ``0:<peer-as>`` ("do not announce to <peer-as>"), which maps a
  whole family of concrete values to semantics and extracts the encoded
  target from the value field.

Lookup order is exact entry first, then rules. Anything that matches
neither is an **unknown** community (the 7.5–19.8% in Fig. 1). Rules are
declarative (no callables) so the whole dictionary round-trips through the
Looking Glass ``/config`` JSON endpoint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..bgp.communities import Community, StandardCommunity, parse_community
from .taxonomy import ActionCategory, CommunityRole, Target, TargetKind

#: Where a dictionary entry came from; the union of both is what the
#: paper uses after discovering that RS configs are incomplete.
SOURCE_RS_CONFIG = "rs-config"
SOURCE_WEBSITE = "website"
SOURCE_BOTH = "both"

_MAX_PEER_AS = 0xFFFF


@dataclass(frozen=True)
class Semantics:
    """The meaning of one community value."""

    role: CommunityRole
    category: Optional[ActionCategory] = None
    target: Optional[Target] = None
    description: str = ""
    prepend_count: int = 0

    def __post_init__(self) -> None:
        if self.role is CommunityRole.ACTION and self.category is None:
            raise ValueError("action semantics require a category")
        if self.role is CommunityRole.INFORMATIONAL and self.category:
            raise ValueError("informational semantics cannot have a category")

    @property
    def is_action(self) -> bool:
        return self.role is CommunityRole.ACTION


@dataclass(frozen=True)
class CommunityEntry:
    """A concrete community value with known semantics."""

    community: Community
    semantics: Semantics
    source: str = SOURCE_BOTH


@dataclass(frozen=True)
class CommunityRule:
    """A parameterised community family, declaratively described.

    Matches standard communities with ``asn == asn_field`` and
    ``value_low <= value <= value_high``; on a match the semantics embed
    ``Target.peer(value)`` (the value field *is* the target ASN — the
    encoding every studied IXP uses for per-peer actions).
    """

    asn_field: int
    category: ActionCategory
    description: str = ""
    value_low: int = 1
    value_high: int = _MAX_PEER_AS
    prepend_count: int = 0
    source: str = SOURCE_BOTH

    def match(self, community: Community) -> Optional[Semantics]:
        if not isinstance(community, StandardCommunity):
            return None
        if community.asn != self.asn_field:
            return None
        if not self.value_low <= community.value <= self.value_high:
            return None
        return Semantics(
            role=CommunityRole.ACTION,
            category=self.category,
            target=Target.peer(community.value),
            description=self.description or (
                f"{self.category.value} AS{community.value}"),
            prepend_count=self.prepend_count,
        )

    def dedupe_key(self) -> Tuple[object, ...]:
        return ("standard", self.asn_field, self.category.value,
                self.value_low, self.value_high)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule_type": "standard",
            "asn_field": self.asn_field,
            "category": self.category.value,
            "description": self.description,
            "value_low": self.value_low,
            "value_high": self.value_high,
            "prepend_count": self.prepend_count,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CommunityRule":
        return cls(
            asn_field=int(payload["asn_field"]),           # type: ignore[arg-type]
            category=ActionCategory(payload["category"]),
            description=str(payload.get("description", "")),
            value_low=int(payload.get("value_low", 1)),    # type: ignore[arg-type]
            value_high=int(payload.get("value_high", _MAX_PEER_AS)),  # type: ignore[arg-type]
            prepend_count=int(payload.get("prepend_count", 0)),  # type: ignore[arg-type]
            source=str(payload.get("source", SOURCE_BOTH)),
        )


@dataclass(frozen=True)
class LargeCommunityRule:
    """A parameterised *large*-community family (RFC 8092 mirrors).

    IXPs with 32-bit route-server ASNs (or members targeting 32-bit
    ASNs) need large communities: ``<global>:<function>:<target>``. A
    rule matches large communities with the given global administrator
    and function value; the third field is the target ASN.
    """

    global_admin: int
    function: int
    category: ActionCategory
    description: str = ""
    prepend_count: int = 0
    source: str = SOURCE_BOTH

    def match(self, community: Community) -> Optional[Semantics]:
        from ..bgp.communities import LargeCommunity
        if not isinstance(community, LargeCommunity):
            return None
        if community.global_admin != self.global_admin:
            return None
        if community.local_data1 != self.function:
            return None
        target_asn = community.local_data2
        if target_asn == 0:
            target: Target = Target.all_peers()
        else:
            target = Target.peer(target_asn)
        return Semantics(
            role=CommunityRole.ACTION,
            category=self.category,
            target=target,
            description=self.description or (
                f"{self.category.value} {target}"),
            prepend_count=self.prepend_count,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule_type": "large",
            "global_admin": self.global_admin,
            "function": self.function,
            "category": self.category.value,
            "description": self.description,
            "prepend_count": self.prepend_count,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LargeCommunityRule":
        return cls(
            global_admin=int(payload["global_admin"]),  # type: ignore[arg-type]
            function=int(payload["function"]),          # type: ignore[arg-type]
            category=ActionCategory(payload["category"]),
            description=str(payload.get("description", "")),
            prepend_count=int(payload.get("prepend_count", 0)),  # type: ignore[arg-type]
            source=str(payload.get("source", SOURCE_BOTH)),
        )

    def dedupe_key(self) -> Tuple[object, ...]:
        return ("large", self.global_admin, self.function,
                self.category.value)


@dataclass(frozen=True)
class ExtendedCommunityRule:
    """A parameterised *extended*-community family (RFC 4360 mirrors).

    Matches two-octet-AS-specific extended communities whose global
    administrator is the route server ASN and whose subtype encodes the
    action; the local administrator is the target ASN.
    """

    global_admin: int
    type_high: int
    type_low: int
    category: ActionCategory
    description: str = ""
    prepend_count: int = 0
    source: str = SOURCE_BOTH

    def match(self, community: Community) -> Optional[Semantics]:
        from ..bgp.communities import ExtendedCommunity
        if not isinstance(community, ExtendedCommunity):
            return None
        if (community.type_high, community.type_low) != (
                self.type_high, self.type_low):
            return None
        if community.global_admin != self.global_admin:
            return None
        target_asn = community.local_admin
        target = (Target.all_peers() if target_asn == 0
                  else Target.peer(target_asn))
        return Semantics(
            role=CommunityRole.ACTION,
            category=self.category,
            target=target,
            description=self.description or (
                f"{self.category.value} {target}"),
            prepend_count=self.prepend_count,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule_type": "extended",
            "global_admin": self.global_admin,
            "type_high": self.type_high,
            "type_low": self.type_low,
            "category": self.category.value,
            "description": self.description,
            "prepend_count": self.prepend_count,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExtendedCommunityRule":
        return cls(
            global_admin=int(payload["global_admin"]),  # type: ignore[arg-type]
            type_high=int(payload["type_high"]),        # type: ignore[arg-type]
            type_low=int(payload["type_low"]),          # type: ignore[arg-type]
            category=ActionCategory(payload["category"]),
            description=str(payload.get("description", "")),
            prepend_count=int(payload.get("prepend_count", 0)),  # type: ignore[arg-type]
            source=str(payload.get("source", SOURCE_BOTH)),
        )

    def dedupe_key(self) -> Tuple[object, ...]:
        return ("extended", self.global_admin, self.type_high,
                self.type_low, self.category.value)


AnyRule = object  # CommunityRule | LargeCommunityRule | ExtendedCommunityRule


def rule_from_dict(payload: Dict[str, object]) -> object:
    """Deserialise any rule flavour (dispatch on ``rule_type``)."""
    rule_type = payload.get("rule_type", "standard")
    if rule_type == "large":
        return LargeCommunityRule.from_dict(payload)
    if rule_type == "extended":
        return ExtendedCommunityRule.from_dict(payload)
    return CommunityRule.from_dict(payload)


def _target_from_string(text: str) -> Target:
    if text == TargetKind.ALL_PEERS.value:
        return Target.all_peers()
    if text == TargetKind.NONE.value:
        return Target.none()
    if text.startswith("region:"):
        return Target.for_region(text.split(":", 1)[1])
    if text.startswith("AS"):
        return Target.peer(int(text[2:]))
    raise ValueError(f"cannot parse target {text!r}")


class CommunityDictionary:
    """A per-IXP dictionary of community semantics.

    ``len()`` counts only concrete entries, mirroring how the paper
    reports dictionary sizes (e.g. 774 for DE-CIX). Rules extend coverage
    to parameterised families without inflating the count.
    """

    def __init__(self, ixp_name: str,
                 entries: Iterable[CommunityEntry] = (),
                 rules: Iterable[CommunityRule] = ()) -> None:
        self.ixp_name = ixp_name
        self._entries: Dict[Community, CommunityEntry] = {}
        self._rules: List[CommunityRule] = list(rules)
        self._digest: Optional[str] = None
        for entry in entries:
            self.add_entry(entry)

    # -- construction -------------------------------------------------

    def add_entry(self, entry: CommunityEntry) -> None:
        """Insert or merge a concrete entry.

        When the same community arrives from both sources, the stored
        entry's source is upgraded to ``both`` — this is the §3 union.
        """
        self._digest = None
        existing = self._entries.get(entry.community)
        if existing is None:
            self._entries[entry.community] = entry
            return
        if existing.source != entry.source:
            self._entries[entry.community] = replace(
                existing, source=SOURCE_BOTH)

    def add_rule(self, rule: CommunityRule) -> None:
        self._digest = None
        self._rules.append(rule)

    def digest(self) -> str:
        """SHA-256 over the canonical :meth:`to_dict` JSON (cached;
        invalidated by mutation). Matches the integrity-envelope digest
        the store records for this dictionary's ``dictionary.json``, so
        the aggregate cache can key on dictionary content."""
        if self._digest is None:
            blob = json.dumps(self.to_dict(), separators=(",", ":"),
                              sort_keys=True).encode("utf-8")
            self._digest = hashlib.sha256(blob).hexdigest()
        return self._digest

    @classmethod
    def union(cls, ixp_name: str,
              *dictionaries: "CommunityDictionary") -> "CommunityDictionary":
        """The union dictionary the paper builds from RS config + website."""
        merged = cls(ixp_name)
        seen_rules: Set[Tuple[object, ...]] = set()
        for dictionary in dictionaries:
            for entry in dictionary.entries():
                merged.add_entry(entry)
            for rule in dictionary.rules():
                key = rule.dedupe_key()
                if key not in seen_rules:
                    seen_rules.add(key)
                    merged.add_rule(rule)
        return merged

    # -- lookup -------------------------------------------------------

    def lookup(self, community: Community) -> Optional[Semantics]:
        """Return semantics for *community*, or None when unknown."""
        entry = self._entries.get(community)
        if entry is not None:
            return entry.semantics
        for rule in self._rules:
            semantics = rule.match(community)
            if semantics is not None:
                return semantics
        return None

    def is_ixp_defined(self, community: Community) -> bool:
        return self.lookup(community) is not None

    def __contains__(self, community: Community) -> bool:
        return self.is_ixp_defined(community)

    def __len__(self) -> int:
        return len(self._entries)

    # -- iteration / views ---------------------------------------------

    def entries(self) -> Iterator[CommunityEntry]:
        return iter(self._entries.values())

    def rules(self) -> Tuple[CommunityRule, ...]:
        return tuple(self._rules)

    def action_entries(self) -> Iterator[CommunityEntry]:
        return (e for e in self.entries() if e.semantics.is_action)

    def informational_entries(self) -> Iterator[CommunityEntry]:
        return (e for e in self.entries() if not e.semantics.is_action)

    def communities_by_category(
            self, category: ActionCategory) -> Set[Community]:
        return {e.community for e in self.entries()
                if e.semantics.category is category}

    def restricted_to_source(self, source: str) -> "CommunityDictionary":
        """A view keeping only entries/rules from one source.

        Used by the dictionary-union ablation: classifying with the
        RS-config-only dictionary shows how much the website documentation
        contributes (the paper found RS configs incomplete).
        """
        keep = (source, SOURCE_BOTH)
        return CommunityDictionary(
            self.ixp_name,
            entries=(e for e in self.entries() if e.source in keep),
            rules=(r for r in self._rules if r.source in keep),
        )

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON form served by the LG ``/config`` endpoint."""
        def one(entry: CommunityEntry) -> Dict[str, object]:
            semantics = entry.semantics
            record: Dict[str, object] = {
                "community": str(entry.community),
                "kind": entry.community.kind,
                "role": semantics.role.value,
                "description": semantics.description,
                "source": entry.source,
            }
            if semantics.category:
                record["category"] = semantics.category.value
            if semantics.target is not None:
                record["target"] = str(semantics.target)
            if semantics.prepend_count:
                record["prepend_count"] = semantics.prepend_count
            return record

        return {
            "ixp": self.ixp_name,
            "entries": [one(e) for e in sorted(
                self.entries(), key=lambda e: str(e.community))],
            "rules": [r.to_dict() for r in self._rules],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CommunityDictionary":
        """Inverse of :meth:`to_dict`; how the scraper rebuilds the
        dictionary from the LG ``/config`` response."""
        dictionary = cls(str(payload["ixp"]))
        for record in payload.get("entries", ()):   # type: ignore[union-attr]
            role = CommunityRole(record["role"])
            category = (ActionCategory(record["category"])
                        if "category" in record else None)
            target = (_target_from_string(str(record["target"]))
                      if "target" in record else None)
            semantics = Semantics(
                role=role, category=category, target=target,
                description=str(record.get("description", "")),
                prepend_count=int(record.get("prepend_count", 0)))
            dictionary.add_entry(CommunityEntry(
                community=parse_community(str(record["community"])),
                semantics=semantics,
                source=str(record.get("source", SOURCE_BOTH))))
        for record in payload.get("rules", ()):     # type: ignore[union-attr]
            dictionary.add_rule(rule_from_dict(record))
        return dictionary
