"""Community taxonomy used throughout the reproduction.

The paper groups IXP-defined communities into **informational** and
**action** communities, and the actions into four categories (§5.3):

* ``do-not-announce-to`` — do not export the route to the target;
* ``announce-only-to``  — export the route only to the target(s);
* ``prepend-to``        — prepend before exporting to the target;
* ``blackholing``       — drop traffic towards the prefix (RFC 7999).

Targets can be a single peer AS, every peer, or a region/facility group.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CommunityRole(str, enum.Enum):
    """Informational (added by the RS) vs action (added by members)."""

    INFORMATIONAL = "informational"
    ACTION = "action"


class ActionCategory(str, enum.Enum):
    """The four action groups from §5.3 of the paper."""

    DO_NOT_ANNOUNCE_TO = "do-not-announce-to"
    ANNOUNCE_ONLY_TO = "announce-only-to"
    PREPEND_TO = "prepend-to"
    BLACKHOLING = "blackholing"

    @property
    def limits_propagation(self) -> bool:
        """The two categories "intended to limit the propagation of a
        route" (paper §5.3)."""
        return self in (ActionCategory.DO_NOT_ANNOUNCE_TO,
                        ActionCategory.ANNOUNCE_ONLY_TO)


class TargetKind(str, enum.Enum):
    """What an action community is aimed at."""

    PEER_AS = "peer-as"
    ALL_PEERS = "all-peers"
    REGION = "region"
    NONE = "none"         # blackholing acts on the prefix, not a peer


@dataclass(frozen=True)
class Target:
    """The target of an action community.

    ``asn`` is set for :attr:`TargetKind.PEER_AS`; ``region`` for
    :attr:`TargetKind.REGION`; both are None for ALL_PEERS / NONE.
    """

    kind: TargetKind
    asn: Optional[int] = None
    region: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is TargetKind.PEER_AS and self.asn is None:
            raise ValueError("PEER_AS target requires an ASN")
        if self.kind is TargetKind.REGION and not self.region:
            raise ValueError("REGION target requires a region name")

    @classmethod
    def peer(cls, asn: int) -> "Target":
        return cls(TargetKind.PEER_AS, asn=asn)

    @classmethod
    def all_peers(cls) -> "Target":
        return cls(TargetKind.ALL_PEERS)

    @classmethod
    def for_region(cls, name: str) -> "Target":
        return cls(TargetKind.REGION, region=name)

    @classmethod
    def none(cls) -> "Target":
        return cls(TargetKind.NONE)

    def __str__(self) -> str:
        if self.kind is TargetKind.PEER_AS:
            return f"AS{self.asn}"
        if self.kind is TargetKind.REGION:
            return f"region:{self.region}"
        return self.kind.value
