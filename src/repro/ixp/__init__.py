"""IXP substrate: members, community dictionaries, schemes, profiles."""

from .dictionary import (
    SOURCE_BOTH,
    SOURCE_RS_CONFIG,
    SOURCE_WEBSITE,
    CommunityDictionary,
    CommunityEntry,
    CommunityRule,
    ExtendedCommunityRule,
    LargeCommunityRule,
    Semantics,
    rule_from_dict,
)
from .docparser import parse_documentation, render_documentation
from .member import Member, MemberRole
from .profiles import (
    ALL_IXPS,
    CategoryUsage,
    LARGE_FOUR,
    PROFILES,
    IxpProfile,
    all_profiles,
    get_profile,
    large_profiles,
)
from .schemes import dictionary_for, dictionary_pair_for, spec_for
from .taxonomy import ActionCategory, CommunityRole, Target, TargetKind

__all__ = [
    "Member", "MemberRole",
    "CommunityDictionary", "CommunityEntry", "CommunityRule",
    "LargeCommunityRule", "ExtendedCommunityRule", "Semantics", "rule_from_dict",
    "SOURCE_RS_CONFIG", "SOURCE_WEBSITE", "SOURCE_BOTH",
    "ActionCategory", "CommunityRole", "Target", "TargetKind",
    "IxpProfile", "CategoryUsage", "PROFILES", "ALL_IXPS", "LARGE_FOUR",
    "get_profile", "all_profiles", "large_profiles",
    "dictionary_for", "dictionary_pair_for", "spec_for",
    "parse_documentation", "render_documentation",
]
