"""Dataset views: what the query API serves, and how it stays fresh.

Everything the service answers is a pure function of the dataset's
**content addresses** — the manifest-recorded sha256 of each key's
newest snapshot, the dictionary digests, and the aggregate-cache keys
derived from them (:func:`repro.core.engine.aggregate_cache_key`).
:class:`QueryService` therefore works in two tiers:

* a **fingerprint** of those addresses, recomputed per request but
  memoised on each IXP's ``MANIFEST.json`` stat signature (every
  artefact write rewrites the manifest, so an unchanged stat means
  unchanged addresses). The fingerprint digest seeds every strong
  ETag: re-collecting a snapshot or editing a dictionary moves the
  addresses, hence the ETag, hence invalidates everything derived —
  by construction, exactly like the aggregate cache itself;
* **bodies**, built lazily from the same :class:`~repro.core.Study` /
  :mod:`repro.core.export` code paths the CLI uses (so JSON bytes are
  identical to ``repro-study export``), cached in a bounded
  :class:`~repro.query.cache.ResponseCache` under ``(route, ETag)``,
  and for per-key aggregates persisted through the store's
  :class:`~repro.core.engine.AggregateCache` so they survive worker
  restarts and are shared across pre-fork workers.

The service is read-mostly but not read-only: a cold aggregate request
computes and persists the cache entry (the same write an ``analyze``
would have done). All store writes go through the store's atomic
publish path, so concurrent workers at worst both compute and one
wins the rename.
"""

from __future__ import annotations

import hashlib
import os
import threading
import types
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..collector.integrity import IntegrityError
from ..core.aggregate import aggregate_snapshot
from ..core.engine import AGGREGATOR_VERSION, AggregateCache, aggregate_cache_key
from ..core.export import artefact_names, dumps_rows, study_rows
from ..core.pipeline import Study
from ..core.stability import variation_rows
from ..ixp.profiles import ALL_IXPS, get_profile
from ..ixp.schemes import dictionary_for
from .cache import ResponseCache

#: bumped whenever a response *shape* changes, so every ETag moves and
#: stale client caches revalidate into fresh bodies.
QUERY_SCHEMA_VERSION = 1

#: how many newest snapshots feed Table 3 (the paper's "daily
#: variation within one week").
TABLE3_WINDOW = 7

JSON_TYPE = "application/json"

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    fingerprints=reg.counter(
        "repro_query_fingerprint_probes_total",
        "Dataset fingerprint probes, by outcome (memo = manifest "
        "stat unchanged, refresh = addresses recomputed)",
        ("outcome",)),
    rebuilds=reg.counter(
        "repro_query_study_rebuilds_total",
        "Full Study/bundle rebuilds after a dataset change").labels(),
    aggregates=reg.counter(
        "repro_query_aggregate_builds_total",
        "Per-key aggregate computations served cold (cache misses "
        "that had to touch route data)").labels(),
))


@dataclass(frozen=True)
class KeyAddress:
    """The content addresses anchoring one ``(ixp, family)`` key."""

    ixp: str
    family: int
    #: newest snapshot date the manifest can vouch for, or None.
    captured_on: Optional[str]
    #: that snapshot's manifest-recorded payload sha256, or None.
    snapshot_sha256: Optional[str]
    dictionary_sha256: str
    #: the aggregate cache's content address for this key, or None
    #: while no verified snapshot exists.
    aggregate_key: Optional[str]

    def as_dict(self) -> Dict[str, object]:
        return {
            "ixp": self.ixp,
            "family": self.family,
            "captured_on": self.captured_on,
            "snapshot_sha256": self.snapshot_sha256,
            "dictionary_sha256": self.dictionary_sha256,
            "aggregate_key": self.aggregate_key,
        }


@dataclass(frozen=True)
class Fingerprint:
    """Every key's addresses plus one digest over them all."""

    addresses: Tuple[KeyAddress, ...]
    digest: str

    def find(self, ixp: str, family: int) -> Optional[KeyAddress]:
        for address in self.addresses:
            if address.ixp == ixp and address.family == family:
                return address
        return None


@dataclass
class Response:
    """One rendered response (transport concerns stay in the server)."""

    status: int
    body: bytes
    content_type: str = JSON_TYPE
    etag: Optional[str] = None
    #: response-cache outcome for a 200 (``hit``/``miss``), else None.
    cache_event: Optional[str] = None


class _NotFound(Exception):
    """Route resolved, resource absent (unknown IXP, unserved table)."""


def _error_body(status: int, message: str) -> bytes:
    return dumps_rows({"error": message, "status": status}).encode("utf-8")


def _matches(if_none_match: Optional[str], etag: str) -> bool:
    """RFC 7232 ``If-None-Match`` for strong ETags: a list of quoted
    tags, or ``*``. Weak prefixes compare by opaque value."""
    if not if_none_match:
        return False
    candidates = [tag.strip() for tag in if_none_match.split(",")]
    quoted = f'"{etag}"'
    for tag in candidates:
        if tag == "*" or tag == quoted or tag == etag:
            return True
        if tag.startswith("W/") and tag[2:] == quoted:
            return True
    return False


#: figure aliases: ``fig1`` → the full artefact name; first artefact
#: with a given prefix wins (``fig4b`` is the checkpoint rows, the
#: full curves stay at their long name ``fig4b_curves``).
def _figure_aliases() -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for name in artefact_names():
        if not name.startswith("fig"):
            continue
        aliases.setdefault(name, name)
        short = name.split("_", 1)[0]
        aliases.setdefault(short, name)
    return aliases


class QueryService:
    """Read-mostly view layer between a store and the HTTP server."""

    def __init__(self, store, ixps: Optional[Sequence[str]] = None,
                 families: Sequence[int] = (4, 6),
                 jobs: int = 1,
                 response_cache: Optional[ResponseCache] = None) -> None:
        self.store = store
        #: None means "every IXP directory present in the store".
        self._configured_ixps = tuple(ixps) if ixps else None
        self.families = tuple(families)
        self.jobs = jobs
        self.responses = response_cache or ResponseCache()
        self._figure_aliases = _figure_aliases()
        self._lock = threading.RLock()
        #: ixp → (manifest stat signature, per-family addresses).
        self._address_memo: Dict[
            str, Tuple[object, Tuple[KeyAddress, ...]]] = {}
        #: ixp → (dictionary digest, dictionary object) for the memoed
        #: stat signature; rebuilt whenever the manifest moves.
        self._dictionary_memo: Dict[str, Tuple[str, object]] = {}
        #: bundle built from the Study, keyed by fingerprint digest.
        self._bundle_digest: Optional[str] = None
        self._bundle: Optional[Dict[str, List[Dict[str, object]]]] = None
        #: Tables 3/4 rows, keyed by (fingerprint digest, window) —
        #: loading a snapshot series is the single most expensive build
        #: this service does, and the lock makes it single-flight: a
        #: stampede of cold misses parses the series once, not N times.
        self._variation_memo: Dict[
            Tuple[str, Optional[int]], List[Dict[str, object]]] = {}

    # -- fingerprinting -------------------------------------------------

    def ixps(self) -> List[str]:
        if self._configured_ixps is not None:
            return list(self._configured_ixps)
        # unconfigured: serve every known-profile IXP the store holds
        # (foreign directories have no scheme to fall back on).
        return [ixp for ixp in self.store.ixps() if ixp in ALL_IXPS]

    def _manifest_signature(self, ixp: str) -> object:
        path = self.store.root / ixp / "MANIFEST.json"
        try:
            stat = os.stat(path)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def _effective_dictionary(self, ixp: str):
        """The dictionary classification uses for *ixp* — the stored
        one when verifiable, else the documented scheme (the same
        fallback :meth:`Study.from_store` applies)."""
        try:
            return self.store.load_dictionary(ixp)
        except (FileNotFoundError, IntegrityError):
            return dictionary_for(get_profile(ixp))

    def _addresses_for(self, ixp: str) -> Tuple[KeyAddress, ...]:
        signature = self._manifest_signature(ixp)
        memo = self._address_memo.get(ixp)
        metrics = _METRICS()
        if memo is not None and signature is not None \
                and memo[0] == signature:
            metrics.fingerprints.labels("memo").inc()
            return memo[1]
        metrics.fingerprints.labels("refresh").inc()
        dictionary = self._effective_dictionary(ixp)
        dictionary_sha256 = dictionary.digest()
        self._dictionary_memo[ixp] = (dictionary_sha256, dictionary)
        addresses = []
        for family in self.families:
            captured_on = snapshot_sha256 = aggregate_key = None
            for date in reversed(self.store.snapshot_dates(ixp, family)):
                digest = self.store.snapshot_digest(ixp, family, date)
                if digest:
                    captured_on, snapshot_sha256 = date, digest
                    aggregate_key = aggregate_cache_key(
                        digest, dictionary_sha256)
                    break
            addresses.append(KeyAddress(
                ixp=ixp, family=family, captured_on=captured_on,
                snapshot_sha256=snapshot_sha256,
                dictionary_sha256=dictionary_sha256,
                aggregate_key=aggregate_key))
        result = tuple(addresses)
        self._address_memo[ixp] = (signature, result)
        return result

    def fingerprint(self) -> Fingerprint:
        """The dataset's current content-address fingerprint. Cheap on
        the warm path: one ``stat`` per IXP manifest."""
        with self._lock:
            addresses: List[KeyAddress] = []
            for ixp in self.ixps():
                addresses.extend(self._addresses_for(ixp))
            material = [f"q{QUERY_SCHEMA_VERSION}",
                        f"a{AGGREGATOR_VERSION}",
                        ",".join(str(f) for f in self.families)]
            for address in addresses:
                material.append(
                    f"{address.ixp}:{address.family}"
                    f":{address.captured_on}:{address.snapshot_sha256}"
                    f":{address.dictionary_sha256}")
            digest = hashlib.sha256(
                "\n".join(material).encode("utf-8")).hexdigest()
            return Fingerprint(addresses=tuple(addresses), digest=digest)

    def _etag(self, fingerprint: Fingerprint, name: str,
              params: Dict[str, str]) -> str:
        """A route's strong ETag: sha256 over the dataset fingerprint
        (itself sha256s of content addresses) and the route identity."""
        detail = ":".join(f"{key}={params[key]}"
                          for key in sorted(params))
        material = f"{fingerprint.digest}:{name}:{detail}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    # -- responding -----------------------------------------------------

    def respond(self, name: str, params: Optional[Dict[str, str]] = None,
                if_none_match: Optional[str] = None) -> Response:
        """Answer one routed request.

        404s carry no ETag (they are not cacheable views of the
        dataset); everything else gets the content-derived strong
        ETag, an ``If-None-Match`` revalidation, and the response LRU.
        Builder exceptions propagate — the server's breaker accounts
        them and answers 503 while the failure persists.
        """
        params = dict(params or {})
        fingerprint = self.fingerprint()
        try:
            etag, builder = self._resolve(name, params, fingerprint)
        except _NotFound as missing:
            return Response(404, _error_body(404, str(missing)))
        if _matches(if_none_match, etag):
            return Response(304, b"", etag=etag)
        cache_key = (self._canonical(name, params), etag)
        cached = self.responses.get(cache_key)
        if cached is not None:
            return Response(200, cached, etag=etag, cache_event="hit")
        body = builder().encode("utf-8")
        self.responses.put(cache_key, body)
        return Response(200, body, etag=etag, cache_event="miss")

    def _canonical(self, name: str, params: Dict[str, str]) -> str:
        detail = "/".join(params[key] for key in sorted(params))
        return f"{name}/{detail}" if detail else name

    def _resolve(self, name: str, params: Dict[str, str],
                 fingerprint: Fingerprint,
                 ) -> Tuple[str, Callable[[], str]]:
        """Map a route to ``(etag, body builder)``, raising
        :class:`_NotFound` for resources the dataset does not have."""
        resolver = getattr(self, f"_resolve_{name}", None)
        if resolver is None:
            raise _NotFound(f"no such resource: {name}")
        return resolver(params, fingerprint)

    # -- per-route resolvers --------------------------------------------

    def _resolve_healthz(self, params: Dict[str, str],
                         fingerprint: Fingerprint,
                         ) -> Tuple[str, Callable[[], str]]:
        etag = self._etag(fingerprint, "healthz", params)

        def build() -> str:
            served = sum(1 for a in fingerprint.addresses
                         if a.snapshot_sha256 is not None)
            return dumps_rows({
                "status": "ok",
                "dataset": fingerprint.digest,
                "keys": len(fingerprint.addresses),
                "keys_with_snapshots": served,
                "response_cache": self.responses.stats(),
            })
        return etag, build

    def _resolve_ixps(self, params: Dict[str, str],
                      fingerprint: Fingerprint,
                      ) -> Tuple[str, Callable[[], str]]:
        etag = self._etag(fingerprint, "ixps", params)

        def build() -> str:
            rows = []
            for ixp in self.ixps():
                addresses = [a for a in fingerprint.addresses
                             if a.ixp == ixp]
                profile = get_profile(ixp) if ixp in ALL_IXPS else None
                rows.append({
                    "ixp": ixp,
                    "name": profile.name if profile else ixp,
                    "families": [a.family for a in addresses
                                 if a.snapshot_sha256 is not None],
                    "snapshots": sum(
                        len(self.store.snapshot_dates(ixp, a.family))
                        for a in addresses),
                    "newest": max(
                        (a.captured_on for a in addresses
                         if a.captured_on is not None), default=None),
                    "dictionary_sha256": addresses[0].dictionary_sha256
                    if addresses else None,
                })
            return dumps_rows(rows)
        return etag, build

    def _resolve_keys(self, params: Dict[str, str],
                      fingerprint: Fingerprint,
                      ) -> Tuple[str, Callable[[], str]]:
        etag = self._etag(fingerprint, "keys", params)

        def build() -> str:
            return dumps_rows({
                "schema_version": QUERY_SCHEMA_VERSION,
                "aggregator_version": AGGREGATOR_VERSION,
                "dataset": fingerprint.digest,
                "keys": [address.as_dict()
                         for address in fingerprint.addresses],
            })
        return etag, build

    def _resolve_aggregate(self, params: Dict[str, str],
                           fingerprint: Fingerprint,
                           ) -> Tuple[str, Callable[[], str]]:
        ixp = params.get("ixp", "")
        try:
            family = int(params.get("family", ""))
        except ValueError:
            raise _NotFound("family must be 4 or 6")
        address = fingerprint.find(ixp, family)
        if address is None:
            raise _NotFound(f"no such key: {ixp}/v{family}")
        if address.aggregate_key is None:
            raise _NotFound(
                f"no verified snapshot collected for {ixp}/v{family}")
        # the purest content address there is: the aggregate-cache key.
        etag = address.aggregate_key
        return etag, lambda: dumps_rows(self._aggregate_payload(address))

    def _aggregate_payload(self, address: KeyAddress) -> Dict:
        """The persisted aggregate-cache payload for one key,
        computing + persisting it first if this is a cold start (the
        same artefact an ``analyze`` over this store would write)."""
        assert address.aggregate_key and address.captured_on
        if not self.store.has_aggregate(address.ixp,
                                        address.aggregate_key):
            with self._lock:
                if not self.store.has_aggregate(address.ixp,
                                                address.aggregate_key):
                    self._compute_aggregate(address)
        return self.store.load_aggregate(address.ixp,
                                         address.aggregate_key)

    def _compute_aggregate(self, address: KeyAddress) -> None:
        _METRICS().aggregates.inc()
        memo = self._dictionary_memo.get(address.ixp)
        if memo is not None and memo[0] == address.dictionary_sha256:
            dictionary = memo[1]
        else:
            dictionary = self._effective_dictionary(address.ixp)
        snapshot, digest = self.store.read_snapshot(
            address.ixp, address.family, address.captured_on)
        aggregate = aggregate_snapshot(snapshot, dictionary)
        AggregateCache(self.store).put(
            address.ixp, address.family, address.captured_on,
            digest, dictionary, aggregate)

    def _resolve_tables(self, params: Dict[str, str],
                        fingerprint: Fingerprint,
                        ) -> Tuple[str, Callable[[], str]]:
        etag = self._etag(fingerprint, "tables", params)

        def build() -> str:
            return dumps_rows([
                {"table": 1, "path": "/v1/tables/1",
                 "title": "IXPs in numbers"},
                {"table": 2, "path": "/v1/tables/2",
                 "title": "ASes per action type"},
                {"table": 3, "path": "/v1/tables/3",
                 "title": "daily variation (newest week)"},
                {"table": 4, "path": "/v1/tables/4",
                 "title": "variation over the collected series"},
            ])
        return etag, build

    def _resolve_table(self, params: Dict[str, str],
                       fingerprint: Fingerprint,
                       ) -> Tuple[str, Callable[[], str]]:
        table = params.get("table", "")
        if table not in ("1", "2", "3", "4"):
            raise _NotFound(f"no such table: {table} (served: 1-4)")
        etag = self._etag(fingerprint, "table", params)
        if table == "1":
            return etag, lambda: dumps_rows(
                self._bundle_for(fingerprint)["table1_summary"])
        if table == "2":
            return etag, lambda: dumps_rows(
                self._bundle_for(fingerprint)["table2_ases_per_type"])
        window = TABLE3_WINDOW if table == "3" else None
        return etag, lambda: dumps_rows(
            self._variation_rows(fingerprint, window))

    def _variation_rows(self, fingerprint: Fingerprint,
                        window: Optional[int],
                        ) -> List[Dict[str, object]]:
        """Tables 3/4: min/max/Diff% over each key's snapshot series
        (the newest *window* dates, or the whole series).

        Memoised on the fingerprint digest and built under the service
        lock: the series parse is the most expensive build here, and
        single-flight turns a cold-start stampede into one build plus
        waiters."""
        with self._lock:
            key = (fingerprint.digest, window)
            cached = self._variation_memo.get(key)
            if cached is not None:
                return cached
            rows = self._build_variation_rows(window)
            # only the current dataset's rows are worth keeping (both
            # windows of it — tables 3 and 4 share the memo)
            self._variation_memo = {
                k: v for k, v in self._variation_memo.items()
                if k[0] == fingerprint.digest}
            self._variation_memo[key] = rows
            return rows

    def _build_variation_rows(self, window: Optional[int],
                              ) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for ixp in self.ixps():
            for family in self.families:
                dates = self.store.snapshot_dates(ixp, family)
                if window is not None:
                    dates = dates[-window:]
                snapshots = []
                for date in dates:
                    try:
                        snapshots.append(
                            self.store.load_snapshot(ixp, family, date))
                    except (FileNotFoundError, IntegrityError):
                        continue  # a missing/damaged day, like §3
                rows.extend(row.as_dict()
                            for row in variation_rows(snapshots))
        return rows

    def _resolve_figures(self, params: Dict[str, str],
                         fingerprint: Fingerprint,
                         ) -> Tuple[str, Callable[[], str]]:
        etag = self._etag(fingerprint, "figures", params)

        def build() -> str:
            return dumps_rows([
                {"figure": name, "path": f"/v1/figures/{name}"}
                for name in artefact_names() if name.startswith("fig")])
        return etag, build

    def _resolve_figure(self, params: Dict[str, str],
                        fingerprint: Fingerprint,
                        ) -> Tuple[str, Callable[[], str]]:
        artefact = self._figure_aliases.get(params.get("fig", ""))
        if artefact is None:
            raise _NotFound(
                f"no such figure: {params.get('fig', '')!r}")
        # ETag keyed on the resolved artefact, so an alias and its full
        # name revalidate interchangeably.
        etag = self._etag(fingerprint, "figure", {"fig": artefact})
        return etag, lambda: dumps_rows(
            self._bundle_for(fingerprint)[artefact])

    def _resolve_export(self, params: Dict[str, str],
                        fingerprint: Fingerprint,
                        ) -> Tuple[str, Callable[[], str]]:
        etag = self._etag(fingerprint, "export", params)
        return etag, lambda: dumps_rows(self._bundle_for(fingerprint))

    # -- study / bundle -------------------------------------------------

    def _bundle_for(self, fingerprint: Fingerprint,
                    ) -> Dict[str, List[Dict[str, object]]]:
        """The :func:`study_rows` bundle for the current dataset,
        rebuilt only when the fingerprint moves. Uses the same
        ``Study.from_store`` + ``AggregateCache`` path as the CLI, so
        warm rebuilds never touch route data."""
        with self._lock:
            if self._bundle is None \
                    or self._bundle_digest != fingerprint.digest:
                _METRICS().rebuilds.inc()
                study = Study.from_store(
                    self.store, ixps=self.ixps(),
                    families=self.families, jobs=self.jobs,
                    cache=AggregateCache(self.store))
                self._bundle = study_rows(study, self.families)
                self._bundle_digest = fingerprint.digest
            return self._bundle
