"""Pre-fork worker supervisor: N processes, one listening port.

Python's GIL caps a single ``ThreadingHTTPServer`` at roughly one core
of useful work, so the scale story is processes, exactly like the
collection engine's dispatch workers. Two sharing strategies, picked
at runtime:

* **SO_REUSEPORT** (Linux, modern BSDs) — every worker binds its own
  socket to the same address with ``SO_REUSEPORT`` set; the kernel
  hash-balances incoming connections across the accept queues. No FD
  passing, no thundering herd;
* **inherited FD** (everywhere ``fork`` exists) — the supervisor binds
  one socket before forking and every worker accepts on the inherited
  FD; the kernel wakes one acceptor per connection.

Platforms without ``fork`` (or ``workers=1``) serve in-process — same
code path as a single pre-fork worker, no supervisor.

The supervisor itself never serves. It installs a
:class:`~repro.net.shutdown.ShutdownLatch`, restarts workers that die
unexpectedly (bounded — a crash-looping store should kill the service,
not spin it), and on SIGTERM/SIGINT forwards the signal to every
worker, then reaps them; each worker drains in-flight requests through
:meth:`QueryHTTPServer.stop` before exiting. Worker aggregate-cache
writes land in the shared store through its atomic-publish path, so
workers warm each other's caches and a restart loses nothing.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import time
import traceback
from typing import Callable, Dict, Optional

from ..net.shutdown import ShutdownLatch
from .server import QueryHTTPServer

#: exit code a worker reports when its serve loop raised.
WORKER_CRASH_EXIT = 70


def can_prefork() -> bool:
    return hasattr(os, "fork")


def reuse_port_available() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


def make_listening_socket(host: str, port: int,
                          reuse_port: bool,
                          backlog: int = 128) -> socket.socket:
    """A bound, listening TCP socket (IPv4 — both servers here bind
    loopback or explicit addresses, not wildcard dual-stack)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if reuse_port:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    return sock


class PreforkServer:
    """Supervise N :class:`QueryHTTPServer` worker processes.

    ``server_factory(sock)`` must build a fresh server bound to the
    given socket; it runs *after* fork, in the worker, so every worker
    gets its own store handles, response cache, rate limiter, and
    metrics registry (forked registries diverge per process — each
    worker's ``/metrics`` describes that worker).
    """

    def __init__(self,
                 server_factory: Callable[[socket.socket],
                                          QueryHTTPServer],
                 host: str = "127.0.0.1", port: int = 8700,
                 workers: int = 2,
                 drain_timeout: float = 10.0,
                 max_respawns: int = 5,
                 prefer_reuse_port: bool = True) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.server_factory = server_factory
        self.host = host
        self.port = port
        self.workers = workers
        self.drain_timeout = drain_timeout
        self.max_respawns = max_respawns
        self.reuse_port = prefer_reuse_port and reuse_port_available()
        #: pid → worker index, while running.
        self._children: Dict[int, int] = {}
        self._respawns = 0

    @property
    def mode(self) -> str:
        if self.workers <= 1 or not can_prefork():
            return "in-process"
        return "SO_REUSEPORT" if self.reuse_port else "inherited-fd"

    def announce(self) -> str:
        return (f"query API serving at http://{self.host}:{self.port} "
                f"(workers={self.workers}, {self.mode})")

    # -- entry point ----------------------------------------------------

    def run(self, latch: Optional[ShutdownLatch] = None) -> int:
        """Serve until SIGTERM/SIGINT (or ``latch`` trips); returns an
        exit code. Blocks the calling thread."""
        sock = make_listening_socket(self.host, self.port,
                                     self.reuse_port)
        self.port = sock.getsockname()[1]
        print(self.announce(), flush=True)
        if self.workers <= 1 or not can_prefork():
            return self._serve_inline(sock, latch)
        return self._supervise(sock, latch)

    # -- single-process fallback ----------------------------------------

    def _serve_inline(self, sock: socket.socket,
                      latch: Optional[ShutdownLatch]) -> int:
        latch = latch or ShutdownLatch()
        restore = latch.install()
        server = self.server_factory(sock)
        server.start()
        try:
            latch.wait()
        except KeyboardInterrupt:  # latch not installable (rare)
            pass
        finally:
            restore()
            server.stop()
        return 0

    # -- worker ----------------------------------------------------------

    def _spawn(self, index: int, sock: socket.socket) -> int:
        pid = os.fork()
        if pid != 0:
            return pid
        # -- worker process ---------------------------------------------
        status = WORKER_CRASH_EXIT
        try:
            status = self._worker(index, sock)
        except BaseException:  # noqa: BLE001 — last-resort report
            traceback.print_exc()
        finally:
            # never run the supervisor's finally blocks / atexit in a
            # forked worker
            os._exit(status)
        return 0  # unreachable; keeps type checkers honest

    def _worker(self, index: int, inherited: socket.socket) -> int:
        latch = ShutdownLatch()
        latch.install()
        if self.reuse_port:
            # own socket, own accept queue; drop the inherited one.
            inherited.close()
            sock = make_listening_socket(self.host, self.port, True)
        else:
            sock = inherited
        server = self.server_factory(sock)
        server.start()
        latch.wait()
        server.stop()  # graceful drain before the exit
        return 0

    # -- supervisor -------------------------------------------------------

    def _supervise(self, sock: socket.socket,
                   latch: Optional[ShutdownLatch]) -> int:
        latch = latch or ShutdownLatch()
        restore = latch.install()
        exit_code = 0
        try:
            for index in range(self.workers):
                self._children[self._spawn(index, sock)] = index
            if self.reuse_port:
                # workers bound their own sockets; the supervisor's
                # copy only held the port during the fork window.
                sock.close()
            while self._children and not latch.tripped():
                self._reap_and_respawn(sock, latch)
                latch.wait(0.1)
            if not self._children and not latch.tripped():
                # every worker crashed through the respawn budget
                exit_code = 1
        finally:
            restore()
            self._shutdown_children()
            if not self.reuse_port:
                sock.close()
        return exit_code

    def _reap_and_respawn(self, sock: socket.socket,
                          latch: ShutdownLatch) -> None:
        for pid in list(self._children):
            done, status = os.waitpid(pid, os.WNOHANG)
            if done == 0:
                continue
            index = self._children.pop(pid)
            if latch.tripped():
                continue
            code = os.waitstatus_to_exitcode(status)
            print(f"query worker {index} (pid {pid}) exited "
                  f"unexpectedly ({code})", file=sys.stderr, flush=True)
            if self._respawns < self.max_respawns:
                self._respawns += 1
                self._children[self._spawn(index, sock)] = index

    def _shutdown_children(self) -> None:
        for pid in self._children:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + self.drain_timeout
        pending = dict(self._children)
        while pending and time.monotonic() < deadline:
            for pid in list(pending):
                done, _status = os.waitpid(pid, os.WNOHANG)
                if done != 0:
                    pending.pop(pid)
            if pending:
                time.sleep(0.05)
        for pid in pending:  # drain timeout blown: hard stop
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
        self._children.clear()
