"""Bounded in-process LRU response cache.

The query service's bodies are pure functions of the dataset's content
addresses (see :mod:`repro.query.views`), so a response can be cached
under ``(canonical route, ETag)`` and served until re-collection moves
the ETag — no TTLs, no explicit invalidation. The cache is bounded
twice (entry count and total body bytes) so a long-lived worker over a
growing store cannot grow without limit; eviction is straight LRU.

Thread-safe: one worker process serves from many handler threads.
"""

from __future__ import annotations

import threading
import types
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from .. import obs

CacheKey = Tuple[str, str]  # (canonical route, etag)

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    events=reg.counter(
        "repro_query_response_cache_events_total",
        "Response-cache probe/maintenance outcomes "
        "(hit / miss / store / evict / oversize)", ("event",)),
    entries=reg.gauge(
        "repro_query_response_cache_entries",
        "Response bodies currently cached").labels(),
    bytes=reg.gauge(
        "repro_query_response_cache_bytes",
        "Total bytes of cached response bodies").labels(),
))


class ResponseCache:
    """LRU over rendered response bodies, keyed ``(route, etag)``."""

    def __init__(self, max_entries: int = 256,
                 max_bytes: int = 64 * 1024 * 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be at least 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[CacheKey, bytes]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def get(self, key: CacheKey) -> Optional[bytes]:
        metrics = _METRICS()
        with self._lock:
            body = self._entries.get(key)
            if body is None:
                metrics.events.labels("miss").inc()
                return None
            self._entries.move_to_end(key)
        metrics.events.labels("hit").inc()
        return body

    def put(self, key: CacheKey, body: bytes) -> None:
        metrics = _METRICS()
        if len(body) > self.max_bytes:
            # a single body larger than the whole budget would evict
            # everything and then miss anyway — serve it uncached.
            metrics.events.labels("oversize").inc()
            return
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= len(previous)
            self._entries[key] = body
            self._bytes += len(body)
            while (len(self._entries) > self.max_entries
                   or self._bytes > self.max_bytes):
                _evicted_key, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                metrics.events.labels("evict").inc()
            metrics.entries.set(len(self._entries))
            metrics.bytes.set(self._bytes)
        metrics.events.labels("store").inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries), "bytes": self._bytes,
                    "max_entries": self.max_entries,
                    "max_bytes": self.max_bytes}
