"""Query API HTTP server (stdlib only).

One worker process: a ``ThreadingHTTPServer`` whose handler delegates
to :meth:`QueryHTTPServer.handle` — a socket-free function from
``(path, If-None-Match)`` to ``(status, body, headers, route)`` that
unit tests exercise directly, exactly like the Looking Glass server.

Request discipline, in order:

1. ``/metrics`` and ``/healthz`` are the ops plane: never rate
   limited, never shed — an overloaded server must stay observable;
2. **overload shedding** — more than ``max_inflight`` requests already
   in flight answers 503 + ``Retry-After`` without doing any work;
3. **rate limiting** — the shared :class:`repro.net.TokenBucket`
   answers 429 + ``Retry-After`` (always positive, see the net
   module) when clients query too fast;
4. routing (404 for unknown paths), then the **view breaker**: builder
   failures trip a :class:`repro.lg.breaker.CircuitBreaker`, and while
   it is open every data route answers 503 + ``Retry-After`` instead
   of hammering a store that just demonstrated it cannot serve;
5. ETag revalidation / response cache / body build, all inside
   :meth:`repro.query.views.QueryService.respond`.

``stop()`` is a graceful drain: the accept loop is shut down, then
``server_close`` joins every in-flight handler thread (non-daemon,
``block_on_close``) before returning — the pre-fork supervisor calls
this on SIGTERM, so a worker never kills a response mid-write.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import time
import types
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, Optional, Tuple
from urllib.parse import urlparse

from .. import obs
from ..lg.breaker import CircuitBreaker
from ..net.ratelimit import TokenBucket
from .router import Router, UNKNOWN
from .views import JSON_TYPE, QueryService, Response, _error_body

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    requests=reg.counter(
        "repro_query_requests_total",
        "Requests answered by the query API, by route and HTTP status",
        ("route", "status")),
    latency=reg.histogram(
        "repro_query_request_seconds",
        "Wall-clock seconds serving one query API request", ("route",)),
    inflight=reg.gauge(
        "repro_query_inflight_requests",
        "Query API requests currently being served").labels(),
    shed=reg.counter(
        "repro_query_shed_total",
        "Requests refused without serving, by reason "
        "(overload / ratelimit / breaker)", ("reason",)),
    cache=reg.counter(
        "repro_query_response_events_total",
        "Response outcomes by source (cache_hit / cache_miss / "
        "not_modified)", ("event",)),
))


class _DrainingHTTPServer(ThreadingHTTPServer):
    """Handler threads are joined on close — that's the drain."""

    daemon_threads = False
    block_on_close = True
    # a second accept can land between shutdown() and close; don't
    # linger on it.
    request_queue_size = 128


class QueryHTTPServer:
    """The study query API over one :class:`QueryService`."""

    def __init__(self, service: QueryService,
                 host: str = "127.0.0.1", port: int = 0,
                 rate_per_second: float = 500.0, burst: int = 500,
                 max_inflight: int = 64,
                 breaker_threshold: int = 5,
                 breaker_reset: float = 2.0,
                 sock: Optional[socket.socket] = None) -> None:
        self.service = service
        self.router = Router()
        self.bucket = TokenBucket(rate_per_second, burst)
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            reset_timeout=breaker_reset, name="query")
        self.max_inflight = max_inflight
        self.host = host
        self.port = port
        #: an already-bound, already-listening socket to adopt (the
        #: pre-fork supervisor's inherited-FD mode); None binds fresh.
        self._given_socket = sock
        if sock is not None:
            self.host, self.port = sock.getsockname()[:2]
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._httpd: Optional[_DrainingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- request handling (framework-free) ------------------------------

    def handle(self, path: str,
               if_none_match: Optional[str] = None,
               ) -> Tuple[int, bytes, Dict[str, str], str]:
        """One GET resolved to ``(status, body, headers, route)``."""
        parsed = urlparse(path)
        match = self.router.match(parsed.path)
        route = match.name if match is not None else UNKNOWN
        metrics = _METRICS()
        # ops plane first: observability and liveness bypass shedding.
        if route == "metrics":
            text = obs.render_prometheus(obs.get_registry()) \
                if obs.enabled() else "# observability disabled\n"
            return 200, text.encode("utf-8"), {
                "Content-Type": obs.CONTENT_TYPE}, route
        if route == "healthz":
            response = self.service.respond("healthz", {}, if_none_match)
            return (response.status, response.body,
                    self._headers(response), route)
        if not self._admit():
            metrics.shed.labels("overload").inc()
            return 503, _error_body(503, "server overloaded"), {
                "Content-Type": JSON_TYPE, "Retry-After": "1"}, route
        if not self.bucket.try_acquire():
            metrics.shed.labels("ratelimit").inc()
            return 429, _error_body(429, "query rate limit exceeded"), {
                "Content-Type": JSON_TYPE,
                "Retry-After": f"{self.bucket.retry_after:.3f}"}, route
        if match is None:
            return 404, _error_body(
                404, f"no such resource: {parsed.path}"), {
                "Content-Type": JSON_TYPE}, route
        if not self.breaker.allow():
            metrics.shed.labels("breaker").inc()
            return 503, _error_body(
                503, "service temporarily unavailable"), {
                "Content-Type": JSON_TYPE,
                "Retry-After":
                    f"{max(self.breaker.seconds_until_probe, 0.001):.3f}",
            }, route
        try:
            response = self.service.respond(route, match.params,
                                            if_none_match)
        except Exception as error:  # noqa: BLE001 — breaker boundary
            self.breaker.record_failure()
            return 500, _error_body(
                500, f"internal error: {error}"), {
                "Content-Type": JSON_TYPE}, route
        self.breaker.record_success()
        if response.cache_event is not None:
            metrics.cache.labels(f"cache_{response.cache_event}").inc()
        elif response.status == 304:
            metrics.cache.labels("not_modified").inc()
        return (response.status, response.body,
                self._headers(response), route)

    def _headers(self, response: Response) -> Dict[str, str]:
        headers = {"Content-Type": response.content_type}
        if response.etag is not None:
            headers["ETag"] = f'"{response.etag}"'
            # clients may cache, but must revalidate (If-None-Match
            # → 304 is nearly free; a stale aggregate is not).
            headers["Cache-Control"] = "no-cache"
        return headers

    def _admit(self) -> bool:
        with self._inflight_lock:
            return self._inflight <= self.max_inflight

    @contextlib.contextmanager
    def _track(self) -> Iterator[None]:
        with self._inflight_lock:
            self._inflight += 1
        _METRICS().inflight.inc()
        try:
            yield
        finally:
            with self._inflight_lock:
                self._inflight -= 1
            _METRICS().inflight.dec()

    # -- HTTP plumbing ---------------------------------------------------

    def _make_handler(self):
        outer = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # bounds the drain: an idle keep-alive connection times
            # out and closes within this many seconds, so stop()'s
            # handler join cannot hang on a quiet client.
            timeout = 10

            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                started = time.perf_counter()
                with outer._track():
                    status, body, headers, route = outer.handle(
                        self.path,
                        self.headers.get("If-None-Match"))
                metrics = _METRICS()
                metrics.requests.labels(route, str(status)).inc()
                metrics.latency.labels(route).observe(
                    time.perf_counter() - started)
                try:
                    self.send_response(status)
                    self.send_header(
                        "Content-Type",
                        headers.pop("Content-Type", JSON_TYPE))
                    self.send_header("Content-Length", str(len(body)))
                    for name, value in headers.items():
                        self.send_header(name, value)
                    self.end_headers()
                    if body:
                        self.wfile.write(body)
                except (BrokenPipeError, ConnectionResetError):
                    pass  # the client gave up — nothing to answer

            def do_HEAD(self) -> None:  # noqa: N802 (stdlib naming)
                status, body, headers, route = outer.handle(
                    self.path, self.headers.get("If-None-Match"))
                _METRICS().requests.labels(route, str(status)).inc()
                try:
                    self.send_response(status)
                    self.send_header(
                        "Content-Type",
                        headers.pop("Content-Type", JSON_TYPE))
                    self.send_header("Content-Length", str(len(body)))
                    for name, value in headers.items():
                        self.send_header(name, value)
                    self.end_headers()
                except (BrokenPipeError, ConnectionResetError):
                    pass

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # metrics are the access log

        return Handler

    def _make_httpd(self) -> _DrainingHTTPServer:
        handler = self._make_handler()
        if self._given_socket is None:
            return _DrainingHTTPServer((self.host, self.port), handler)
        # adopt the supervisor's bound+listening socket: skip bind
        # (another process may share the FD) but fill in the fields
        # server_bind would have set.
        httpd = _DrainingHTTPServer(
            self._given_socket.getsockname()[:2], handler,
            bind_and_activate=False)
        httpd.socket.close()
        httpd.socket = self._given_socket
        httpd.server_address = self._given_socket.getsockname()[:2]
        httpd.server_name = self.host
        httpd.server_port = self.port
        return httpd

    def start(self) -> str:
        """Serve in a background thread; returns the base URL."""
        if self._httpd is not None:
            raise RuntimeError("server already started")
        self._httpd = self._make_httpd()
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="query-api", daemon=True)
        self._thread.start()
        return self.base_url

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Stop accepting, then drain: joins in-flight handlers."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    @contextlib.contextmanager
    def serve(self) -> Iterator[str]:
        """Context-manager form of start/stop."""
        url = self.start()
        try:
            yield url
        finally:
            self.stop()
