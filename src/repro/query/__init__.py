"""Read-only HTTP query service over the reproduction study.

``repro-study api`` serves the same tables, figures, and aggregates
that ``repro-study export`` writes — byte-identical bodies, produced
by the same code paths — behind content-addressed ETags, a bounded
response cache, and a pre-fork worker pool. See DESIGN.md ("Query
service") for the architecture.
"""

from .cache import ResponseCache
from .prefork import PreforkServer, can_prefork, reuse_port_available
from .router import ROUTES, RouteMatch, Router
from .server import QueryHTTPServer
from .views import QUERY_SCHEMA_VERSION, QueryService

__all__ = [
    "QUERY_SCHEMA_VERSION",
    "ROUTES",
    "PreforkServer",
    "QueryHTTPServer",
    "QueryService",
    "ResponseCache",
    "RouteMatch",
    "Router",
    "can_prefork",
    "reuse_port_available",
]
