"""URL routing for the query API.

One flat, ordered table of compiled patterns; the route *name* doubles
as the (bounded-cardinality) ``route`` metric label, so adding a route
here automatically adds its metrics series. Path parameters come back
as a plain dict of strings — validation (does the IXP exist? is the
table number served?) belongs to :mod:`repro.query.views`, which can
answer with a proper JSON 404; the router only answers "which handler".
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: route label used for paths no pattern matches.
UNKNOWN = "unknown"

#: the API surface: (name, pattern). ``/v1/ixps/{ixp}/{family}/...``
#: accepts the family both bare (``6``) and dressed (``v6``) — the
#: store directories and the LG URL layout spell it ``v6``, the paper
#: spells it ``IPv6``, and clients will guess both.
ROUTES: Tuple[Tuple[str, "re.Pattern[str]"], ...] = (
    ("healthz", re.compile(r"^/healthz$")),
    ("metrics", re.compile(r"^/metrics$")),
    ("ixps", re.compile(r"^/v1/ixps$")),
    ("aggregate", re.compile(
        r"^/v1/ixps/(?P<ixp>[A-Za-z0-9][A-Za-z0-9._-]*)"
        r"/v?(?P<family>\d+)/aggregate$")),
    ("keys", re.compile(r"^/v1/keys$")),
    ("tables", re.compile(r"^/v1/tables$")),
    ("table", re.compile(r"^/v1/tables/(?P<table>\d+)$")),
    ("figures", re.compile(r"^/v1/figures$")),
    ("figure", re.compile(
        r"^/v1/figures/(?P<fig>[A-Za-z0-9][A-Za-z0-9_]*)$")),
    ("export", re.compile(r"^/v1/export$")),
)


@dataclass(frozen=True)
class RouteMatch:
    """One resolved request path."""

    name: str
    params: Dict[str, str]


class Router:
    """Match request paths against the route table."""

    def __init__(self,
                 routes: Tuple[Tuple[str, "re.Pattern[str]"], ...] = ROUTES,
                 ) -> None:
        self.routes = routes

    def match(self, path: str) -> Optional[RouteMatch]:
        for name, pattern in self.routes:
            found = pattern.match(path)
            if found is not None:
                return RouteMatch(name=name, params={
                    key: value for key, value in found.groupdict().items()
                    if value is not None})
        return None
