"""Per-member tagging behaviour models.

A :class:`MemberBehavior` describes how one RS member tags the routes it
announces: which action communities it applies (its "export policy"),
which large/extended mirrors it sets, which of its own internal
(unknown-to-the-IXP) communities leak into announcements, and whether it
requests blackholing.

The builder calibrates the population of behaviours against the paper's
per-IXP numbers (profiles' :class:`~repro.ixp.profiles.CalibrationTargets`
and :class:`~repro.ixp.profiles.CategoryUsage`):

* which members use action communities at all (Fig. 4a),
* which categories each uses (Table 2),
* how many instances each category contributes (§5.3),
* how often actions target ASes absent from the RS (§5.5), and
* how many unknown/non-standard instances appear (Figs. 1–2).

Members' tag sets are mostly *static across their routes* — an AS's
export policy applies to its whole table — which is exactly what
produces the route-share/community-share diagonal of Fig. 4c.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..bgp.communities import (
    ExtendedCommunity,
    LargeCommunity,
    StandardCommunity,
    standard,
)
from ..ixp.profiles import IxpProfile
from ..ixp.schemes import spec_for
from ..ixp.schemes.common import BLACKHOLE_COMMUNITY, SchemeSpec
from ..ixp.taxonomy import ActionCategory
from . import registry
from .topology import Population
from ..utils import stable_rng

#: leaked upstream communities seen in the wild (informational tags of
#: big transit networks); all unknown to every IXP dictionary.
LEAKED_COMMUNITY_POOL: Tuple[StandardCommunity, ...] = tuple(
    standard(asn, value)
    for asn in (3356, 1299, 174, 2914, 3257, 6453, 3491, 701)
    for value in (100, 123, 500, 666 + 1, 2001, 9003))


@dataclass
class MemberBehavior:
    """How one member tags the routes it announces."""

    asn: int
    uses_actions: bool = False
    categories: FrozenSet[ActionCategory] = frozenset()
    #: standard action communities applied to (almost) every route.
    route_tags: Tuple[StandardCommunity, ...] = ()
    #: RFC 8092 / RFC 4360 mirrors of some of the standard tags.
    large_tags: Tuple[LargeCommunity, ...] = ()
    extended_tags: Tuple[ExtendedCommunity, ...] = ()
    #: member-internal communities that leak to the RS (unknown).
    unknown_pool: Tuple[StandardCommunity, ...] = ()
    #: mean unknown communities per route.
    unknown_per_route: float = 0.0
    #: fraction of this member's routes that carry the action tags.
    coverage: float = 1.0
    #: number of blackhole host-routes this member announces.
    blackhole_count: int = 0

    @property
    def action_tag_count(self) -> int:
        return len(self.route_tags) + len(self.large_tags) + len(
            self.extended_tags)


def _category_probabilities(profile: IxpProfile,
                            family: int) -> Dict[ActionCategory, float]:
    usage = profile.category_usage
    if family == 4:
        return {
            ActionCategory.DO_NOT_ANNOUNCE_TO: usage.dna_users_v4,
            ActionCategory.ANNOUNCE_ONLY_TO: usage.ao_users_v4,
            ActionCategory.PREPEND_TO: usage.prepend_users_v4,
            ActionCategory.BLACKHOLING: usage.blackhole_users_v4,
        }
    return {
        ActionCategory.DO_NOT_ANNOUNCE_TO: usage.dna_users_v6,
        ActionCategory.ANNOUNCE_ONLY_TO: usage.ao_users_v6,
        ActionCategory.PREPEND_TO: usage.prepend_users_v6,
        ActionCategory.BLACKHOLING: usage.blackhole_users_v6,
    }


class TargetCatalog:
    """Weighted pools of action-community targets for one IXP family.

    Split into the *avoid* catalog (networks operators de-peer from over
    the RS — content providers first, §5.4) and the *announce* catalog
    (networks operators whitelist). Each entry knows whether the target
    is at the RS, which decides effectiveness (§5.5).
    """

    def __init__(self, population: Population, family: int,
                 rng: random.Random) -> None:
        at_rs = set(population.rs_member_asns(family))
        self.at_rs = at_rs
        avoid: List[Tuple[int, float, bool]] = []
        for known in (registry.CONTENT_PROVIDERS + registry.REGIONAL_ISPS
                      + (registry.HURRICANE_ELECTRIC,)):
            present = known.asn in at_rs
            avoid.append((known.asn, known.target_weight, present))
        # A second tier of avoid-targets: RS members (effective draws)
        # and synthetic absent networks (ineffective draws). Every RS
        # member is a possible target — big announcers with higher
        # weight — so the effective pool does not saturate even in
        # small scaled-down populations.
        ranked_members = sorted(
            (m for m in population.rs_members(family)),
            key=lambda m: -m.prefix_count(family))
        big_members = ranked_members[:60]
        named = {a for a, _, _ in avoid}
        for rank, member in enumerate(ranked_members):
            if member.asn in named:
                continue
            weight = 0.8 if rank < 60 else 0.25
            avoid.append((member.asn, weight, True))
        for index in range(120):
            absent_asn = 56000 + index * 13
            if absent_asn not in at_rs:
                avoid.append((absent_asn, 0.35, False))
        self._avoid = avoid
        self._avoid_effective = [t for t in avoid if t[2]]
        self._avoid_ineffective = [t for t in avoid if not t[2]]

        announce: List[Tuple[int, float, bool]] = []
        announce_named = {n.asn for n in registry.ANNOUNCE_TARGETS}
        for known in registry.ANNOUNCE_TARGETS:
            announce.append((known.asn, known.target_weight,
                             known.asn in at_rs))
        for rank, member in enumerate(ranked_members):
            if member.asn in announce_named:
                continue
            announce.append((member.asn, 0.5 if rank < 15 else 0.2, True))
        self._announce = announce

    def avoid_pool(self) -> List[Tuple[int, float, bool]]:
        """The full avoid catalog (asn, weight, at_rs) — its size bounds
        how many distinct avoid-targets one member can name."""
        return list(self._avoid)

    def sample_avoid(self, rng: random.Random, count: int,
                     ineffective_bias: float) -> List[int]:
        """Sample *count* distinct avoid-targets.

        ``ineffective_bias`` is the probability of drawing from the
        not-at-RS pool — the §5.5 calibration knob.
        """
        chosen: Set[int] = set()
        guard = 0
        while len(chosen) < count and guard < count * 20:
            guard += 1
            pool = (self._avoid_ineffective
                    if rng.random() < ineffective_bias
                    else self._avoid_effective)
            if not pool:
                pool = self._avoid
            asns, weights, _ = zip(*pool)
            chosen.add(rng.choices(asns, weights=weights, k=1)[0])
        return sorted(chosen)

    def sample_announce(self, rng: random.Random, count: int) -> List[int]:
        chosen: Set[int] = set()
        guard = 0
        while len(chosen) < count and guard < count * 20:
            guard += 1
            asns, weights, _ = zip(*self._announce)
            chosen.add(rng.choices(asns, weights=weights, k=1)[0])
        return sorted(chosen)


def _solve_beta(n_users: int, top_count: int, share_target: float) -> float:
    """Solve for the rank-weight exponent β such that the top
    *top_count* of *n_users* rank weights ``j**-β`` hold *share_target*
    of the total — the Fig. 4b concentration, made scale-invariant."""
    if n_users <= 1 or top_count >= n_users:
        return 0.5

    def share(beta: float) -> float:
        weights = [1.0 / ((j + 1) ** beta) for j in range(n_users)]
        total = sum(weights)
        return sum(weights[:top_count]) / total

    low, high = 0.01, 4.0
    for _ in range(60):
        mid = (low + high) / 2.0
        if share(mid) < share_target:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def _tiered_instance_weights(n_users: int, member_count: int,
                             top1_share: float,
                             top10_share: float = 0.96) -> List[float]:
    """Per-rank instance weights reproducing Fig. 4b's two checkpoints.

    The paper reports the cumulative curve at two points: the top 1% of
    RS members hold ``top1_share`` of the instances, and the bottom 90%
    hold under ~5%. A three-tier allocation (top 1%, 1–10%, tail) with
    gentle within-tier decay hits both by construction at any scale.
    """
    if n_users <= 0:
        return []
    k1 = max(1, int(member_count * 0.01))
    k10 = max(k1 + 1, int(member_count * 0.10))
    k1 = min(k1, n_users)
    k10 = min(k10, n_users)
    top1 = min(top1_share, 1.0)
    mid = max(0.0, min(1.0, top10_share) - top1)
    tail = max(0.0, 1.0 - top1 - mid)
    tiers = [(0, k1, top1), (k1, k10, mid), (k10, n_users, tail)]
    weights = [0.0] * n_users
    leftover = 0.0
    for start, end, mass in tiers:
        size = end - start
        if size <= 0:
            leftover += mass
            continue
        raw = [1.0 / ((j + 1) ** 0.8) for j in range(size)]
        raw_total = sum(raw)
        for offset, value in enumerate(raw):
            weights[start + offset] = (mass + leftover) * value / raw_total
        leftover = 0.0
    total = sum(weights) or 1.0
    return [w / total for w in weights]


def build_behaviors(profile: IxpProfile, population: Population,
                    family: int, seed: int = 7) -> Dict[int, MemberBehavior]:
    """Build calibrated behaviours for every RS member of *population*."""
    rng = stable_rng(seed, profile.key, family)
    spec = spec_for(profile)
    rs16 = min(spec.rs_asn, 0xFFFF)
    calibration = profile.calibration
    catalog = TargetCatalog(population, family, rng)

    members = population.rs_members(family)
    route_counts = _route_counts(population, family)
    total_routes = sum(route_counts.get(m.asn, 0) for m in members)

    p_use = (calibration.members_using_actions if family == 4
             else calibration.members_using_actions_v6)
    category_probs = _category_probabilities(profile, family)

    # ---- quota selection of action users (Fig. 4a): defensive taggers
    # always tag; the rest are a deterministic-size random sample so the
    # realised fraction matches the paper even for small populations.
    defensive_asns = {m.asn for m in members
                      if (known := registry.KNOWN_BY_ASN.get(m.asn))
                      and known.defensive_tagger}
    eligible = [m for m in members if route_counts.get(m.asn, 0) > 0]
    target_users = round(p_use * len(members))
    # Defensive transit networks tag by default, but in small
    # populations they cannot be allowed to blow past the Fig. 4a quota
    # — keep at most ~3/4 of the user budget for them, Hurricane
    # Electric first (it must remain the top culprit, §5.5).
    defensive_ordered = sorted(
        (m.asn for m in eligible if m.asn in defensive_asns),
        key=lambda asn: (0 if asn == registry.HURRICANE_ELECTRIC.asn else 1,
                         -route_counts.get(asn, 0), asn))
    defensive_cap = max(1, min(len(defensive_ordered),
                               round(target_users * 0.75)))
    defensive_users = set(defensive_ordered[:defensive_cap])
    others = [m for m in eligible if m.asn not in defensive_users]
    extra_needed = max(0, min(len(others),
                              target_users - len(defensive_users)))
    sampled = set(rng.sample(range(len(others)), extra_needed))
    user_asns = (defensive_users
                 | {m.asn for i, m in enumerate(others) if i in sampled})

    # ---- quota per-category assignment (Table 2): every user gets
    # do-not-announce eligibility by default; the rarer categories are
    # deterministic-size random subsets of the users.
    users_ordered = [m for m in members if m.asn in user_asns]
    n_users = len(users_ordered)
    conditional = {category: min(1.0, probability / max(p_use, 1e-9))
                   for category, probability in category_probs.items()}
    category_members: Dict[ActionCategory, Set[int]] = {}
    for category, probability in conditional.items():
        if category is ActionCategory.BLACKHOLING and not (
                calibration.supports_blackholing):
            category_members[category] = set()
            continue
        quota = min(n_users, round(probability * n_users))
        if category is ActionCategory.DO_NOT_ANNOUNCE_TO:
            # defensive taggers are always do-not-announce users.
            chosen = set(defensive_users)
            pool = [m.asn for m in users_ordered if m.asn not in chosen]
            chosen |= set(rng.sample(pool, max(0, min(len(pool),
                                                      quota - len(chosen)))))
        elif category is ActionCategory.ANNOUNCE_ONLY_TO:
            # Announce-only users skew towards the big announcers (the
            # larger the AS, the more complex its routing policy, §5.2),
            # and the very largest action users always hold both
            # propagation categories — that keeps the combined Fig. 4b
            # head aligned across categories. Weighted sampling without
            # replacement (Efraimidis-Spirakis).
            by_routes = sorted(
                users_ordered,
                key=lambda m: -route_counts.get(m.asn, 0))
            head_count = max(1, int(len(members) * 0.01))
            chosen = {m.asn for m in by_routes[:min(head_count, quota)]}
            remaining = [m for m in users_ordered if m.asn not in chosen]
            keyed = sorted(
                remaining,
                key=lambda m: rng.random() ** (
                    1.0 / (route_counts.get(m.asn, 0) + 1.0)))
            for member in keyed:
                if len(chosen) >= quota:
                    break
                chosen.add(member.asn)
        else:
            chosen = set(rng.sample([m.asn for m in users_ordered],
                                    quota))
        category_members[category] = chosen
    # Every user must use at least one category; the fallback is
    # do-not-announce-to. To keep the Table 2 quota honest, users that
    # hold another category are trimmed back out of the
    # do-not-announce set, most-categorised first.
    dna_quota = len(category_members[ActionCategory.DO_NOT_ANNOUNCE_TO])
    assigned = set().union(*category_members.values())
    for member in users_ordered:
        if member.asn not in assigned:
            category_members[ActionCategory.DO_NOT_ANNOUNCE_TO].add(
                member.asn)
    dna_set = category_members[ActionCategory.DO_NOT_ANNOUNCE_TO]
    surplus = len(dna_set) - dna_quota
    if surplus > 0:
        other_sets = [chosen for category, chosen in
                      category_members.items()
                      if category is not ActionCategory.DO_NOT_ANNOUNCE_TO]
        removable = [asn for asn in sorted(dna_set)
                     if asn not in defensive_users
                     and any(asn in chosen for chosen in other_sets)]
        for asn in removable[:surplus]:
            dna_set.discard(asn)

    # The §5.5 knob: probability that an avoid-target draw comes from the
    # not-at-RS pool.
    ineffective_share = (calibration.ineffective_share if family == 4
                         else calibration.ineffective_share_v6)
    # Announce-only-to targets are whitelisted RS members (effective by
    # construction), so essentially all ineffective instances come from
    # the do-not-announce family — its draw bias must carry the whole
    # §5.5 share.
    usage_ref = profile.category_usage
    ineffective_bias = min(
        0.95,
        ineffective_share / max(usage_ref.dna_occ, 0.1)
        * calibration.ineffective_correction)

    # Non-standard mirrors: make (1 - standard_share) of the IXP-defined
    # instances non-standard, split ~85/15 between large and extended.
    nonstd_ratio = (1.0 - calibration.standard_share) / max(
        calibration.standard_share, 1e-9)

    # Unknown-instance budget (Fig. 1): unknown / defined ratio.
    defined_share = (calibration.ixp_defined_share if family == 4
                     else calibration.ixp_defined_share_v6)
    unknown_ratio = (1.0 - defined_share) / max(defined_share, 1e-9)

    info_per_route = (calibration.info_tags_v4 if family == 4
                      else calibration.info_tags_v6)
    actions_per_route = (calibration.actions_per_route_v4 if family == 4
                         else calibration.actions_per_route_v6)

    # ---- coverage (routes with >=1 action community, §5.2).
    routes_with_actions = (calibration.routes_with_actions if family == 4
                           else calibration.routes_with_actions_v6)
    tagger_routes = sum(route_counts.get(asn, 0) for asn in user_asns)
    coverage_global = min(1.0, routes_with_actions * total_routes
                          / max(1, tagger_routes))

    # ---- per-user instance budgets, per category. The total action
    # budget splits across categories by the §5.3 occurrence shares;
    # within a category, users are ranked by table size and weighted by
    # the Fig. 4b tiered curve (top 1% hold the paper's share, the
    # bottom 90% of members under ~5%).
    budget = actions_per_route * total_routes
    usage = profile.category_usage
    occurrence_shares = {
        ActionCategory.DO_NOT_ANNOUNCE_TO: usage.dna_occ,
        ActionCategory.ANNOUNCE_ONLY_TO: usage.ao_occ,
        ActionCategory.PREPEND_TO: usage.prepend_occ,
        ActionCategory.BLACKHOLING: usage.blackhole_occ,
    }

    def ranked(category: ActionCategory) -> List[int]:
        return sorted(
            category_members[category],
            key=lambda asn: (-route_counts.get(asn, 0),
                             0 if asn in defensive_users else 1, asn))

    size_plans: Dict[ActionCategory, Dict[int, float]] = {}
    for category in (ActionCategory.DO_NOT_ANNOUNCE_TO,
                     ActionCategory.ANNOUNCE_ONLY_TO):
        users = ranked(category)
        weights = _tiered_instance_weights(
            len(users), len(members), calibration.top1pct_share)
        category_budget = budget * occurrence_shares[category]
        plan: Dict[int, float] = {}
        for rank, asn in enumerate(users):
            wanted = category_budget * weights[rank]
            plan[asn] = wanted / max(
                1.0, route_counts.get(asn, 0) * coverage_global)
        size_plans[category] = plan

    catalog_capacity = len(catalog.avoid_pool())
    behaviors: Dict[int, MemberBehavior] = {}

    for member in members:
        asn = member.asn
        if asn not in user_asns:
            behavior = MemberBehavior(asn=asn)
            behavior.unknown_pool = _unknown_pool(asn, rng)
            behavior.unknown_per_route = unknown_ratio * info_per_route
            behaviors[asn] = behavior
            continue

        routes = route_counts.get(asn, 0)
        tags: List[StandardCommunity] = []
        categories: Set[ActionCategory] = {
            category for category, chosen in category_members.items()
            if asn in chosen}

        if ActionCategory.DO_NOT_ANNOUNCE_TO in categories:
            size = round(size_plans[ActionCategory.DO_NOT_ANNOUNCE_TO]
                         .get(asn, 1.0))
            size = max(1, min(size, catalog_capacity))
            p_dna_all = 0.10 if spec.supports_blackholing else 0.04
            if rng.random() < p_dna_all:
                tags.append(spec.dna_all)
                size = max(1, size - 1)
            for target in catalog.sample_avoid(rng, size,
                                               ineffective_bias):
                tags.append(standard(0, target))
        if ActionCategory.ANNOUNCE_ONLY_TO in categories:
            size = round(size_plans[ActionCategory.ANNOUNCE_ONLY_TO]
                         .get(asn, 1.0))
            size = max(1, min(size, catalog_capacity))
            # At DE-CIX/LINX the single most common announce-only-to is
            # the redistribute-to-all form (§5.4); it rides alongside
            # the specific whitelist.
            p_ao_all = 0.75 if profile.key != "ixbr-sp" else 0.25
            if rng.random() < p_ao_all:
                tags.append(spec.announce_all)
                size = max(0, size - 1)
            for target in catalog.sample_announce(rng, size):
                tags.append(standard(rs16, target))
        blackhole_count = 0
        if (ActionCategory.PREPEND_TO in categories
                and spec.prepend_bases):
            if spec.supports_targeted_prepend:
                for target in catalog.sample_avoid(
                        rng, rng.randint(1, 3), ineffective_bias * 0.6):
                    base_field, _count = rng.choice(spec.prepend_bases)
                    tags.append(standard(base_field, target))
            else:
                base_field, _count = rng.choice(spec.prepend_bases)
                tags.append(standard(base_field, rs16))
        if ActionCategory.BLACKHOLING in categories:
            blackhole_count = rng.randint(1, 3)

        # De-duplicate while preserving insertion order.
        unique_tags = tuple(dict.fromkeys(tags))

        large_tags: List[LargeCommunity] = []
        extended_tags: List[ExtendedCommunity] = []
        # Mirrors ride on tagged routes only, while informational tags
        # cover every route — hence the coverage correction.
        expected_nonstd = calibration.nonstd_correction * nonstd_ratio * (
            len(unique_tags) + info_per_route / max(coverage_global, 0.05))
        for tag in unique_tags:
            if len(large_tags) + len(extended_tags) >= expected_nonstd:
                break
            target_value = tag.value
            if tag.asn == 0 and tag != spec.dna_all:
                if rng.random() < 0.85:
                    large_tags.append(LargeCommunity(
                        spec.rs_asn, 0, target_value))
                else:
                    extended_tags.append(ExtendedCommunity(
                        0x00, 0x02, rs16, target_value))
            elif tag.asn == rs16 and tag != spec.announce_all:
                large_tags.append(LargeCommunity(
                    spec.rs_asn, 1, target_value))

        behavior = MemberBehavior(asn=asn)
        behavior.uses_actions = True
        behavior.categories = frozenset(categories)
        behavior.route_tags = unique_tags
        behavior.large_tags = tuple(large_tags)
        behavior.extended_tags = tuple(extended_tags)
        behavior.blackhole_count = blackhole_count
        behavior.coverage = min(1.0, max(
            0.05, coverage_global * rng.uniform(0.95, 1.05)))
        behavior.unknown_per_route = unknown_ratio * (
            behavior.coverage * (len(unique_tags) + len(large_tags)
                                 + len(extended_tags))
            + info_per_route)
        behavior.unknown_pool = _unknown_pool(
            asn, rng, size=int(behavior.unknown_per_route * 3) + 6)
        behaviors[asn] = behavior
    return behaviors


def _unknown_pool(asn: int, rng: random.Random,
                  size: int = 6) -> Tuple[StandardCommunity, ...]:
    """A member's internal communities plus a couple of leaked upstream
    tags — everything the IXP dictionary cannot resolve (Fig. 1).

    *size* scales with the member's unknown-per-route rate: sampling is
    without replacement per route, so the pool must comfortably exceed
    the per-route draw count.
    """
    own_count = max(4, size - 2)
    own = tuple(standard(min(asn, 0xFFFF), value)
                for value in rng.sample(range(100, 900),
                                        min(own_count, 500)))
    leaked = tuple(rng.sample(LEAKED_COMMUNITY_POOL,
                              min(2 + size // 8,
                                  len(LEAKED_COMMUNITY_POOL))))
    return own + leaked


def _route_counts(population: Population, family: int) -> Dict[int, int]:
    """Announced-route counts per member (own + customer re-announced)."""
    counts: Dict[int, int] = {}
    for asn, assets in population.assets.items():
        counts[asn] = len(assets.own_prefixes(family))
    for customer in population.customer_prefixes:
        if customer.family != family:
            continue
        for transit_asn in customer.transit_asns:
            counts[transit_asn] = counts.get(transit_asn, 0) + 1
    return counts
