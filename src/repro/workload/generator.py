"""Twelve-week snapshot series generator.

Drives the whole substrate end-to-end for one IXP: the synthetic
population announces its routes (with per-member tagging behaviour) into
a :class:`~repro.routeserver.RouteServer`, which filters, stamps
informational communities, and stores; the generator then captures the
accepted Adj-RIB-In as a :class:`~repro.collector.snapshot.Snapshot` —
the same artefact the paper scrapes from the Looking Glasses.

Temporal structure follows §4 and Appendix A:

* 12 weeks of captures starting 19 Jul 2021 (the paper's window);
* small day-to-day churn (<4% within a week, Table 3);
* slow growth over the window (<~15% over 12 weeks, Table 4);
* occasional *collection failures* that produce the ≥30% "valleys" the
  paper's sanitation removes (13.5% of snapshots).
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..bgp.aspath import AsPath
from ..bgp.communities import StandardCommunity
from ..bgp.route import Route
from ..collector.snapshot import Snapshot
from ..ixp.dictionary import CommunityDictionary
from ..ixp.member import Member
from ..ixp.profiles import IxpProfile
from ..ixp.schemes import dictionary_for, spec_for
from ..ixp.schemes.common import BLACKHOLE_COMMUNITY
from ..routeserver.config import RouteServerConfig
from ..routeserver.server import RouteServer
from .behavior import MemberBehavior, build_behaviors
from .topology import Population, build_population
from ..utils import stable_fraction, stable_rng

#: the paper's collection window.
STUDY_START = _dt.date(2021, 7, 19)
STUDY_WEEKS = 12
STUDY_DAYS = STUDY_WEEKS * 7
#: the snapshot the paper's cross-sectional analyses use (4 Oct 2021) is
#: the last weekly capture: day 77 of the window.
FINAL_WEEKLY_DAY = (STUDY_WEEKS - 1) * 7
#: day offset of the paper's 28 June 2022 re-collection (§5.3).
POST_STUDY_DAY = (_dt.date(2022, 6, 28) - STUDY_START).days
#: blackhole route counts the re-collection found (paper §5.3).
POST_STUDY_BLACKHOLE_ROUTES = {"amsix": 1367, "linx": 27}


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of the synthetic study."""

    scale: float = 0.05
    seed: int = 20211004
    #: fraction of *daily* snapshots hit by collection failures (§3
    #: sanitation removed 13.5% of them).
    failure_rate: float = 0.135
    #: member session flap probability per day.
    member_flap_rate: float = 0.006
    #: baseline prefix-absence probability that decays over the window
    #: (new announcements appear over time → slow growth, Table 4).
    drift_absence: float = 0.06
    #: amplitude of the day-to-day absence jitter (keeps within-week
    #: variation under the ~4% of Table 3).
    daily_jitter: float = 0.012
    #: simulate the paper's 28 June 2022 re-collection (§5.3): AMS-IX
    #: and LINX start accepting RFC 7999 blackhole routes (1367 and 27
    #: routes respectively at paper scale).
    post_study: bool = False


def weekly_days() -> List[int]:
    """Day offsets of the Monday weekly snapshots (§4)."""
    return [week * 7 for week in range(STUDY_WEEKS)]


def final_week_days() -> List[int]:
    """Day offsets of the last seven daily snapshots (Table 3)."""
    return list(range(STUDY_DAYS - 7, STUDY_DAYS))


def day_to_date(day: int) -> str:
    return (STUDY_START + _dt.timedelta(days=day)).isoformat()


class SnapshotGenerator:
    """Generates route-server snapshots for one IXP profile."""

    def __init__(self, profile: IxpProfile,
                 config: Optional[ScenarioConfig] = None) -> None:
        self.profile = profile
        self.config = config or ScenarioConfig()
        self.population: Population = build_population(
            profile, scale=self.config.scale, seed=self.config.seed)
        self.dictionary: CommunityDictionary = dictionary_for(profile)
        if (self.config.post_study
                and profile.key in POST_STUDY_BLACKHOLE_ROUTES):
            self._enable_post_study_blackholing_entry()
        self._spec = spec_for(profile)
        self._behaviors: Dict[int, Dict[int, MemberBehavior]] = {}
        self._join_days: Dict[int, int] = self._assign_join_days()

    def _enable_post_study_blackholing_entry(self) -> None:
        """Add the RFC 7999 entry to the dictionary — "which may
        indicate the introduction of support to this community"
        (§5.3)."""
        from ..ixp.dictionary import CommunityEntry, Semantics
        from ..ixp.schemes.common import BLACKHOLE_COMMUNITY
        from ..ixp.taxonomy import CommunityRole, Target
        from ..ixp.taxonomy import ActionCategory as _Category
        self.dictionary.add_entry(CommunityEntry(
            community=BLACKHOLE_COMMUNITY,
            semantics=Semantics(
                role=CommunityRole.ACTION,
                category=_Category.BLACKHOLING,
                target=Target.none(),
                description="blackhole traffic for this prefix "
                            "(RFC 7999, introduced post-study)")))

    # -- population dynamics -------------------------------------------

    def _assign_join_days(self) -> Dict[int, int]:
        """A small share of members joins during the window, producing
        the slow growth in Tables 3/4.

        Only small announcers join late: a large member appearing
        mid-window would produce a step change far beyond the paper's
        observed 12-week variation (max 18.03%, Table 4).
        """
        rng = stable_rng(self.config.seed, self.profile.key, "joins")
        sizes = sorted(
            member.prefix_count_v4 + member.prefix_count_v6
            for member in self.population.members)
        median_size = sizes[len(sizes) // 2] if sizes else 0
        join_days: Dict[int, int] = {}
        for member in self.population.members:
            size = member.prefix_count_v4 + member.prefix_count_v6
            small = size <= max(1, median_size)
            if small and rng.random() < 0.08:
                join_days[member.asn] = rng.randint(1, STUDY_DAYS - 8)
            else:
                join_days[member.asn] = 0
        return join_days

    def behaviors(self, family: int) -> Dict[int, MemberBehavior]:
        if family not in self._behaviors:
            behaviors = build_behaviors(
                self.profile, self.population, family,
                seed=self.config.seed)
            if (self.config.post_study
                    and self.profile.key in POST_STUDY_BLACKHOLE_ROUTES
                    and family == 4):
                self._inject_post_study_blackholing(behaviors)
            self._behaviors[family] = behaviors
        return self._behaviors[family]

    def _inject_post_study_blackholing(
            self, behaviors: Dict[int, MemberBehavior]) -> None:
        """§5.3's June 2022 re-collection: a handful of members start
        using RFC 7999 blackholing at AMS-IX (1367 routes) and LINX
        (27 routes); counts scale with the population."""
        paper_routes = POST_STUDY_BLACKHOLE_ROUTES[self.profile.key]
        wanted = max(1, round(paper_routes * self.config.scale))
        rng = stable_rng(self.config.seed, self.profile.key,
                         "post-study-bh")
        candidates = [b for b in behaviors.values()
                      if self.population.assets[b.asn].own_prefixes_v4]
        rng.shuffle(candidates)
        per_member_cap = max(1, wanted // 3)
        remaining = wanted
        for behavior in candidates:
            if remaining <= 0:
                break
            count = min(per_member_cap, remaining)
            behavior.blackhole_count += count
            remaining -= count

    def _info_rate(self, family: int) -> float:
        calibration = self.profile.calibration
        return (calibration.info_tags_v4 if family == 4
                else calibration.info_tags_v6)

    def route_server(self, family: int) -> RouteServer:
        """A freshly configured (empty) route server for this IXP."""
        info_entries = [
            entry.community
            for entry in self.dictionary.informational_entries()
            if isinstance(entry.community, StandardCommunity)]
        blackholing = self.profile.calibration.supports_blackholing or (
            self.config.post_study
            and self.profile.key in POST_STUDY_BLACKHOLE_ROUTES)
        config = RouteServerConfig(
            rs_asn=self.profile.rs_asn,
            family=family,
            dictionary=self.dictionary,
            blackholing_enabled=blackholing,
            informational_tags=tuple(
                info_entries[:max(1, -(-int(self._info_rate(family) + 1)))]),
            informational_per_route=self._info_rate(family),
        )
        return RouteServer(config)

    # -- member-level announcements ---------------------------------------

    def members_present(self, family: int, day: int) -> List[Member]:
        """RS members with an established session on *day*."""
        rng = stable_rng(self.config.seed, self.profile.key, family, day,
                         "flap")
        present: List[Member] = []
        for member in self.population.rs_members(family):
            if self._join_days[member.asn] > day:
                continue
            if rng.random() < self.config.member_flap_rate:
                continue
            present.append(member)
        return present

    def _prefix_present(self, prefix: str, day: int) -> bool:
        """Deterministic per-prefix presence with decaying absence: the
        same prefix flaps consistently across days, and overall counts
        grow slowly over the window."""
        base_absence = self.config.drift_absence * (
            1.0 - day / max(1, STUDY_DAYS))
        daily = stable_fraction(prefix, self.config.seed, day)
        threshold = base_absence + (
            self.config.daily_jitter
            * stable_fraction(prefix, self.config.seed, day, "jitter"))
        return daily > threshold

    def announcements_for(self, member: Member, family: int,
                          day: int) -> List[Route]:
        """Everything *member* announces to the RS on *day*."""
        behavior = self.behaviors(family).get(member.asn)
        assets = self.population.assets[member.asn]
        next_hop = member.peering_ip(family) or (
            "192.0.2.1" if family == 4 else "2001:db8::1")
        rng = stable_rng(self.config.seed, self.profile.key, family,
                         member.asn, "routes")
        routes: List[Route] = []

        def communities_for(prefix: str) -> Tuple[
                frozenset, frozenset, frozenset]:
            if behavior is None:
                return frozenset(), frozenset(), frozenset()
            covered = (behavior.uses_actions
                       and stable_fraction(prefix, "cov")
                       < behavior.coverage)
            std = set(behavior.route_tags) if covered else set()
            large = set(behavior.large_tags) if covered else set()
            extended = set(behavior.extended_tags) if covered else set()
            unknown_count = int(behavior.unknown_per_route)
            remainder = behavior.unknown_per_route - unknown_count
            if stable_fraction(prefix, "unk") < remainder:
                unknown_count += 1
            if unknown_count and behavior.unknown_pool:
                picker = stable_rng(prefix, "unkpick")
                std.update(picker.sample(
                    behavior.unknown_pool,
                    min(unknown_count, len(behavior.unknown_pool))))
            return frozenset(std), frozenset(large), frozenset(extended)

        own_prepend = rng.random() < 0.10  # origin prepending habit
        for prefix in assets.own_prefixes(family):
            if not self._prefix_present(prefix, day):
                continue
            path_asns = [member.asn, member.asn] if own_prepend else [
                member.asn]
            std, large, extended = communities_for(prefix)
            routes.append(Route(
                prefix=prefix,
                next_hop=next_hop,
                as_path=AsPath.from_asns(path_asns),
                peer_asn=member.asn,
                communities=std,
                large_communities=large,
                extended_communities=extended,
            ))

        for customer in self.population.customer_prefixes:
            if customer.family != family:
                continue
            if member.asn not in customer.transit_asns:
                continue
            if not self._prefix_present(customer.prefix, day):
                continue
            std, large, extended = communities_for(customer.prefix)
            routes.append(Route(
                prefix=customer.prefix,
                next_hop=next_hop,
                as_path=AsPath.from_asns([member.asn, customer.origin_asn]),
                peer_asn=member.asn,
                communities=std,
                large_communities=large,
                extended_communities=extended,
            ))

        if behavior is not None and behavior.blackhole_count:
            routes.extend(self._blackhole_routes(
                member, assets, behavior, family, next_hop))
        return routes

    def _blackhole_routes(self, member: Member, assets, behavior,
                          family: int, next_hop: str) -> List[Route]:
        """Host routes carrying the RFC 7999 community (DDoS defence)."""
        own = assets.own_prefixes(family)
        if not own:
            return []
        import ipaddress
        routes: List[Route] = []
        base = ipaddress.ip_network(own[0])
        host_len = 32 if family == 4 else 128
        for index in range(behavior.blackhole_count):
            address = base.network_address + 7 + index
            routes.append(Route(
                prefix=f"{address}/{host_len}",
                next_hop=next_hop,
                as_path=AsPath.from_asns([member.asn]),
                peer_asn=member.asn,
                communities=frozenset({BLACKHOLE_COMMUNITY}),
            ))
        return routes

    # -- snapshots ----------------------------------------------------------

    def populated_route_server(self, family: int,
                               day: int = FINAL_WEEKLY_DAY) -> RouteServer:
        """A route server loaded with one day's announcements."""
        server = self.route_server(family)
        for member in self.members_present(family, day):
            server.add_peer(member)
            for route in self.announcements_for(member, family, day):
                server.announce(route)
        return server

    def snapshot(self, family: int, day: int = FINAL_WEEKLY_DAY,
                 degraded: Optional[bool] = None) -> Snapshot:
        """Capture the snapshot for *day*.

        ``degraded`` forces (True) or suppresses (False) a collection
        failure; None draws from :attr:`ScenarioConfig.failure_rate`.
        """
        server = self.populated_route_server(family, day)
        members = [session.member for session in server.peers()]
        routes = server.accepted_routes()
        filtered = len(server.filtered_routes())
        snapshot = Snapshot(
            ixp=self.profile.key,
            family=family,
            captured_on=day_to_date(day),
            members=members,
            routes=routes,
            filtered_count=filtered,
            meta={"scale": self.config.scale, "seed": self.config.seed,
                  "day": day, "degraded": False},
        )
        rng = stable_rng(self.config.seed, self.profile.key, family, day,
                         "failure")
        if degraded is None:
            degraded = rng.random() < self.config.failure_rate
        if degraded:
            snapshot = degrade_snapshot(snapshot, rng)
        return snapshot

    def weekly_series(self, family: int,
                      degrade: bool = False) -> Iterator[Snapshot]:
        """The twelve Monday snapshots (§4)."""
        for day in weekly_days():
            yield self.snapshot(
                family, day, degraded=None if degrade else False)

    def final_week_series(self, family: int) -> Iterator[Snapshot]:
        """The last seven daily snapshots (Appendix A, Table 3)."""
        for day in final_week_days():
            yield self.snapshot(family, day, degraded=False)


def degrade_snapshot(snapshot: Snapshot,
                     rng: random.Random) -> Snapshot:
    """Simulate an LG collection failure: a ≥30% valley in members and
    routes — exactly the §3 signature the sanitation pass removes."""
    keep_fraction = rng.uniform(0.35, 0.65)
    keep_count = max(1, round(len(snapshot.members) * keep_fraction))
    members = sorted(rng.sample(snapshot.members, keep_count),
                     key=lambda m: m.asn)
    kept_asns = {m.asn for m in members}
    routes = [r for r in snapshot.routes if r.peer_asn in kept_asns]
    return Snapshot(
        ixp=snapshot.ixp,
        family=snapshot.family,
        captured_on=snapshot.captured_on,
        members=members,
        routes=routes,
        filtered_count=snapshot.filtered_count,
        meta={**snapshot.meta, "degraded": True},
    )
