"""Synthetic workload: populations, behaviours, snapshot series."""

from .behavior import MemberBehavior, TargetCatalog, build_behaviors
from .generator import (
    FINAL_WEEKLY_DAY,
    STUDY_DAYS,
    STUDY_START,
    STUDY_WEEKS,
    ScenarioConfig,
    SnapshotGenerator,
    day_to_date,
    degrade_snapshot,
    final_week_days,
    weekly_days,
)
from .registry import ALL_KNOWN, KNOWN_BY_ASN, KnownNetwork, network_name
from .topology import (
    CustomerPrefix,
    MemberAssets,
    Population,
    PrefixAllocator,
    build_population,
)

__all__ = [
    "SnapshotGenerator", "ScenarioConfig", "degrade_snapshot",
    "weekly_days", "final_week_days", "day_to_date",
    "STUDY_START", "STUDY_WEEKS", "STUDY_DAYS", "FINAL_WEEKLY_DAY",
    "Population", "MemberAssets", "CustomerPrefix", "PrefixAllocator",
    "build_population",
    "MemberBehavior", "TargetCatalog", "build_behaviors",
    "KnownNetwork", "ALL_KNOWN", "KNOWN_BY_ASN", "network_name",
]
