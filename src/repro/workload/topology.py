"""Synthetic IXP population builder.

Builds, for one IXP profile, a scaled member population with:

* the named networks from :mod:`repro.workload.registry` (HE, CPs, ...);
* synthetic filler members with a realistic role mix;
* RS-session flags per family calibrated to Table 1's members-at-RS
  fractions (on average 72.2% for IPv4 and 57.1% for IPv6, §3);
* Zipf-distributed per-member prefix counts (few huge announcers, many
  small ones — the prerequisite for Fig. 4b's concentration);
* concrete prefix assignments from non-bogon address space; and
* multihomed customer prefixes announced by several transit members,
  which is why Table 1 shows more routes than prefixes everywhere except
  AMS-IX.

Everything is driven by a seeded :class:`random.Random`, so populations
are fully reproducible.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ixp.member import Member, MemberRole
from ..ixp.profiles import IxpProfile
from . import registry
from ..utils import stable_rng


class PrefixAllocator:
    """Deterministic, collision-free prefix allocator.

    Hands out prefixes of varying length from a large non-bogon pool,
    each allocation consuming an aligned block so prefixes never overlap.
    """

    #: pools deliberately inside allocated-looking, non-bogon space.
    V4_BASE = int(ipaddress.IPv4Address("20.0.0.0"))
    V4_LIMIT = int(ipaddress.IPv4Address("100.0.0.0"))
    V6_BASE = int(ipaddress.IPv6Address("2600::"))
    V6_LIMIT = int(ipaddress.IPv6Address("2800::"))

    def __init__(self) -> None:
        self._cursor_v4 = self.V4_BASE
        self._cursor_v6 = self.V6_BASE

    def allocate(self, family: int, prefixlen: int) -> str:
        if family == 4:
            block = 1 << (32 - prefixlen)
            # round the cursor up to block alignment
            start = (self._cursor_v4 + block - 1) // block * block
            if start + block > self.V4_LIMIT:
                raise RuntimeError("IPv4 allocation pool exhausted")
            self._cursor_v4 = start + block
            return f"{ipaddress.IPv4Address(start)}/{prefixlen}"
        block = 1 << (128 - prefixlen)
        start = (self._cursor_v6 + block - 1) // block * block
        if start + block > self.V6_LIMIT:
            raise RuntimeError("IPv6 allocation pool exhausted")
        self._cursor_v6 = start + block
        return f"{ipaddress.IPv6Address(start)}/{prefixlen}"


@dataclass
class MemberAssets:
    """Per-member announcement inputs."""

    member: Member
    own_prefixes_v4: List[str] = field(default_factory=list)
    own_prefixes_v6: List[str] = field(default_factory=list)

    def own_prefixes(self, family: int) -> List[str]:
        return self.own_prefixes_v4 if family == 4 else self.own_prefixes_v6


@dataclass(frozen=True)
class CustomerPrefix:
    """A downstream (non-member) customer prefix announced to the RS by
    one or more transit members — AS path ``[transit, customer]``."""

    prefix: str
    origin_asn: int
    transit_asns: Tuple[int, ...]
    family: int


@dataclass
class Population:
    """A complete synthetic population for one IXP."""

    profile: IxpProfile
    scale: float
    seed: int
    assets: Dict[int, MemberAssets] = field(default_factory=dict)
    customer_prefixes: List[CustomerPrefix] = field(default_factory=list)

    @property
    def members(self) -> List[Member]:
        return [a.member for a in self.assets.values()]

    def member(self, asn: int) -> Member:
        return self.assets[asn].member

    def rs_members(self, family: int) -> List[Member]:
        return [m for m in self.members if m.at_rs(family)]

    def rs_member_asns(self, family: int) -> List[int]:
        return sorted(m.asn for m in self.rs_members(family))

    def announcing_members(self, family: int) -> List[Member]:
        """RS members that actually share routes (§3 captures peers with
        sessions "regardless whether the AS shares routes or not")."""
        return [m for m in self.rs_members(family)
                if self.assets[m.asn].own_prefixes(family)
                or any(m.asn in cp.transit_asns
                       for cp in self.customer_prefixes
                       if cp.family == family)]


def _zipf_counts(rng: random.Random, n_members: int, total: int,
                 exponent: float = 1.05) -> List[int]:
    """Distribute *total* prefixes over *n_members* with a Zipf shape.

    Rank 1 gets the lion's share; the long tail gets one or two. Counts
    are exact: they sum to *total* (remainders spread deterministically).
    """
    if n_members <= 0:
        return []
    weights = [1.0 / (rank ** exponent) for rank in range(1, n_members + 1)]
    weight_sum = sum(weights)
    raw = [total * w / weight_sum for w in weights]
    counts = [max(1, int(x)) for x in raw]
    # Adjust to the exact total: trim from the head or pad the tail.
    difference = total - sum(counts)
    index = 0
    while difference != 0 and n_members > 0:
        position = index % n_members
        if difference > 0:
            counts[position] += 1
            difference -= 1
        elif counts[position] > 1:
            counts[position] -= 1
            difference += 1
        index += 1
        if index > 10 * n_members + abs(difference) * 2:
            break  # give up exactness in pathological corner cases
    return counts


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, round(value * scale))


def build_population(profile: IxpProfile, scale: float = 0.05,
                     seed: int = 20211004) -> Population:
    """Build the synthetic population for *profile* at the given scale.

    ``scale`` multiplies the paper's Table 1 member/prefix counts; 1.0
    reproduces full size (slow), the default 0.05 keeps benchmark runs
    snappy while preserving all distributional shapes.
    """
    rng = stable_rng(seed, profile.key)
    allocator = PrefixAllocator()
    population = Population(profile=profile, scale=scale, seed=seed)

    total_members = _scaled(profile.paper.members_total, scale, minimum=48)
    rs_fraction_v4 = profile.paper.members_rs_v4 / profile.paper.members_total
    rs_fraction_v6 = profile.paper.members_rs_v6 / profile.paper.members_total

    lan_v4 = ipaddress.ip_network(profile.peering_lan_v4)
    lan_v6 = ipaddress.ip_network(profile.peering_lan_v6)
    host_v4 = int(lan_v4.network_address) + 10
    host_v6 = int(lan_v6.network_address) + 10

    members: List[Member] = []

    def make_member(asn: int, name: str, role: MemberRole,
                    at_rs_v4: bool, at_rs_v6: bool) -> Member:
        nonlocal host_v4, host_v6
        peering_v4 = str(ipaddress.IPv4Address(host_v4))
        peering_v6 = str(ipaddress.IPv6Address(host_v6))
        host_v4 += 1
        host_v6 += 1
        return Member(
            asn=asn, name=name, role=role,
            at_rs_v4=at_rs_v4, at_rs_v6=at_rs_v6,
            peering_ip_v4=peering_v4, peering_ip_v6=peering_v6)

    # 1. Named networks first: they anchor the paper's findings. At
    #    small scales a full complement of named networks would crowd
    #    out the synthetic population (and distort the members-at-RS
    #    fraction), so inclusion is capped; priority goes to the
    #    defensive transit networks (the Fig. 7 culprits), then the
    #    announce-to whitelist targets, then content providers. Named
    #    networks that do not join are still *targets* — just strictly
    #    ineffective ones (§5.5).
    named_priority: List[registry.KnownNetwork] = list(
        registry.TRANSIT_ISPS)
    named_priority += list(registry.ANNOUNCE_TARGETS)
    named_priority += [n for n in registry.CONTENT_PROVIDERS if n.at_rs]
    named_priority += [n for n in registry.CONTENT_PROVIDERS
                       if not n.at_rs]
    named_priority += list(registry.REGIONAL_ISPS)
    named_cap = max(8, round(total_members * 0.28))
    for known in named_priority[:named_cap]:
        if not known.joins_ixps:
            continue
        at_rs_v4 = known.at_rs
        at_rs_v6 = known.at_rs and rng.random() < 0.85
        members.append(make_member(
            known.asn, known.name, known.role, at_rs_v4, at_rs_v6))

    # 2. Synthetic filler up to the member total. The named networks
    #    above skew towards not-at-RS content providers, so compensate
    #    the synthetic draw probabilities to keep the *overall*
    #    members-at-RS fractions on the paper's Table 1 values.
    roles, role_weights = zip(*registry.SYNTHETIC_ROLE_MIX)
    synthetic_needed = max(0, total_members - len(members))
    named_rs_v4 = sum(1 for m in members if m.at_rs_v4)
    named_rs_v6 = sum(1 for m in members if m.at_rs_v6)
    target_rs_v4 = round(total_members * rs_fraction_v4)
    target_rs_v6 = round(total_members * rs_fraction_v6)
    p_synth_v4 = (min(1.0, max(0.0, (target_rs_v4 - named_rs_v4)
                               / synthetic_needed))
                  if synthetic_needed else 0.0)
    expected_synth_v4 = p_synth_v4 * synthetic_needed
    p_synth_v6 = (min(1.0, max(0.0, (target_rs_v6 - named_rs_v6)
                               / max(expected_synth_v4, 1e-9)))
                  if synthetic_needed else 0.0)
    for index in range(synthetic_needed):
        asn = registry.synthetic_asn(index)
        role = rng.choices(roles, weights=role_weights, k=1)[0]
        at_rs_v4 = rng.random() < p_synth_v4
        # v6 presence is correlated with v4 presence but sparser.
        at_rs_v6 = at_rs_v4 and rng.random() < p_synth_v6
        members.append(make_member(
            asn, f"SyntheticNet-{asn}", role, at_rs_v4, at_rs_v6))

    # 3. Zipf prefix counts over the *announcing* members. Named transit
    #    networks get pushed towards the head by sorting the ranks so
    #    big ISPs and CPs-at-RS lead.
    def head_priority(member: Member) -> int:
        known = registry.KNOWN_BY_ASN.get(member.asn)
        if known and known.asn == registry.HURRICANE_ELECTRIC.asn:
            return 0          # HE announces the biggest table (§5.5)
        if known and known.defensive_tagger:
            return 1          # then the other transit giants
        if known:
            return 2
        if member.role in (MemberRole.TRANSIT_ISP, MemberRole.CLOUD):
            return 3
        return 4

    for family in (4, 6):
        rs_members = [m for m in members if m.at_rs(family)]
        rs_members.sort(key=lambda m: (head_priority(m), m.asn))
        paper_prefixes = (profile.paper.prefixes_v4 if family == 4
                          else profile.paper.prefixes_v6)
        total_prefixes = _scaled(paper_prefixes, scale, minimum=60)
        # Keep a slice of the prefix budget for multihomed customers.
        routes_ratio = (
            (profile.paper.routes_v4 if family == 4
             else profile.paper.routes_v6)
            / max(1, paper_prefixes))
        customer_share = min(0.45, max(0.0, routes_ratio - 1.0) / 2.0)
        customer_prefix_count = int(total_prefixes * customer_share)
        own_total = total_prefixes - customer_prefix_count
        counts = _zipf_counts(rng, len(rs_members), own_total)
        for member, count in zip(rs_members, counts):
            assets = population.assets.setdefault(
                member.asn, MemberAssets(member))
            plen_choices = ((20, 21, 22, 23, 24) if family == 4
                            else (32, 36, 40, 44, 48))
            prefixes = [allocator.allocate(
                family, rng.choice(plen_choices)) for _ in range(count)]
            if family == 4:
                assets.own_prefixes_v4 = prefixes
            else:
                assets.own_prefixes_v6 = prefixes

        # 4. Multihomed customer prefixes: origin is a non-member stub
        #    AS, announced via 2-3 transit members — this is what makes
        #    routes exceed prefixes (Table 1).
        transit_members = [m for m in rs_members
                           if m.role is MemberRole.TRANSIT_ISP]
        if transit_members and customer_prefix_count:
            for index in range(customer_prefix_count):
                origin = 64000 + (index % 400)  # stub ASN space, public
                fanout = 2 if rng.random() < 0.7 else 3
                fanout = min(fanout, len(transit_members))
                transits = tuple(sorted(
                    m.asn for m in rng.sample(transit_members, fanout)))
                plen = rng.choice((22, 23, 24) if family == 4
                                  else (44, 46, 48))
                population.customer_prefixes.append(CustomerPrefix(
                    prefix=allocator.allocate(family, plen),
                    origin_asn=origin,
                    transit_asns=transits,
                    family=family))

    # Record prefix counts on the Member objects (summary metadata).
    refreshed: Dict[int, MemberAssets] = {}
    for asn, assets in population.assets.items():
        member = assets.member
        from dataclasses import replace as dc_replace
        updated = dc_replace(
            member,
            prefix_count_v4=len(assets.own_prefixes_v4),
            prefix_count_v6=len(assets.own_prefixes_v6))
        refreshed[asn] = MemberAssets(
            updated, assets.own_prefixes_v4, assets.own_prefixes_v6)
    # Members with no prefixes (listen-only sessions) still matter for
    # the member-at-RS denominators; keep them in the population.
    for member in members:
        if member.asn not in refreshed:
            refreshed[member.asn] = MemberAssets(member)
    population.assets = refreshed
    return population
