"""Catalogue of networks populating the synthetic IXPs.

The paper's findings name real networks: Hurricane Electric as the top
"culprit" (§5.5), content providers (Google, Akamai, OVHcloud, Netflix,
Cloudflare, LeaseWeb, Edgecast, Apple) as the most-avoided targets
(§5.4), Brazilian networks (NIC-Simet, RNP, Itaú, CDNetworks) as
announce-only-to targets at IX.br. This module defines those *named*
networks plus deterministic synthetic filler so populations of any size
can be built.

All named ASNs are public facts from the routing system; their behaviour
here is synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..ixp.member import MemberRole


@dataclass(frozen=True)
class KnownNetwork:
    """A named network with a role and IXP-presence disposition."""

    asn: int
    name: str
    role: MemberRole
    #: joins the studied IXPs as a member (on the peering LAN)...
    joins_ixps: bool
    #: ...but maintains RS sessions? CPs tend to prefer PNIs and stay off
    #: the route servers (§5.4), which is what makes communities
    #: targeting them ineffective (§5.5).
    at_rs: bool
    #: weight for being *picked as a target* of action communities.
    target_weight: float
    #: large transit networks announce many routes and tag defensively
    #: (§5.6): avoid-lists kept regardless of who is at the RS.
    defensive_tagger: bool = False


#: Hurricane Electric: at every IXP, at the RS, announces a huge table,
#: and tags defensively — the paper finds it responsible for 24.2–59.4%
#: of the action communities targeting non-RS members.
HURRICANE_ELECTRIC = KnownNetwork(
    6939, "Hurricane Electric", MemberRole.TRANSIT_ISP,
    joins_ixps=True, at_rs=True, target_weight=9.0, defensive_tagger=True)

#: Content providers / clouds. Mostly IXP members *not* at the route
#: server: "these networks offer opportunities to exchange large traffic
#: volumes, becoming attractive partners over PNIs instead of
#: multilateral peering" (§5.4).
CONTENT_PROVIDERS: Tuple[KnownNetwork, ...] = (
    KnownNetwork(15169, "Google", MemberRole.CONTENT_PROVIDER,
                 joins_ixps=True, at_rs=False, target_weight=10.0),
    KnownNetwork(20940, "Akamai", MemberRole.CONTENT_PROVIDER,
                 joins_ixps=True, at_rs=False, target_weight=8.0),
    KnownNetwork(16276, "OVHcloud", MemberRole.CLOUD,
                 joins_ixps=True, at_rs=False, target_weight=9.5),
    KnownNetwork(2906, "Netflix", MemberRole.CONTENT_PROVIDER,
                 joins_ixps=True, at_rs=False, target_weight=7.0),
    KnownNetwork(13335, "Cloudflare", MemberRole.CONTENT_PROVIDER,
                 joins_ixps=True, at_rs=True, target_weight=6.5),
    KnownNetwork(60781, "LeaseWeb", MemberRole.CLOUD,
                 joins_ixps=True, at_rs=False, target_weight=6.0),
    KnownNetwork(15133, "Edgecast", MemberRole.CONTENT_PROVIDER,
                 joins_ixps=True, at_rs=False, target_weight=5.0),
    KnownNetwork(714, "Apple", MemberRole.CONTENT_PROVIDER,
                 joins_ixps=True, at_rs=False, target_weight=4.5),
    KnownNetwork(32934, "Meta", MemberRole.CONTENT_PROVIDER,
                 joins_ixps=True, at_rs=True, target_weight=4.0),
    KnownNetwork(8075, "Microsoft", MemberRole.CLOUD,
                 joins_ixps=True, at_rs=False, target_weight=4.0),
    KnownNetwork(16509, "Amazon", MemberRole.CLOUD,
                 joins_ixps=True, at_rs=True, target_weight=3.5),
    KnownNetwork(54113, "Fastly", MemberRole.CONTENT_PROVIDER,
                 joins_ixps=True, at_rs=False, target_weight=3.0),
    KnownNetwork(22822, "Limelight", MemberRole.CONTENT_PROVIDER,
                 joins_ixps=True, at_rs=False, target_weight=2.5),
)

#: Large transit ISPs: RS members with big tables and defensive
#: avoid-lists — the Fig. 7 culprit population.
TRANSIT_ISPS: Tuple[KnownNetwork, ...] = (
    HURRICANE_ELECTRIC,
    KnownNetwork(3356, "Lumen", MemberRole.TRANSIT_ISP,
                 joins_ixps=True, at_rs=True, target_weight=2.0,
                 defensive_tagger=True),
    KnownNetwork(6453, "TATA Communications", MemberRole.TRANSIT_ISP,
                 joins_ixps=True, at_rs=True, target_weight=1.5,
                 defensive_tagger=True),
    KnownNetwork(2914, "NTT", MemberRole.TRANSIT_ISP,
                 joins_ixps=True, at_rs=True, target_weight=1.5,
                 defensive_tagger=True),
    KnownNetwork(1299, "Arelion", MemberRole.TRANSIT_ISP,
                 joins_ixps=True, at_rs=True, target_weight=1.2,
                 defensive_tagger=True),
    KnownNetwork(174, "Cogent", MemberRole.TRANSIT_ISP,
                 joins_ixps=True, at_rs=True, target_weight=1.2,
                 defensive_tagger=True),
    KnownNetwork(9002, "RETN", MemberRole.TRANSIT_ISP,
                 joins_ixps=True, at_rs=True, target_weight=1.0,
                 defensive_tagger=True),
    KnownNetwork(6762, "Sparkle", MemberRole.TRANSIT_ISP,
                 joins_ixps=True, at_rs=True, target_weight=1.0,
                 defensive_tagger=True),
)

#: Regional ISPs the paper names as avoided targets despite not being at
#: the route servers (PROLINK and Syntegra Telecom, §5.4).
REGIONAL_ISPS: Tuple[KnownNetwork, ...] = (
    KnownNetwork(28669, "PROLINK", MemberRole.ACCESS_ISP,
                 joins_ixps=True, at_rs=False, target_weight=3.0),
    KnownNetwork(53062, "Syntegra Telecom", MemberRole.ACCESS_ISP,
                 joins_ixps=True, at_rs=False, target_weight=2.8),
    KnownNetwork(29076, "Filanco", MemberRole.ACCESS_ISP,
                 joins_ixps=True, at_rs=False, target_weight=2.6),
)

#: Networks that appear as *announce-only-to* targets at IX.br (§5.4):
#: educational networks, an enterprise, and a content provider.
ANNOUNCE_TARGETS: Tuple[KnownNetwork, ...] = (
    KnownNetwork(14026, "NIC-Simet", MemberRole.EDUCATION,
                 joins_ixps=True, at_rs=True, target_weight=2.0),
    KnownNetwork(1916, "RNP", MemberRole.EDUCATION,
                 joins_ixps=True, at_rs=True, target_weight=1.8),
    KnownNetwork(28571, "Itau", MemberRole.ENTERPRISE,
                 joins_ixps=True, at_rs=True, target_weight=1.6),
    KnownNetwork(36408, "CDNetworks", MemberRole.CONTENT_PROVIDER,
                 joins_ixps=True, at_rs=True, target_weight=1.5),
)

ALL_KNOWN: Tuple[KnownNetwork, ...] = (
    CONTENT_PROVIDERS + TRANSIT_ISPS + REGIONAL_ISPS + ANNOUNCE_TARGETS)

KNOWN_BY_ASN: Dict[int, KnownNetwork] = {n.asn: n for n in ALL_KNOWN}


def network_name(asn: int) -> str:
    """Display name for an ASN (synthetic fallback)."""
    known = KNOWN_BY_ASN.get(asn)
    return known.name if known else f"SyntheticNet-{asn}"


#: role mix for synthetic filler members, (role, weight). Skewed towards
#: access ISPs / enterprises, which dominate IXP memberships.
SYNTHETIC_ROLE_MIX: Tuple[Tuple[MemberRole, float], ...] = (
    (MemberRole.ACCESS_ISP, 0.52),
    (MemberRole.ENTERPRISE, 0.18),
    (MemberRole.TRANSIT_ISP, 0.12),
    (MemberRole.CONTENT_PROVIDER, 0.10),
    (MemberRole.EDUCATION, 0.05),
    (MemberRole.CLOUD, 0.03),
)

#: base of the synthetic ASN space; chosen clear of reserved ranges and
#: of every named ASN above (named ASNs are all < 61000).
SYNTHETIC_ASN_BASE = 61100

#: ASNs a synthetic member must never take: the route-server ASNs of the
#: eight IXPs (a member colliding with an RS ASN would make its internal
#: communities look IXP-defined).
_RESERVED_SYNTHETIC_ASNS = frozenset(
    {26162, 6695, 8714, 6777, 8631, 63034, 16374, 52005})


def synthetic_asn(index: int) -> int:
    """Deterministic public-range 16-bit ASN for synthetic member *index*.

    Stays below 64496 (start of the reserved space) — the route server's
    bogon-ASN filter must never fire on a legitimate synthetic member —
    and skips the route-server ASNs.
    """
    asn = SYNTHETIC_ASN_BASE + index
    for reserved in sorted(_RESERVED_SYNTHETIC_ASNS):
        if asn >= reserved >= SYNTHETIC_ASN_BASE:
            asn += 1
    if asn >= 64496:
        raise ValueError(
            f"synthetic member index {index} exhausts the public "
            f"16-bit ASN space (max {64496 - SYNTHETIC_ASN_BASE - 1})")
    return asn
