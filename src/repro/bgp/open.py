"""BGP OPEN message and capabilities (RFC 4271 §4.2, RFC 5492).

Used by the session layer to negotiate 4-octet-AS (RFC 6793) and
multiprotocol (RFC 4760) capabilities between a simulated member router
and the route server.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .errors import MessageDecodeError, MessageEncodeError
from .messages import MARKER, MSG_OPEN, decode_header

BGP_VERSION = 4
AS_TRANS = 23456

CAP_MULTIPROTOCOL = 1
CAP_FOUR_OCTET_AS = 65

OPT_PARAM_CAPABILITIES = 2


@dataclass(frozen=True)
class Capability:
    """One RFC 5492 capability TLV."""

    code: int
    value: bytes = b""

    def encode(self) -> bytes:
        if len(self.value) > 255:
            raise MessageEncodeError("capability value too long")
        return bytes([self.code, len(self.value)]) + self.value

    @classmethod
    def multiprotocol(cls, afi: int, safi: int) -> "Capability":
        return cls(CAP_MULTIPROTOCOL, struct.pack("!HBB", afi, 0, safi))

    @classmethod
    def four_octet_as(cls, asn: int) -> "Capability":
        return cls(CAP_FOUR_OCTET_AS, struct.pack("!I", asn))


@dataclass
class OpenMessage:
    """A BGP OPEN."""

    asn: int
    hold_time: int
    bgp_identifier: str
    capabilities: List[Capability] = field(default_factory=list)

    @property
    def four_octet_asn(self) -> Optional[int]:
        for capability in self.capabilities:
            if capability.code == CAP_FOUR_OCTET_AS and len(
                    capability.value) == 4:
                return struct.unpack("!I", capability.value)[0]
        return None

    @property
    def effective_asn(self) -> int:
        """The 4-octet ASN when advertised, else the OPEN field."""
        four = self.four_octet_asn
        return four if four is not None else self.asn

    def supports_multiprotocol(self, afi: int, safi: int) -> bool:
        needle = struct.pack("!HBB", afi, 0, safi)
        return any(c.code == CAP_MULTIPROTOCOL and c.value == needle
                   for c in self.capabilities)

    def encode(self) -> bytes:
        my_as = self.asn if self.asn <= 0xFFFF else AS_TRANS
        identifier = ipaddress.IPv4Address(self.bgp_identifier).packed
        caps = b"".join(c.encode() for c in self.capabilities)
        opt_params = b""
        if caps:
            if len(caps) > 253:
                raise MessageEncodeError("capabilities too long")
            opt_params = bytes([OPT_PARAM_CAPABILITIES, len(caps)]) + caps
        body = (bytes([BGP_VERSION]) + struct.pack("!HH", my_as,
                                                   self.hold_time)
                + identifier + bytes([len(opt_params)]) + opt_params)
        total = len(MARKER) + 3 + len(body)
        return MARKER + struct.pack("!HB", total, MSG_OPEN) + body

    @classmethod
    def decode(cls, blob: bytes) -> "OpenMessage":
        msg_type, body = decode_header(blob)
        if msg_type != MSG_OPEN:
            raise MessageDecodeError(f"not an OPEN (type {msg_type})")
        if len(body) < 10:
            raise MessageDecodeError("OPEN body too short")
        version = body[0]
        if version != BGP_VERSION:
            raise MessageDecodeError(f"unsupported BGP version {version}")
        asn, hold_time = struct.unpack("!HH", body[1:5])
        identifier = str(ipaddress.IPv4Address(body[5:9]))
        opt_len = body[9]
        if 10 + opt_len != len(body):
            raise MessageDecodeError("OPEN optional-parameter overrun")
        capabilities: List[Capability] = []
        offset = 10
        end = 10 + opt_len
        while offset < end:
            if offset + 2 > end:
                raise MessageDecodeError("truncated optional parameter")
            param_type, param_len = body[offset], body[offset + 1]
            offset += 2
            value = body[offset:offset + param_len]
            offset += param_len
            if param_type != OPT_PARAM_CAPABILITIES:
                continue
            cap_offset = 0
            while cap_offset < len(value):
                if cap_offset + 2 > len(value):
                    raise MessageDecodeError("truncated capability")
                code, cap_len = value[cap_offset], value[cap_offset + 1]
                cap_offset += 2
                capabilities.append(Capability(
                    code, value[cap_offset:cap_offset + cap_len]))
                cap_offset += cap_len
        return cls(asn=asn, hold_time=hold_time,
                   bgp_identifier=identifier, capabilities=capabilities)
