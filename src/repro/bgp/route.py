"""The route model shared by the route server, looking glass, and analysis.

A :class:`Route` is a single (prefix, attributes) entry as seen at one
vantage point — here, an IXP route server RIB. It mirrors exactly what the
paper's snapshots capture for every route (§3): prefix, next-hop, AS-path,
and the three lists of BGP communities.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, Iterable, Optional, Tuple

from .aspath import AsPath
from .communities import (
    Community,
    ExtendedCommunity,
    LargeCommunity,
    StandardCommunity,
    parse_community,
)
from .prefix import address_family, canonical


@dataclass(frozen=True)
class Route:
    """An accepted (or filtered) route at a route server.

    Attributes:
        prefix: canonical CIDR string, e.g. ``"203.0.113.0/24"``.
        next_hop: IP address of the announcing peer's router.
        as_path: the AS_PATH as received (origin rightmost).
        peer_asn: ASN of the RS peer that announced the route (equals
            ``as_path.first_asn`` unless the peer inserted prepends of a
            different ASN, which the RS would reject anyway).
        communities: standard communities attached by the announcing AS
            and/or the route server.
        extended_communities / large_communities: the other flavours.
        filtered: True when the RS rejected the route at import; the
            analysis only consumes accepted routes, but the collector
            records both so the accepted/filtered split can be studied.
        filter_reason: the import filter that rejected the route.
    """

    prefix: str
    next_hop: str
    as_path: AsPath
    peer_asn: int
    communities: FrozenSet[StandardCommunity] = field(default_factory=frozenset)
    extended_communities: FrozenSet[ExtendedCommunity] = field(default_factory=frozenset)
    large_communities: FrozenSet[LargeCommunity] = field(default_factory=frozenset)
    filtered: bool = False
    filter_reason: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "prefix", canonical(self.prefix))
        object.__setattr__(self, "communities", frozenset(self.communities))
        object.__setattr__(self, "extended_communities",
                           frozenset(self.extended_communities))
        object.__setattr__(self, "large_communities",
                           frozenset(self.large_communities))

    @property
    def family(self) -> int:
        """4 or 6."""
        return address_family(self.prefix)

    @property
    def origin_asn(self) -> int:
        return self.as_path.origin_asn

    def all_communities(self) -> Tuple[Community, ...]:
        """Every community on the route, standard first, deterministic order."""
        return (tuple(sorted(self.communities))
                + tuple(sorted(self.extended_communities))
                + tuple(sorted(self.large_communities)))

    @property
    def community_count(self) -> int:
        """Total community instances on this route (all flavours)."""
        return (len(self.communities) + len(self.extended_communities)
                + len(self.large_communities))

    def with_communities(self,
                         communities: Iterable[StandardCommunity]) -> "Route":
        """Return a copy with the standard community set replaced."""
        return replace(self, communities=frozenset(communities))

    def without_communities(
            self, drop: Iterable[StandardCommunity]) -> "Route":
        """Return a copy with the given standard communities removed
        (how a route server scrubs action communities before export)."""
        return replace(self, communities=self.communities - frozenset(drop))

    def with_prepend(self, asn: int, count: int) -> "Route":
        """Return a copy with the AS path prepended (prepend-to action)."""
        return replace(self, as_path=self.as_path.prepended(asn, count))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict, the schema served by the Looking Glass API."""
        payload: Dict[str, Any] = {
            "prefix": self.prefix,
            "next_hop": self.next_hop,
            "as_path": str(self.as_path),
            "peer_asn": self.peer_asn,
            "communities": sorted(str(c) for c in self.communities),
            "extended_communities": sorted(
                str(c) for c in self.extended_communities),
            "large_communities": sorted(
                str(c) for c in self.large_communities),
        }
        if self.filtered:
            payload["filtered"] = True
            payload["filter_reason"] = self.filter_reason
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Route":
        """Inverse of :meth:`to_dict`."""
        return cls(
            prefix=payload["prefix"],
            next_hop=payload["next_hop"],
            as_path=AsPath.from_string(payload["as_path"]),
            peer_asn=int(payload["peer_asn"]),
            communities=frozenset(
                parse_community(c) for c in payload.get("communities", ())),
            extended_communities=frozenset(
                parse_community(c)
                for c in payload.get("extended_communities", ())),
            large_communities=frozenset(
                parse_community(c)
                for c in payload.get("large_communities", ())),
            filtered=bool(payload.get("filtered", False)),
            filter_reason=payload.get("filter_reason"),
        )
