"""BGP substrate: ASNs, prefixes, communities, AS paths, routes, messages.

This package implements the protocol-level building blocks the rest of the
reproduction stands on. Nothing in here knows about IXPs or the paper's
analyses — it is a plain BGP data-model library.
"""

from .asn import (
    BOGON_ASN_RANGES,
    contains_bogon_asn,
    format_asdot,
    is_16bit,
    is_bogon_asn,
    parse_asn,
)
from .aspath import AS_SEQUENCE, AS_SET, AsPath, AsPathSegment
from .communities import (
    BLACKHOLE,
    Community,
    ExtendedCommunity,
    LargeCommunity,
    NO_ADVERTISE,
    NO_EXPORT,
    StandardCommunity,
    community_kind,
    large,
    parse_community,
    standard,
)
from .errors import (
    BgpError,
    MalformedAsnError,
    MalformedAsPathError,
    MalformedCommunityError,
    MalformedPrefixError,
    MessageDecodeError,
    MessageEncodeError,
)
from .messages import UpdateMessage, decode_header, encode_keepalive
from .open import Capability, OpenMessage
from .session import BgpSession, SessionState, connect, pump
from .prefix import (
    address_family,
    canonical,
    is_bogon_prefix,
    is_too_broad,
    is_too_specific,
    parse_prefix,
)
from .route import Route

__all__ = [
    "AsPath", "AsPathSegment", "AS_SEQUENCE", "AS_SET",
    "Community", "StandardCommunity", "ExtendedCommunity", "LargeCommunity",
    "parse_community", "community_kind", "standard", "large",
    "NO_EXPORT", "NO_ADVERTISE", "BLACKHOLE",
    "Route", "UpdateMessage", "decode_header", "encode_keepalive",
    "OpenMessage", "Capability", "BgpSession", "SessionState",
    "connect", "pump",
    "parse_asn", "format_asdot", "is_16bit", "is_bogon_asn",
    "contains_bogon_asn", "BOGON_ASN_RANGES",
    "parse_prefix", "canonical", "address_family", "is_bogon_prefix",
    "is_too_specific", "is_too_broad",
    "BgpError", "MalformedAsnError", "MalformedAsPathError",
    "MalformedCommunityError", "MalformedPrefixError",
    "MessageDecodeError", "MessageEncodeError",
]
