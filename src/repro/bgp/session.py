"""A minimal BGP-4 session state machine (RFC 4271 §8, simplified).

Gives the route-server substrate a real session life cycle: peers
exchange OPENs, confirm with KEEPALIVEs, feed UPDATEs, and expire on
hold-timer timeout. Time is logical (caller-advanced), so tests are
deterministic and instant.

The implemented FSM collapses the TCP-level states (Connect/Active)
into ``IDLE`` → ``OPEN_SENT`` → ``OPEN_CONFIRM`` → ``ESTABLISHED``,
which is the portion that matters above an already-connected transport.

Notifications use a small subset of RFC 4271 §6 codes.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .errors import MessageDecodeError
from .messages import (
    MARKER,
    MSG_KEEPALIVE,
    MSG_NOTIFICATION,
    MSG_OPEN,
    MSG_UPDATE,
    UpdateMessage,
    decode_header,
    encode_keepalive,
)
from .open import Capability, OpenMessage

NOTIFY_OPEN_ERROR = 2
NOTIFY_HOLD_TIMER_EXPIRED = 4
NOTIFY_CEASE = 6


def encode_notification(code: int, subcode: int = 0,
                        data: bytes = b"") -> bytes:
    body = bytes([code, subcode]) + data
    total = len(MARKER) + 3 + len(body)
    return MARKER + struct.pack("!HB", total, MSG_NOTIFICATION) + body


def decode_notification(blob: bytes) -> Tuple[int, int, bytes]:
    msg_type, body = decode_header(blob)
    if msg_type != MSG_NOTIFICATION:
        raise MessageDecodeError(f"not a NOTIFICATION (type {msg_type})")
    if len(body) < 2:
        raise MessageDecodeError("NOTIFICATION body too short")
    return body[0], body[1], body[2:]


class SessionState(str, enum.Enum):
    IDLE = "idle"
    OPEN_SENT = "open-sent"
    OPEN_CONFIRM = "open-confirm"
    ESTABLISHED = "established"


@dataclass
class BgpSession:
    """One side of a BGP session over an abstract ordered transport.

    The caller wires two sessions together by delivering whatever
    :meth:`outbox` produces to the other side's :meth:`receive`, and
    advances logical time with :meth:`tick`.

    Attributes:
        local_asn / local_id: this speaker.
        hold_time: proposed hold time (seconds, logical).
        on_update: callback invoked with each received UpdateMessage
            once ESTABLISHED (e.g. feeding a RouteServer).
    """

    local_asn: int
    local_id: str
    hold_time: int = 90
    on_update: Optional[Callable[[UpdateMessage], None]] = None

    state: SessionState = SessionState.IDLE
    peer_open: Optional[OpenMessage] = None
    negotiated_hold_time: int = 0
    last_error: Optional[str] = None

    _outbox: List[bytes] = field(default_factory=list)
    _clock: float = 0.0
    _last_received: float = 0.0
    _last_sent_keepalive: float = 0.0

    # -- session control --------------------------------------------------

    def start(self) -> None:
        """Transport is up: send our OPEN."""
        if self.state is not SessionState.IDLE:
            raise RuntimeError(f"cannot start from {self.state}")
        self._outbox.append(self._make_open().encode())
        self.state = SessionState.OPEN_SENT
        self._last_received = self._clock

    def stop(self, code: int = NOTIFY_CEASE) -> None:
        """Administratively close (sends NOTIFICATION cease)."""
        if self.state is not SessionState.IDLE:
            self._outbox.append(encode_notification(code))
        self._reset("administrative stop")

    def _make_open(self) -> OpenMessage:
        return OpenMessage(
            asn=min(self.local_asn, 0xFFFF) if self.local_asn <= 0xFFFF
            else 23456,
            hold_time=self.hold_time,
            bgp_identifier=self.local_id,
            capabilities=[
                Capability.four_octet_as(self.local_asn),
                Capability.multiprotocol(1, 1),
                Capability.multiprotocol(2, 1),
            ])

    def _reset(self, reason: str) -> None:
        self.state = SessionState.IDLE
        self.peer_open = None
        self.negotiated_hold_time = 0
        self.last_error = reason

    # -- I/O ----------------------------------------------------------------

    def outbox(self) -> List[bytes]:
        """Drain queued outbound messages."""
        out, self._outbox = self._outbox, []
        return out

    def send_update(self, update: UpdateMessage) -> None:
        if self.state is not SessionState.ESTABLISHED:
            raise RuntimeError("cannot send UPDATE before ESTABLISHED")
        self._outbox.append(update.encode())

    def receive(self, blob: bytes) -> None:
        """Process one inbound BGP message."""
        try:
            msg_type, _body = decode_header(blob)
        except MessageDecodeError as error:
            self._outbox.append(encode_notification(1))  # header error
            self._reset(f"header error: {error}")
            return
        self._last_received = self._clock
        if msg_type == MSG_NOTIFICATION:
            code, subcode, _ = decode_notification(blob)
            self._reset(f"notification received: code {code}/{subcode}")
            return
        handler = {
            MSG_OPEN: self._handle_open,
            MSG_KEEPALIVE: self._handle_keepalive,
            MSG_UPDATE: self._handle_update,
        }.get(msg_type)
        if handler is None:
            self._outbox.append(encode_notification(1, 3))
            self._reset(f"unexpected message type {msg_type}")
            return
        handler(blob)

    def _handle_open(self, blob: bytes) -> None:
        if self.state is not SessionState.OPEN_SENT:
            self._outbox.append(encode_notification(NOTIFY_OPEN_ERROR))
            self._reset(f"OPEN in state {self.state}")
            return
        try:
            peer_open = OpenMessage.decode(blob)
        except MessageDecodeError as error:
            self._outbox.append(encode_notification(NOTIFY_OPEN_ERROR))
            self._reset(f"bad OPEN: {error}")
            return
        if peer_open.hold_time not in (0,) and peer_open.hold_time < 3:
            self._outbox.append(encode_notification(NOTIFY_OPEN_ERROR, 6))
            self._reset("unacceptable hold time")
            return
        self.peer_open = peer_open
        self.negotiated_hold_time = min(
            self.hold_time, peer_open.hold_time) or 0
        self._outbox.append(encode_keepalive())
        self.state = SessionState.OPEN_CONFIRM

    def _handle_keepalive(self, _blob: bytes) -> None:
        if self.state is SessionState.OPEN_CONFIRM:
            self.state = SessionState.ESTABLISHED
        elif self.state is not SessionState.ESTABLISHED:
            self._outbox.append(encode_notification(5))  # FSM error
            self._reset(f"KEEPALIVE in state {self.state}")

    def _handle_update(self, blob: bytes) -> None:
        if self.state is not SessionState.ESTABLISHED:
            self._outbox.append(encode_notification(5))
            self._reset(f"UPDATE in state {self.state}")
            return
        update = UpdateMessage.decode(blob)
        if self.on_update is not None:
            self.on_update(update)

    # -- timers --------------------------------------------------------------

    def tick(self, seconds: float) -> None:
        """Advance logical time: emits KEEPALIVEs (every hold/3) and
        expires the session on hold-timer timeout."""
        self._clock += seconds
        if self.state is SessionState.IDLE:
            return
        hold = self.negotiated_hold_time or self.hold_time
        if hold and self._clock - self._last_received > hold:
            self._outbox.append(
                encode_notification(NOTIFY_HOLD_TIMER_EXPIRED))
            self._reset("hold timer expired")
            return
        keepalive_interval = max(1.0, hold / 3.0) if hold else None
        if (keepalive_interval is not None
                and self.state in (SessionState.OPEN_CONFIRM,
                                   SessionState.ESTABLISHED)
                and self._clock - self._last_sent_keepalive
                >= keepalive_interval):
            self._outbox.append(encode_keepalive())
            self._last_sent_keepalive = self._clock

    @property
    def established(self) -> bool:
        return self.state is SessionState.ESTABLISHED


def connect(a: BgpSession, b: BgpSession,
            max_rounds: int = 10) -> bool:
    """Drive two sessions to ESTABLISHED over a lossless in-memory
    transport; returns True on success."""
    a.start()
    b.start()
    for _ in range(max_rounds):
        moved = False
        for blob in a.outbox():
            b.receive(blob)
            moved = True
        for blob in b.outbox():
            a.receive(blob)
            moved = True
        if a.established and b.established:
            return True
        if not moved:
            break
    return a.established and b.established


def pump(a: BgpSession, b: BgpSession, rounds: int = 4) -> None:
    """Exchange queued messages between two connected sessions."""
    for _ in range(rounds):
        for blob in a.outbox():
            b.receive(blob)
        for blob in b.outbox():
            a.receive(blob)
