"""Autonomous System Number (ASN) handling.

Provides parsing/validation of 16- and 32-bit AS numbers, the ``asdot``
notation used by some operators, and the bogon-ASN predicate used by route
server import filters (RFC 7607, RFC 4893, RFC 5398, RFC 6996, RFC 7300).
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

from .errors import MalformedAsnError

#: Maximum value of a 16-bit (legacy) AS number.
MAX_ASN16 = 0xFFFF
#: Maximum value of a 32-bit AS number.
MAX_ASN32 = 0xFFFFFFFF

#: Reserved/bogon ASN ranges, as (low, high) inclusive tuples.
#: Sources: RFC 7607 (AS 0), RFC 5398 (documentation, 64496-64511 and
#: 65536-65551), RFC 6996 (private use, 64512-65534 and 4200000000-
#: 4294967294), RFC 7300 (last ASNs 65535 and 4294967295), plus the
#: AS_TRANS value 23456 from RFC 4893 which must never originate routes.
BOGON_ASN_RANGES: Tuple[Tuple[int, int], ...] = (
    (0, 0),                      # RFC 7607: AS 0 is reserved
    (23456, 23456),              # RFC 4893: AS_TRANS
    (64496, 64511),              # RFC 5398: documentation
    (64512, 65534),              # RFC 6996: private use (16-bit)
    (65535, 65535),              # RFC 7300: last 16-bit ASN
    (65536, 65551),              # RFC 5398: documentation (32-bit)
    (4200000000, 4294967294),    # RFC 6996: private use (32-bit)
    (4294967295, 4294967295),    # RFC 7300: last 32-bit ASN
)


def parse_asn(value: Union[int, str]) -> int:
    """Parse an AS number from an int, decimal string, or asdot string.

    >>> parse_asn(64500)
    64500
    >>> parse_asn("AS65000")
    65000
    >>> parse_asn("1.10")        # asdot: 1 * 65536 + 10
    65546

    Raises:
        MalformedAsnError: if the value is not a valid AS number.
    """
    if isinstance(value, bool):
        raise MalformedAsnError(f"not an AS number: {value!r}")
    if isinstance(value, int):
        asn = value
    elif isinstance(value, str):
        text = value.strip()
        if text.upper().startswith("AS"):
            text = text[2:]
        try:
            if "." in text:
                high_s, low_s = text.split(".", 1)
                high, low = int(high_s), int(low_s)
                if not (0 <= high <= MAX_ASN16 and 0 <= low <= MAX_ASN16):
                    raise ValueError(text)
                asn = (high << 16) | low
            else:
                asn = int(text)
        except ValueError as exc:
            raise MalformedAsnError(f"cannot parse ASN from {value!r}") from exc
    else:
        raise MalformedAsnError(f"cannot parse ASN from {value!r}")
    if not 0 <= asn <= MAX_ASN32:
        raise MalformedAsnError(f"ASN out of range: {asn}")
    return asn


def format_asdot(asn: int) -> str:
    """Render *asn* in asdot notation (plain decimal when it fits 16 bits).

    >>> format_asdot(65546)
    '1.10'
    >>> format_asdot(64500)
    '64500'
    """
    asn = parse_asn(asn)
    if asn <= MAX_ASN16:
        return str(asn)
    return f"{asn >> 16}.{asn & 0xFFFF}"


def is_16bit(asn: int) -> bool:
    """Return True when *asn* fits in 16 bits (encodable in a standard
    community field)."""
    return 0 <= asn <= MAX_ASN16


def is_bogon_asn(asn: int) -> bool:
    """Return True when *asn* falls in a reserved/bogon range.

    Route servers reject routes whose AS-path contains a bogon ASN; this is
    one of the §3 "filtered routes" criteria.
    """
    for low, high in BOGON_ASN_RANGES:
        if low <= asn <= high:
            return True
    return False


def contains_bogon_asn(asns: Iterable[int]) -> bool:
    """Return True when any ASN in *asns* is a bogon."""
    return any(is_bogon_asn(a) for a in asns)
