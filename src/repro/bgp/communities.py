"""BGP community attribute values.

Implements the three community flavours the paper observes on IXP routes
(Fig. 2):

* **standard** communities (RFC 1997) — 32 bits, rendered ``ASN:VALUE``;
* **extended** communities (RFC 4360) — 64 bits, type/subtype + payload;
* **large** communities (RFC 8092) — 96 bits, ``GLOBAL:LOCAL1:LOCAL2``.

Each flavour is an immutable, hashable dataclass with string and wire
(de)serialisation, so community values can be used as dictionary keys in
counting pipelines and round-tripped through the Looking Glass JSON API.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple, Union

from .asn import MAX_ASN16, MAX_ASN32
from .errors import MalformedCommunityError

_U16 = 0xFFFF
_U32 = 0xFFFFFFFF

# Well-known standard community values (RFC 1997 + RFC 7999).
NO_EXPORT = 0xFFFFFF01
NO_ADVERTISE = 0xFFFFFF02
NO_EXPORT_SUBCONFED = 0xFFFFFF03
#: RFC 7999 BLACKHOLE community (65535:666).
BLACKHOLE = 0xFFFF029A

WELL_KNOWN_NAMES = {
    NO_EXPORT: "no-export",
    NO_ADVERTISE: "no-advertise",
    NO_EXPORT_SUBCONFED: "no-export-subconfed",
    BLACKHOLE: "blackhole",
}


@dataclass(frozen=True, order=True)
class StandardCommunity:
    """An RFC 1997 standard community, ``asn:value`` (16 bits each)."""

    asn: int
    value: int

    def __post_init__(self) -> None:
        if not (0 <= self.asn <= _U16 and 0 <= self.value <= _U16):
            raise MalformedCommunityError(
                f"standard community fields out of range: {self.asn}:{self.value}")

    @property
    def kind(self) -> str:
        return "standard"

    @classmethod
    def from_string(cls, text: str) -> "StandardCommunity":
        """Parse ``"64500:123"`` (also accepts surrounding parentheses,
        the BIRD rendering ``(64500,123)``)."""
        cleaned = text.strip().strip("()").replace(",", ":")
        parts = cleaned.split(":")
        if len(parts) != 2:
            raise MalformedCommunityError(f"not a standard community: {text!r}")
        try:
            asn, value = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise MalformedCommunityError(
                f"not a standard community: {text!r}") from exc
        return cls(asn, value)

    @classmethod
    def from_u32(cls, raw: int) -> "StandardCommunity":
        """Build from the packed 32-bit wire value."""
        if not 0 <= raw <= _U32:
            raise MalformedCommunityError(f"u32 out of range: {raw}")
        return cls(raw >> 16, raw & _U16)

    def to_u32(self) -> int:
        """Packed 32-bit wire value."""
        return (self.asn << 16) | self.value

    @classmethod
    def from_bytes(cls, blob: bytes) -> "StandardCommunity":
        if len(blob) != 4:
            raise MalformedCommunityError(
                f"standard community needs 4 bytes, got {len(blob)}")
        return cls.from_u32(struct.unpack("!I", blob)[0])

    def to_bytes(self) -> bytes:
        return struct.pack("!I", self.to_u32())

    @property
    def well_known_name(self) -> Union[str, None]:
        """RFC 1997/7999 well-known name, or None."""
        return WELL_KNOWN_NAMES.get(self.to_u32())

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


@dataclass(frozen=True, order=True)
class ExtendedCommunity:
    """An RFC 4360 extended community: 8-bit type, 8-bit subtype, 48-bit
    payload (exposed as ``global_admin``/``local_admin`` for the common
    two-octet-AS-specific encoding, type 0x00/0x40)."""

    type_high: int
    type_low: int
    global_admin: int
    local_admin: int

    def __post_init__(self) -> None:
        ok = (0 <= self.type_high <= 0xFF and 0 <= self.type_low <= 0xFF
              and 0 <= self.global_admin <= _U16
              and 0 <= self.local_admin <= _U32)
        if not ok:
            raise MalformedCommunityError(
                f"extended community fields out of range: {self!r}")

    @property
    def kind(self) -> str:
        return "extended"

    @property
    def is_transitive(self) -> bool:
        """Bit 0x40 of the type high octet is the *non*-transitive flag."""
        return not self.type_high & 0x40

    @classmethod
    def route_target(cls, asn: int, value: int) -> "ExtendedCommunity":
        """Convenience constructor for a transitive two-octet-AS RT."""
        return cls(0x00, 0x02, asn, value)

    @classmethod
    def from_string(cls, text: str) -> "ExtendedCommunity":
        """Parse ``"rt:64500:123"`` / ``"ro:64500:123"`` /
        ``"generic:0x00:0x02:64500:123"``."""
        parts = text.strip().lower().split(":")
        try:
            if parts[0] == "rt" and len(parts) == 3:
                return cls.route_target(int(parts[1]), int(parts[2]))
            if parts[0] == "ro" and len(parts) == 3:
                return cls(0x00, 0x03, int(parts[1]), int(parts[2]))
            if parts[0] == "generic" and len(parts) == 5:
                return cls(int(parts[1], 0), int(parts[2], 0),
                           int(parts[3], 0), int(parts[4], 0))
        except (ValueError, MalformedCommunityError) as exc:
            raise MalformedCommunityError(
                f"not an extended community: {text!r}") from exc
        raise MalformedCommunityError(f"not an extended community: {text!r}")

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ExtendedCommunity":
        if len(blob) != 8:
            raise MalformedCommunityError(
                f"extended community needs 8 bytes, got {len(blob)}")
        t_high, t_low, g_admin, l_admin = struct.unpack("!BBHI", blob)
        return cls(t_high, t_low, g_admin, l_admin)

    def to_bytes(self) -> bytes:
        return struct.pack("!BBHI", self.type_high, self.type_low,
                           self.global_admin, self.local_admin)

    def __str__(self) -> str:
        if (self.type_high, self.type_low) == (0x00, 0x02):
            return f"rt:{self.global_admin}:{self.local_admin}"
        if (self.type_high, self.type_low) == (0x00, 0x03):
            return f"ro:{self.global_admin}:{self.local_admin}"
        return (f"generic:0x{self.type_high:02x}:0x{self.type_low:02x}:"
                f"{self.global_admin}:{self.local_admin}")


@dataclass(frozen=True, order=True)
class LargeCommunity:
    """An RFC 8092 large community: three 32-bit fields, rendered
    ``GLOBAL:LOCAL1:LOCAL2``. The global field is conventionally the ASN
    of the defining network, which lets 32-bit ASNs define communities."""

    global_admin: int
    local_data1: int
    local_data2: int

    def __post_init__(self) -> None:
        for field in (self.global_admin, self.local_data1, self.local_data2):
            if not 0 <= field <= _U32:
                raise MalformedCommunityError(
                    f"large community field out of range: {field}")

    @property
    def kind(self) -> str:
        return "large"

    @classmethod
    def from_string(cls, text: str) -> "LargeCommunity":
        parts = text.strip().strip("()").replace(",", ":").split(":")
        if len(parts) != 3:
            raise MalformedCommunityError(f"not a large community: {text!r}")
        try:
            a, b, c = (int(p) for p in parts)
        except ValueError as exc:
            raise MalformedCommunityError(
                f"not a large community: {text!r}") from exc
        return cls(a, b, c)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "LargeCommunity":
        if len(blob) != 12:
            raise MalformedCommunityError(
                f"large community needs 12 bytes, got {len(blob)}")
        a, b, c = struct.unpack("!III", blob)
        return cls(a, b, c)

    def to_bytes(self) -> bytes:
        return struct.pack("!III", self.global_admin,
                           self.local_data1, self.local_data2)

    def __str__(self) -> str:
        return f"{self.global_admin}:{self.local_data1}:{self.local_data2}"


Community = Union[StandardCommunity, ExtendedCommunity, LargeCommunity]


def parse_community(text: str) -> Community:
    """Parse any community flavour from its canonical string form.

    Dispatch is structural: two fields → standard, three numeric fields →
    large, ``rt:``/``ro:``/``generic:`` prefix → extended.

    >>> parse_community("64500:123").kind
    'standard'
    >>> parse_community("64500:1:2").kind
    'large'
    >>> parse_community("rt:64500:9").kind
    'extended'
    """
    cleaned = text.strip()
    lowered = cleaned.lower()
    if lowered.startswith(("rt:", "ro:", "generic:")):
        return ExtendedCommunity.from_string(cleaned)
    fields = cleaned.strip("()").replace(",", ":").split(":")
    if len(fields) == 2:
        return StandardCommunity.from_string(cleaned)
    if len(fields) == 3:
        return LargeCommunity.from_string(cleaned)
    raise MalformedCommunityError(f"unrecognised community: {text!r}")


def community_kind(community: Community) -> str:
    """Return ``"standard"``, ``"extended"``, or ``"large"``."""
    return community.kind


def standard(asn: int, value: int) -> StandardCommunity:
    """Shorthand constructor used pervasively by the IXP schemes."""
    return StandardCommunity(asn, value)


def large(global_admin: int, d1: int, d2: int) -> LargeCommunity:
    """Shorthand constructor for large communities."""
    return LargeCommunity(global_admin, d1, d2)


def encodes_asn_target(community: StandardCommunity) -> bool:
    """Whether the community's value field plausibly names a 16-bit ASN.

    IXP action communities of the form ``RS_ASN:TARGET`` (or ``0:TARGET``)
    can only name 16-bit targets; schemes use large communities for 32-bit
    targets. This predicate is used by target extraction.
    """
    return 0 < community.value <= MAX_ASN16


__all__ = [
    "StandardCommunity", "ExtendedCommunity", "LargeCommunity", "Community",
    "parse_community", "community_kind", "standard", "large",
    "encodes_asn_target", "NO_EXPORT", "NO_ADVERTISE",
    "NO_EXPORT_SUBCONFED", "BLACKHOLE", "WELL_KNOWN_NAMES", "MAX_ASN32",
]
