"""AS_PATH attribute modelling.

An AS path is an ordered sequence of segments; in practice at IXP route
servers nearly everything is a single AS_SEQUENCE, but AS_SET segments
still appear on aggregates, so both are modelled. The route server filters
use :meth:`AsPath.length` (prepends counted) and
:meth:`AsPath.origin_asn`, and the policy engine uses
:meth:`AsPath.prepended` to implement prepend-to action communities.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

from .asn import parse_asn
from .errors import MalformedAsPathError

AS_SEQUENCE = 2
AS_SET = 1

_SEGMENT_NAMES = {AS_SEQUENCE: "sequence", AS_SET: "set"}


@dataclass(frozen=True)
class AsPathSegment:
    """One AS_PATH segment: a type (AS_SEQUENCE/AS_SET) and ASN tuple."""

    segment_type: int
    asns: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.segment_type not in _SEGMENT_NAMES:
            raise MalformedAsPathError(
                f"unknown segment type {self.segment_type}")
        if not self.asns:
            raise MalformedAsPathError("empty AS_PATH segment")
        object.__setattr__(
            self, "asns", tuple(parse_asn(a) for a in self.asns))

    @property
    def length(self) -> int:
        """RFC 4271 path-length contribution: a SET counts as 1."""
        return len(self.asns) if self.segment_type == AS_SEQUENCE else 1

    def __str__(self) -> str:
        body = " ".join(str(a) for a in self.asns)
        if self.segment_type == AS_SET:
            return "{" + body.replace(" ", ",") + "}"
        return body


@dataclass(frozen=True)
class AsPath:
    """An immutable AS_PATH composed of one or more segments."""

    segments: Tuple[AsPathSegment, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "segments", tuple(self.segments))

    @classmethod
    def from_asns(cls, asns: Sequence[int]) -> "AsPath":
        """Build a single-AS_SEQUENCE path from a list of ASNs.

        >>> AsPath.from_asns([64500, 64501]).origin_asn
        64501
        """
        if not asns:
            raise MalformedAsPathError("AS path needs at least one ASN")
        return cls((AsPathSegment(AS_SEQUENCE, tuple(asns)),))

    @classmethod
    def from_string(cls, text: str) -> "AsPath":
        """Parse ``"64500 64501 {64502,64503}"`` (LG rendering)."""
        segments: List[AsPathSegment] = []
        run: List[int] = []
        in_set = False
        for token in text.replace("{", " { ").replace("}", " } ").split():
            if token == "{":
                if in_set:
                    raise MalformedAsPathError(f"nested AS set in {text!r}")
                if run:
                    segments.append(AsPathSegment(AS_SEQUENCE, tuple(run)))
                    run = []
                in_set = True
            elif token == "}":
                if not in_set or not run:
                    raise MalformedAsPathError(f"bad AS set in {text!r}")
                segments.append(AsPathSegment(AS_SET, tuple(run)))
                run = []
                in_set = False
            else:
                for part in token.split(","):
                    if part:
                        run.append(parse_asn(part))
        if in_set:
            raise MalformedAsPathError(f"unterminated AS set in {text!r}")
        if run:
            segments.append(AsPathSegment(AS_SEQUENCE, tuple(run)))
        if not segments:
            raise MalformedAsPathError(f"empty AS path: {text!r}")
        return cls(tuple(segments))

    def asns(self) -> Iterator[int]:
        """Iterate every ASN in order (including prepend repeats)."""
        for segment in self.segments:
            for asn in segment.asns:
                yield asn

    @property
    def length(self) -> int:
        """RFC 4271 AS_PATH length (used by the too-long-path filter)."""
        return sum(segment.length for segment in self.segments)

    @property
    def first_asn(self) -> int:
        """The neighbour ASN (leftmost)."""
        return next(self.asns())

    @property
    def origin_asn(self) -> int:
        """The originating ASN (rightmost)."""
        last = None
        for asn in self.asns():
            last = asn
        assert last is not None  # segments are non-empty by construction
        return last

    def unique_asns(self) -> Tuple[int, ...]:
        """Distinct ASNs in first-seen order."""
        seen = dict.fromkeys(self.asns())
        return tuple(seen)

    def has_loop(self) -> bool:
        """True when a non-adjacent repeat exists (prepends are adjacent
        repeats and do not count)."""
        collapsed = [key for key, _ in itertools.groupby(self.asns())]
        return len(collapsed) != len(set(collapsed))

    def prepended(self, asn: int, count: int) -> "AsPath":
        """Return a new path with *asn* prepended *count* times.

        This is how the route server applies prepend-to communities
        before exporting to the targeted peer.
        """
        if count <= 0:
            return self
        head = AsPathSegment(AS_SEQUENCE, (parse_asn(asn),) * count)
        if self.segments and self.segments[0].segment_type == AS_SEQUENCE:
            merged = AsPathSegment(
                AS_SEQUENCE, head.asns + self.segments[0].asns)
            return AsPath((merged,) + self.segments[1:])
        return AsPath((head,) + self.segments)

    def __str__(self) -> str:
        return " ".join(str(segment) for segment in self.segments)

    def __len__(self) -> int:
        return self.length
