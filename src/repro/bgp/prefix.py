"""IP prefix handling built on :mod:`ipaddress`.

Wraps the stdlib network types with the checks a route server performs on
announced prefixes: address-family detection, bogon membership, and the
"too specific / too broad" length bounds from the paper's §3 sanitation
description (IPv4 accepted range is /8../24 on the studied route servers).
"""

from __future__ import annotations

import ipaddress
from typing import Tuple, Union

from .errors import MalformedPrefixError

Network = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]

#: IPv4 bogon prefixes (RFC 6890 special-purpose registries and friends).
BOGON_V4: Tuple[str, ...] = (
    "0.0.0.0/8",        # "this network"
    "10.0.0.0/8",       # RFC 1918
    "100.64.0.0/10",    # RFC 6598 CGN
    "127.0.0.0/8",      # loopback
    "169.254.0.0/16",   # link local
    "172.16.0.0/12",    # RFC 1918
    "192.0.0.0/24",     # IETF protocol assignments
    "192.0.2.0/24",     # TEST-NET-1
    "192.168.0.0/16",   # RFC 1918
    "198.18.0.0/15",    # benchmarking
    "198.51.100.0/24",  # TEST-NET-2
    "203.0.113.0/24",   # TEST-NET-3
    "224.0.0.0/4",      # multicast
    "240.0.0.0/4",      # reserved
)

#: IPv6 bogon prefixes.
BOGON_V6: Tuple[str, ...] = (
    "::/8",             # unspecified/loopback/v4-mapped region
    "100::/64",         # discard-only
    "2001:db8::/32",    # documentation
    "fc00::/7",         # unique local
    "fe80::/10",        # link local
    "ff00::/8",         # multicast
)

_BOGON_V4_NETS = tuple(ipaddress.ip_network(p) for p in BOGON_V4)
_BOGON_V6_NETS = tuple(ipaddress.ip_network(p) for p in BOGON_V6)


def parse_prefix(value: Union[str, Network]) -> Network:
    """Parse a CIDR string into an IPv4Network or IPv6Network.

    >>> parse_prefix("203.0.113.0/24").prefixlen
    24

    Raises:
        MalformedPrefixError: when the string is not valid CIDR, or has
            host bits set (announcements always carry true prefixes).
    """
    if isinstance(value, (ipaddress.IPv4Network, ipaddress.IPv6Network)):
        return value
    if not isinstance(value, str):
        raise MalformedPrefixError(f"cannot parse prefix from {value!r}")
    try:
        return ipaddress.ip_network(value.strip(), strict=True)
    except ValueError as exc:
        raise MalformedPrefixError(f"cannot parse prefix from {value!r}") from exc


def address_family(prefix: Union[str, Network]) -> int:
    """Return 4 or 6 for the given prefix."""
    return parse_prefix(prefix).version


def is_bogon_prefix(prefix: Union[str, Network]) -> bool:
    """Return True when *prefix* overlaps a bogon (special-purpose) block.

    A route server rejects announcements for these; see §3 "filtered
    routes" (bogon prefixes are one of the rejection reasons).
    """
    net = parse_prefix(prefix)
    pool = _BOGON_V4_NETS if net.version == 4 else _BOGON_V6_NETS
    return any(net.overlaps(bogon) for bogon in pool)


def is_too_specific(prefix: Union[str, Network],
                    max_v4: int = 24, max_v6: int = 48) -> bool:
    """Return True when the prefix is longer than the accepted maximum.

    The paper notes route servers reject prefixes "too specific (>/24)".
    """
    net = parse_prefix(prefix)
    limit = max_v4 if net.version == 4 else max_v6
    return net.prefixlen > limit


def is_too_broad(prefix: Union[str, Network],
                 min_v4: int = 8, min_v6: int = 16) -> bool:
    """Return True when the prefix is shorter than the accepted minimum.

    The paper notes route servers reject prefixes "too broad (</8)".
    The default /16 floor for IPv6 mirrors common BIRD RS templates.
    """
    net = parse_prefix(prefix)
    limit = min_v4 if net.version == 4 else min_v6
    return net.prefixlen < limit


def canonical(prefix: Union[str, Network]) -> str:
    """Return the canonical compressed string form of a prefix."""
    return str(parse_prefix(prefix))
