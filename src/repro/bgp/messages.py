"""BGP-4 UPDATE message wire encoding/decoding (RFC 4271 + extensions).

The collector in this reproduction talks JSON to the Looking Glass, but the
route server substrate speaks real BGP framing between simulated peers and
the RS, which keeps the substrate honest: every announced route round-trips
through the actual UPDATE wire format, including the COMMUNITIES (RFC
1997), EXTENDED COMMUNITIES (RFC 4360), and LARGE COMMUNITIES (RFC 8092)
path attributes, 4-octet AS paths (RFC 6793), and MP_REACH_NLRI (RFC 4760)
for IPv6.

Only the pieces needed by the reproduction are implemented; unsupported
attribute types are preserved opaquely so decode→encode is lossless.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .aspath import AS_SEQUENCE, AS_SET, AsPath, AsPathSegment
from .communities import (
    ExtendedCommunity,
    LargeCommunity,
    StandardCommunity,
)
from .errors import MessageDecodeError, MessageEncodeError

MARKER = b"\xff" * 16
HEADER_LEN = 19
MAX_MESSAGE_LEN = 4096

MSG_OPEN = 1
MSG_UPDATE = 2
MSG_NOTIFICATION = 3
MSG_KEEPALIVE = 4

# Path attribute type codes.
ATTR_ORIGIN = 1
ATTR_AS_PATH = 2
ATTR_NEXT_HOP = 3
ATTR_MED = 4
ATTR_LOCAL_PREF = 5
ATTR_COMMUNITIES = 8
ATTR_MP_REACH_NLRI = 14
ATTR_MP_UNREACH_NLRI = 15
ATTR_EXTENDED_COMMUNITIES = 16
ATTR_LARGE_COMMUNITIES = 32

FLAG_OPTIONAL = 0x80
FLAG_TRANSITIVE = 0x40
FLAG_PARTIAL = 0x20
FLAG_EXTENDED_LENGTH = 0x10

ORIGIN_IGP = 0
ORIGIN_EGP = 1
ORIGIN_INCOMPLETE = 2

AFI_IPV4 = 1
AFI_IPV6 = 2
SAFI_UNICAST = 1


def _encode_prefix(prefix: str) -> bytes:
    """NLRI encoding: length byte + minimal address bytes."""
    net = ipaddress.ip_network(prefix)
    nbytes = (net.prefixlen + 7) // 8
    return bytes([net.prefixlen]) + net.network_address.packed[:nbytes]


def _decode_prefixes(blob: bytes, family: int) -> List[str]:
    """Decode a run of NLRI-encoded prefixes."""
    addr_len = 4 if family == 4 else 16
    prefixes: List[str] = []
    offset = 0
    while offset < len(blob):
        plen = blob[offset]
        offset += 1
        nbytes = (plen + 7) // 8
        if nbytes > addr_len or offset + nbytes > len(blob):
            raise MessageDecodeError(
                f"truncated NLRI at offset {offset} (plen {plen})")
        padded = blob[offset:offset + nbytes] + b"\x00" * (addr_len - nbytes)
        offset += nbytes
        address = ipaddress.ip_address(padded)
        prefixes.append(f"{address}/{plen}")
    return prefixes


def _encode_as_path(path: AsPath) -> bytes:
    """Encode AS_PATH with 4-octet ASNs (RFC 6793 capable peers)."""
    out = bytearray()
    for segment in path.segments:
        if len(segment.asns) > 255:
            raise MessageEncodeError("AS_PATH segment too long")
        out.append(segment.segment_type)
        out.append(len(segment.asns))
        for asn in segment.asns:
            out += struct.pack("!I", asn)
    return bytes(out)


def _decode_as_path(blob: bytes) -> AsPath:
    segments: List[AsPathSegment] = []
    offset = 0
    while offset < len(blob):
        if offset + 2 > len(blob):
            raise MessageDecodeError("truncated AS_PATH segment header")
        seg_type, count = blob[offset], blob[offset + 1]
        offset += 2
        need = count * 4
        if seg_type not in (AS_SEQUENCE, AS_SET):
            raise MessageDecodeError(f"bad AS_PATH segment type {seg_type}")
        if offset + need > len(blob):
            raise MessageDecodeError("truncated AS_PATH segment body")
        asns = struct.unpack(f"!{count}I", blob[offset:offset + need])
        offset += need
        segments.append(AsPathSegment(seg_type, asns))
    if not segments:
        raise MessageDecodeError("empty AS_PATH")
    return AsPath(tuple(segments))


@dataclass(frozen=True)
class PathAttribute:
    """A raw path attribute (flags, type code, value bytes)."""

    flags: int
    type_code: int
    value: bytes

    def encode(self) -> bytes:
        flags = self.flags
        if len(self.value) > 255:
            flags |= FLAG_EXTENDED_LENGTH
            header = struct.pack("!BBH", flags, self.type_code,
                                 len(self.value))
        else:
            flags &= ~FLAG_EXTENDED_LENGTH
            header = struct.pack("!BBB", flags, self.type_code,
                                 len(self.value))
        return header + self.value


@dataclass
class UpdateMessage:
    """A decoded BGP UPDATE.

    ``nlri``/``withdrawn`` carry IPv4 prefixes from the classic fields;
    IPv6 reachability travels in ``mp_nlri``/``mp_withdrawn`` per RFC 4760.
    """

    nlri: List[str] = field(default_factory=list)
    withdrawn: List[str] = field(default_factory=list)
    origin: Optional[int] = None
    as_path: Optional[AsPath] = None
    next_hop: Optional[str] = None
    med: Optional[int] = None
    local_pref: Optional[int] = None
    communities: Tuple[StandardCommunity, ...] = ()
    extended_communities: Tuple[ExtendedCommunity, ...] = ()
    large_communities: Tuple[LargeCommunity, ...] = ()
    mp_nlri: List[str] = field(default_factory=list)
    mp_next_hop: Optional[str] = None
    mp_withdrawn: List[str] = field(default_factory=list)
    unknown_attributes: List[PathAttribute] = field(default_factory=list)

    # -- encoding ----------------------------------------------------

    def _path_attributes(self) -> List[PathAttribute]:
        attrs: List[PathAttribute] = []
        if self.origin is not None:
            attrs.append(PathAttribute(
                FLAG_TRANSITIVE, ATTR_ORIGIN, bytes([self.origin])))
        if self.as_path is not None:
            attrs.append(PathAttribute(
                FLAG_TRANSITIVE, ATTR_AS_PATH, _encode_as_path(self.as_path)))
        if self.next_hop is not None:
            packed = ipaddress.ip_address(self.next_hop).packed
            if len(packed) != 4:
                raise MessageEncodeError(
                    "NEXT_HOP attribute is IPv4-only; use mp_next_hop")
            attrs.append(PathAttribute(FLAG_TRANSITIVE, ATTR_NEXT_HOP, packed))
        if self.med is not None:
            attrs.append(PathAttribute(
                FLAG_OPTIONAL, ATTR_MED, struct.pack("!I", self.med)))
        if self.local_pref is not None:
            attrs.append(PathAttribute(
                FLAG_TRANSITIVE, ATTR_LOCAL_PREF,
                struct.pack("!I", self.local_pref)))
        if self.communities:
            blob = b"".join(c.to_bytes() for c in sorted(self.communities))
            attrs.append(PathAttribute(
                FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_COMMUNITIES, blob))
        if self.extended_communities:
            blob = b"".join(
                c.to_bytes() for c in sorted(self.extended_communities))
            attrs.append(PathAttribute(
                FLAG_OPTIONAL | FLAG_TRANSITIVE,
                ATTR_EXTENDED_COMMUNITIES, blob))
        if self.large_communities:
            blob = b"".join(
                c.to_bytes() for c in sorted(self.large_communities))
            attrs.append(PathAttribute(
                FLAG_OPTIONAL | FLAG_TRANSITIVE,
                ATTR_LARGE_COMMUNITIES, blob))
        if self.mp_nlri:
            if self.mp_next_hop is None:
                raise MessageEncodeError("mp_nlri requires mp_next_hop")
            next_hop = ipaddress.ip_address(self.mp_next_hop).packed
            body = struct.pack("!HBB", AFI_IPV6, SAFI_UNICAST, len(next_hop))
            body += next_hop + b"\x00"  # reserved SNPA byte
            body += b"".join(_encode_prefix(p) for p in self.mp_nlri)
            attrs.append(PathAttribute(
                FLAG_OPTIONAL, ATTR_MP_REACH_NLRI, body))
        if self.mp_withdrawn:
            body = struct.pack("!HB", AFI_IPV6, SAFI_UNICAST)
            body += b"".join(_encode_prefix(p) for p in self.mp_withdrawn)
            attrs.append(PathAttribute(
                FLAG_OPTIONAL, ATTR_MP_UNREACH_NLRI, body))
        attrs.extend(self.unknown_attributes)
        return attrs

    def encode(self) -> bytes:
        """Serialise to a full BGP message (header + body)."""
        withdrawn = b"".join(_encode_prefix(p) for p in self.withdrawn)
        attrs = b"".join(a.encode() for a in self._path_attributes())
        nlri = b"".join(_encode_prefix(p) for p in self.nlri)
        body = (struct.pack("!H", len(withdrawn)) + withdrawn
                + struct.pack("!H", len(attrs)) + attrs + nlri)
        total = HEADER_LEN + len(body)
        if total > MAX_MESSAGE_LEN:
            raise MessageEncodeError(
                f"UPDATE would be {total} bytes (max {MAX_MESSAGE_LEN})")
        return MARKER + struct.pack("!HB", total, MSG_UPDATE) + body

    # -- decoding ----------------------------------------------------

    @classmethod
    def decode(cls, blob: bytes) -> "UpdateMessage":
        """Parse a full BGP message; must be a single UPDATE."""
        msg_type, body = decode_header(blob)
        if msg_type != MSG_UPDATE:
            raise MessageDecodeError(f"not an UPDATE (type {msg_type})")
        if len(body) < 4:
            raise MessageDecodeError("UPDATE body too short")
        update = cls()
        (withdrawn_len,) = struct.unpack("!H", body[:2])
        offset = 2
        if offset + withdrawn_len > len(body):
            raise MessageDecodeError("withdrawn length exceeds body")
        update.withdrawn = _decode_prefixes(
            body[offset:offset + withdrawn_len], 4)
        offset += withdrawn_len
        (attrs_len,) = struct.unpack("!H", body[offset:offset + 2])
        offset += 2
        if offset + attrs_len > len(body):
            raise MessageDecodeError("attribute length exceeds body")
        attrs_end = offset + attrs_len
        while offset < attrs_end:
            flags = body[offset]
            type_code = body[offset + 1]
            if flags & FLAG_EXTENDED_LENGTH:
                (length,) = struct.unpack("!H", body[offset + 2:offset + 4])
                offset += 4
            else:
                length = body[offset + 2]
                offset += 3
            if offset + length > attrs_end:
                raise MessageDecodeError(
                    f"attribute {type_code} overruns attribute section")
            value = body[offset:offset + length]
            offset += length
            update._apply_attribute(flags, type_code, value)
        update.nlri = _decode_prefixes(body[attrs_end:], 4)
        return update

    def _apply_attribute(self, flags: int, type_code: int,
                         value: bytes) -> None:
        if type_code == ATTR_ORIGIN:
            self.origin = value[0]
        elif type_code == ATTR_AS_PATH:
            self.as_path = _decode_as_path(value)
        elif type_code == ATTR_NEXT_HOP:
            self.next_hop = str(ipaddress.ip_address(value))
        elif type_code == ATTR_MED:
            (self.med,) = struct.unpack("!I", value)
        elif type_code == ATTR_LOCAL_PREF:
            (self.local_pref,) = struct.unpack("!I", value)
        elif type_code == ATTR_COMMUNITIES:
            if len(value) % 4:
                raise MessageDecodeError("COMMUNITIES length not * 4")
            self.communities = tuple(
                StandardCommunity.from_bytes(value[i:i + 4])
                for i in range(0, len(value), 4))
        elif type_code == ATTR_EXTENDED_COMMUNITIES:
            if len(value) % 8:
                raise MessageDecodeError("EXT COMMUNITIES length not * 8")
            self.extended_communities = tuple(
                ExtendedCommunity.from_bytes(value[i:i + 8])
                for i in range(0, len(value), 8))
        elif type_code == ATTR_LARGE_COMMUNITIES:
            if len(value) % 12:
                raise MessageDecodeError("LARGE COMMUNITIES length not * 12")
            self.large_communities = tuple(
                LargeCommunity.from_bytes(value[i:i + 12])
                for i in range(0, len(value), 12))
        elif type_code == ATTR_MP_REACH_NLRI:
            if len(value) < 5:
                raise MessageDecodeError("MP_REACH too short")
            afi, safi, nh_len = struct.unpack("!HBB", value[:4])
            if afi != AFI_IPV6 or safi != SAFI_UNICAST:
                self.unknown_attributes.append(
                    PathAttribute(flags, type_code, value))
                return
            next_hop = value[4:4 + nh_len]
            self.mp_next_hop = str(ipaddress.ip_address(next_hop[:16]))
            rest = value[4 + nh_len + 1:]  # skip reserved byte
            self.mp_nlri = _decode_prefixes(rest, 6)
        elif type_code == ATTR_MP_UNREACH_NLRI:
            afi, safi = struct.unpack("!HB", value[:3])
            if afi != AFI_IPV6 or safi != SAFI_UNICAST:
                self.unknown_attributes.append(
                    PathAttribute(flags, type_code, value))
                return
            self.mp_withdrawn = _decode_prefixes(value[3:], 6)
        else:
            self.unknown_attributes.append(
                PathAttribute(flags, type_code, value))


def decode_header(blob: bytes) -> Tuple[int, bytes]:
    """Validate a BGP message header; return (type, body)."""
    if len(blob) < HEADER_LEN:
        raise MessageDecodeError(f"message too short: {len(blob)} bytes")
    if blob[:16] != MARKER:
        raise MessageDecodeError("bad marker")
    (length, msg_type) = struct.unpack("!HB", blob[16:19])
    if length != len(blob):
        raise MessageDecodeError(
            f"length field {length} != actual {len(blob)}")
    if not HEADER_LEN <= length <= MAX_MESSAGE_LEN:
        raise MessageDecodeError(f"length field out of range: {length}")
    return msg_type, blob[HEADER_LEN:]


def encode_keepalive() -> bytes:
    """A KEEPALIVE is just the 19-byte header."""
    return MARKER + struct.pack("!HB", HEADER_LEN, MSG_KEEPALIVE)
