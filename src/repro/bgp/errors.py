"""Exception hierarchy for the BGP substrate.

Every error raised by :mod:`repro.bgp` derives from :class:`BgpError`, so
callers can catch substrate-level failures with a single ``except`` clause
while still being able to distinguish parse errors from semantic ones.
"""

from __future__ import annotations


class BgpError(Exception):
    """Base class for all BGP substrate errors."""


class MalformedCommunityError(BgpError, ValueError):
    """A community string or wire blob could not be parsed."""


class MalformedPrefixError(BgpError, ValueError):
    """A prefix string could not be parsed as IPv4/IPv6 CIDR."""


class MalformedAsnError(BgpError, ValueError):
    """An AS number is out of range or syntactically invalid."""

class MalformedAsPathError(BgpError, ValueError):
    """An AS_PATH attribute is empty, malformed, or inconsistent."""


class MessageDecodeError(BgpError, ValueError):
    """A BGP wire message could not be decoded."""


class MessageEncodeError(BgpError, ValueError):
    """A BGP message could not be encoded to the wire format."""
