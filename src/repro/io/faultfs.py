"""Deterministic filesystem fault injection for multi-host campaigns.

Every filesystem operation the dataset store's durability machinery
performs — create-exclusive ``link`` claims, ``replace`` publishes,
``fsync``, ``stat``, manifest ``flock`` — goes through a
:class:`FileSystem` shim instead of calling :mod:`os` directly. The
default :class:`LocalFS` is a zero-cost passthrough; a :class:`FaultFS`
wraps it with a seeded :class:`FsFaultPlan` that injects the failure
modes a shared NFS export actually exhibits:

``eio`` / ``estale``
    transient errors a retry can clear (server hiccup, stale handle).
``enospc``
    a full export — *fatal*: retrying cannot help, the worker must
    park rather than spin or corrupt.
``ambiguous_link``
    the classic NFS retransmit hazard: the ``link()``/``replace()``
    **succeeded on the server** but the reply was lost, so the client
    sees an error. The operation's effect is real; the caller must
    resolve the ambiguity by *post-checking* state, never by assuming
    failure.
``hidden``
    delayed cross-host visibility (attribute-cache staleness): a file
    another host just created is not visible yet — ``stat``/``read``
    raise ``FileNotFoundError``, ``exists`` answers ``False``, and
    ``listdir`` omits the newest entry.
``slow``
    I/O latency without an error, for timing-window races.

Faults fire deterministically: each :class:`FsFaultRule` matches an
operation + path glob, skips its first ``start_after`` matching calls,
then fires up to ``max_faults`` times (optionally gated by a seeded
probability). Plans serialise to JSON and ship to worker subprocesses
via the ``REPRO_FS_FAULT_PLAN`` environment variable, mirroring the
``CrashSchedule`` pattern. Every injected fault is counted locally
(for worker reports) and in ``repro_fs_faults_total{op,kind}``.

The module also owns the two protocol ingredients the hardened lease
layer needs: :func:`host_identity` (hostname + pid + per-process boot
nonce, so fencing survives pid reuse across machines) and
:func:`with_fs_retries` (shared full-jitter retry discipline that
retries transient errors and lets fatal ones escape immediately).
"""

from __future__ import annotations

import errno
import fcntl
import fnmatch
import json
import os
import random
import socket
import threading
import time
import types
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from .. import obs

# --------------------------------------------------------------------------
# fault taxonomy

FAULT_EIO = "eio"
FAULT_ESTALE = "estale"
FAULT_ENOSPC = "enospc"
FAULT_AMBIGUOUS_LINK = "ambiguous_link"
FAULT_HIDDEN = "hidden"
FAULT_SLOW = "slow"

FAULT_KINDS = (FAULT_EIO, FAULT_ESTALE, FAULT_ENOSPC,
               FAULT_AMBIGUOUS_LINK, FAULT_HIDDEN, FAULT_SLOW)

#: operations the shim mediates; rules name one of these (or ``*``).
FS_OPS = ("open", "fsync", "link", "replace", "stat", "read", "write",
          "unlink", "listdir", "exists", "flock")

#: errnos a bounded retry may clear.
TRANSIENT_ERRNOS = frozenset({errno.EIO, errno.ESTALE})
#: errnos where retrying is useless and the worker must park.
FATAL_ERRNOS = frozenset({errno.ENOSPC, errno.EDQUOT, errno.EROFS})

#: environment variable carrying a JSON FsFaultPlan into subprocesses.
FAULT_PLAN_ENV = "REPRO_FS_FAULT_PLAN"


class StorageUnavailable(Exception):
    """The shared store is unusable (full, read-only, or persistently
    erroring) — the worker should park (exit 2), not retry or spin."""

    def __init__(self, message: str, *, errno_value: Optional[int] = None):
        super().__init__(message)
        self.errno_value = errno_value


def is_transient_fs_error(exc: BaseException) -> bool:
    """True when *exc* is an OSError a retry might clear."""
    return isinstance(exc, OSError) and exc.errno in TRANSIENT_ERRNOS


def is_fatal_fs_error(exc: BaseException) -> bool:
    """True when *exc* is an OSError retrying can never clear."""
    return isinstance(exc, OSError) and exc.errno in FATAL_ERRNOS


# --------------------------------------------------------------------------
# host identity

_BOOT_NONCE: Optional[str] = None
_BOOT_NONCE_LOCK = threading.Lock()


def _boot_nonce() -> str:
    """A per-process random nonce, stable for the process lifetime."""
    global _BOOT_NONCE
    if _BOOT_NONCE is None:
        with _BOOT_NONCE_LOCK:
            if _BOOT_NONCE is None:
                _BOOT_NONCE = os.urandom(4).hex()
    return _BOOT_NONCE


@dataclass(frozen=True)
class HostIdentity:
    """Who holds a lease: host name, pid, and a boot nonce so a reused
    pid on another machine (or a restarted process on the same one)
    can never impersonate a dead holder."""

    host: str
    pid: int
    nonce: str

    def __str__(self) -> str:
        return f"{self.host}:{self.pid}:{self.nonce}"

    @classmethod
    def parse(cls, text: str) -> "HostIdentity":
        # format is host:pid:nonce — host may itself contain ':' only if
        # the operator passed one via --host-id, so split from the right.
        parts = text.rsplit(":", 2)
        if len(parts) != 3:
            return cls(host=text, pid=0, nonce="")
        try:
            pid_value = int(parts[1])
        except ValueError:
            pid_value = 0
        return cls(host=parts[0], pid=pid_value, nonce=parts[2])


def host_identity(host_name: Optional[str] = None) -> HostIdentity:
    """This process's identity, with *host_name* overriding the
    hostname (the CLI's ``--host-id`` lands here)."""
    return HostIdentity(
        host=host_name or socket.gethostname() or "localhost",
        pid=os.getpid(),
        nonce=_boot_nonce(),
    )


# --------------------------------------------------------------------------
# filesystem shim


class FileSystem:
    """The operations the store-level durability code needs, routed
    through one object so a fault injector can sit in front of them.
    Paths are accepted as ``str`` or ``Path``."""

    def open(self, path, mode: str = "r", **kwargs):
        return open(path, mode, **kwargs)

    def fsync(self, fd: int) -> None:
        os.fsync(fd)

    def link(self, src, dst) -> None:
        os.link(src, dst)

    def replace(self, src, dst) -> None:
        os.replace(src, dst)

    def stat(self, path) -> os.stat_result:
        return os.stat(path)

    def read_bytes(self, path) -> bytes:
        return Path(path).read_bytes()

    def write_bytes(self, path, data: bytes) -> int:
        return Path(path).write_bytes(data)

    def unlink(self, path) -> None:
        os.unlink(path)

    def listdir(self, path) -> List[str]:
        return sorted(os.listdir(path))

    def exists(self, path) -> bool:
        return os.path.exists(path)

    def flock(self, fd: int, flags: int) -> None:
        fcntl.flock(fd, flags)


class LocalFS(FileSystem):
    """Direct passthrough to the local POSIX filesystem."""


LOCAL_FS = LocalFS()


# --------------------------------------------------------------------------
# fault plans


@dataclass
class FsFaultRule:
    """One deterministic fault: fire *kind* on operation *op* for paths
    matching *path_glob*, after skipping the first *start_after*
    matching calls, at most *max_faults* times."""

    op: str
    kind: str
    path_glob: str = "*"
    start_after: int = 0
    max_faults: int = 1
    probability: float = 1.0
    delay: float = 0.0

    # runtime counters (not serialised)
    calls: int = field(default=0, repr=False, compare=False)
    fired: int = field(default=0, repr=False, compare=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "op": self.op, "kind": self.kind, "path_glob": self.path_glob,
            "start_after": self.start_after, "max_faults": self.max_faults,
            "probability": self.probability, "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FsFaultRule":
        kind = str(payload.get("kind", ""))
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {kind!r}")
        op = str(payload.get("op", ""))
        if op != "*" and op not in FS_OPS:
            raise ValueError(f"unknown fs op: {op!r}")
        return cls(
            op=op,
            kind=kind,
            path_glob=str(payload.get("path_glob", "*")),
            start_after=int(payload.get("start_after", 0)),
            max_faults=int(payload.get("max_faults", 1)),
            probability=float(payload.get("probability", 1.0)),
            delay=float(payload.get("delay", 0.0)),
        )

    def matches(self, op: str, path: str) -> bool:
        if self.op != "*" and self.op != op:
            return False
        return fnmatch.fnmatch(path, self.path_glob)


@dataclass
class FsFaultPlan:
    """A seeded, bounded collection of fault rules. The seed drives the
    probability gates only; with ``probability=1.0`` rules the plan is
    fully deterministic regardless of seed."""

    rules: List[FsFaultRule] = field(default_factory=list)
    seed: int = 0

    def to_json(self) -> str:
        return json.dumps({
            "version": 1,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FsFaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("fault plan must be a JSON object")
        rules = [FsFaultRule.from_dict(entry)
                 for entry in payload.get("rules", [])]
        return cls(rules=rules, seed=int(payload.get("seed", 0)))


_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    faults=reg.counter(
        "repro_fs_faults_total",
        "Filesystem faults injected by faultfs, by operation and kind",
        ("op", "kind")),
    retries=reg.counter(
        "repro_fs_retries_total",
        "Retries of store filesystem operations after transient faults",
        ("op",)),
))


def record_fault_counts(counts: Dict[str, int]) -> None:
    """Fold externally observed fault counts (a worker subprocess's
    report) into ``repro_fs_faults_total`` — keys are ``op:kind``."""
    metrics = _METRICS()
    for key, value in counts.items():
        op, _, kind = key.partition(":")
        if value:
            metrics.faults.labels(op or "unknown",
                                  kind or "unknown").inc(int(value))


def record_retry(op: str, count: int = 1) -> None:
    if count:
        _METRICS().retries.labels(op).inc(count)


class FaultFS(FileSystem):
    """A :class:`FileSystem` that consults an :class:`FsFaultPlan`
    before delegating to an inner filesystem.

    ``ambiguous_link`` is the interesting one: the real operation is
    *performed first*, then the error is raised — exactly the NFS
    retransmit hazard where the server applied the call but the client
    never saw the reply.
    """

    def __init__(self, plan: FsFaultPlan,
                 inner: Optional[FileSystem] = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.plan = plan
        self.inner = inner or LOCAL_FS
        self.sleep = sleep
        self.rng = random.Random(plan.seed)
        self.fault_counts: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- plan consultation -------------------------------------------------

    def _consult(self, op: str, path) -> Optional[FsFaultRule]:
        text = str(path)
        with self._lock:
            for rule in self.plan.rules:
                if not rule.matches(op, text):
                    continue
                rule.calls += 1
                if rule.calls <= rule.start_after:
                    continue
                if rule.fired >= rule.max_faults:
                    continue
                if rule.probability < 1.0 and \
                        self.rng.random() >= rule.probability:
                    continue
                rule.fired += 1
                key = f"{op}:{rule.kind}"
                self.fault_counts[key] = self.fault_counts.get(key, 0) + 1
                _METRICS().faults.labels(op, rule.kind).inc()
                return rule
        return None

    def _raise(self, rule: FsFaultRule, op: str, path) -> None:
        if rule.kind == FAULT_EIO:
            raise OSError(errno.EIO, f"faultfs: injected EIO on {op}",
                          str(path))
        if rule.kind == FAULT_ESTALE:
            raise OSError(errno.ESTALE,
                          f"faultfs: injected ESTALE on {op}", str(path))
        if rule.kind == FAULT_ENOSPC:
            raise OSError(errno.ENOSPC,
                          f"faultfs: injected ENOSPC on {op}", str(path))
        raise AssertionError(f"unreachable fault kind {rule.kind}")

    # -- mediated operations ----------------------------------------------

    def open(self, path, mode: str = "r", **kwargs):
        rule = self._consult("open", path)
        if rule is not None:
            if rule.kind == FAULT_SLOW:
                self.sleep(rule.delay)
            elif rule.kind == FAULT_HIDDEN:
                raise FileNotFoundError(
                    errno.ENOENT, "faultfs: not yet visible", str(path))
            else:
                self._raise(rule, "open", path)
        return self.inner.open(path, mode, **kwargs)

    def fsync(self, fd: int) -> None:
        rule = self._consult("fsync", f"fd:{fd}")
        if rule is not None:
            if rule.kind == FAULT_SLOW:
                self.sleep(rule.delay)
            else:
                self._raise(rule, "fsync", f"fd:{fd}")
        self.inner.fsync(fd)

    def link(self, src, dst) -> None:
        rule = self._consult("link", dst)
        if rule is not None:
            if rule.kind == FAULT_SLOW:
                self.sleep(rule.delay)
            elif rule.kind == FAULT_AMBIGUOUS_LINK:
                # the NFS retransmit hazard: the server performed the
                # link, the client saw an error.
                self.inner.link(src, dst)
                raise OSError(errno.EIO,
                              "faultfs: ambiguous link (performed)",
                              str(dst))
            else:
                self._raise(rule, "link", dst)
        self.inner.link(src, dst)

    def replace(self, src, dst) -> None:
        rule = self._consult("replace", dst)
        if rule is not None:
            if rule.kind == FAULT_SLOW:
                self.sleep(rule.delay)
            elif rule.kind == FAULT_AMBIGUOUS_LINK:
                self.inner.replace(src, dst)
                raise OSError(errno.EIO,
                              "faultfs: ambiguous replace (performed)",
                              str(dst))
            else:
                self._raise(rule, "replace", dst)
        self.inner.replace(src, dst)

    def stat(self, path) -> os.stat_result:
        rule = self._consult("stat", path)
        if rule is not None:
            if rule.kind == FAULT_SLOW:
                self.sleep(rule.delay)
            elif rule.kind == FAULT_HIDDEN:
                raise FileNotFoundError(
                    errno.ENOENT, "faultfs: not yet visible", str(path))
            else:
                self._raise(rule, "stat", path)
        return self.inner.stat(path)

    def read_bytes(self, path) -> bytes:
        rule = self._consult("read", path)
        if rule is not None:
            if rule.kind == FAULT_SLOW:
                self.sleep(rule.delay)
            elif rule.kind == FAULT_HIDDEN:
                raise FileNotFoundError(
                    errno.ENOENT, "faultfs: not yet visible", str(path))
            else:
                self._raise(rule, "read", path)
        return self.inner.read_bytes(path)

    def write_bytes(self, path, data: bytes) -> int:
        rule = self._consult("write", path)
        if rule is not None:
            if rule.kind == FAULT_SLOW:
                self.sleep(rule.delay)
            else:
                self._raise(rule, "write", path)
        return self.inner.write_bytes(path, data)

    def unlink(self, path) -> None:
        rule = self._consult("unlink", path)
        if rule is not None:
            if rule.kind == FAULT_SLOW:
                self.sleep(rule.delay)
            else:
                self._raise(rule, "unlink", path)
        self.inner.unlink(path)

    def listdir(self, path) -> List[str]:
        entries = self.inner.listdir(path)
        rule = self._consult("listdir", path)
        if rule is not None:
            if rule.kind == FAULT_SLOW:
                self.sleep(rule.delay)
            elif rule.kind == FAULT_HIDDEN:
                # attribute-cache staleness: the *newest* entry (the
                # one another host just created) is not visible yet.
                return entries[:-1] if entries else entries
            else:
                self._raise(rule, "listdir", path)
        return entries

    def exists(self, path) -> bool:
        rule = self._consult("exists", path)
        if rule is not None:
            if rule.kind == FAULT_SLOW:
                self.sleep(rule.delay)
            elif rule.kind == FAULT_HIDDEN:
                return False
            else:
                self._raise(rule, "exists", path)
        return self.inner.exists(path)

    def flock(self, fd: int, flags: int) -> None:
        rule = self._consult("flock", f"fd:{fd}")
        if rule is not None:
            if rule.kind == FAULT_SLOW:
                self.sleep(rule.delay)
            else:
                self._raise(rule, "flock", f"fd:{fd}")
        self.inner.flock(fd, flags)


# --------------------------------------------------------------------------
# process-global active filesystem

_ACTIVE_FS: FileSystem = LOCAL_FS
_ACTIVE_LOCK = threading.Lock()


def active_fs() -> FileSystem:
    """The filesystem store-level code should route through."""
    return _ACTIVE_FS


def install(fs: FileSystem) -> FileSystem:
    """Install *fs* as the process-global filesystem; returns the
    previous one so tests can restore it."""
    global _ACTIVE_FS
    with _ACTIVE_LOCK:
        previous = _ACTIVE_FS
        _ACTIVE_FS = fs
    return previous


def deactivate() -> None:
    """Restore the passthrough local filesystem."""
    install(LOCAL_FS)


def install_from_env(environ=None) -> Optional[FaultFS]:
    """Install a :class:`FaultFS` from ``REPRO_FS_FAULT_PLAN`` if the
    variable is set (worker subprocesses call this at startup)."""
    env = environ if environ is not None else os.environ
    text = env.get(FAULT_PLAN_ENV)
    if not text:
        return None
    fs = FaultFS(FsFaultPlan.from_json(text))
    install(fs)
    return fs


# --------------------------------------------------------------------------
# retry discipline

T = TypeVar("T")

#: default retry budget for store-level operations.
FS_RETRY_ATTEMPTS = 6
FS_RETRY_BASE = 0.005
FS_RETRY_CAP = 0.1


def with_fs_retries(operation: Callable[[], T], *, label: str,
                    attempts: int = FS_RETRY_ATTEMPTS,
                    base: float = FS_RETRY_BASE,
                    cap: float = FS_RETRY_CAP,
                    rng: Optional[random.Random] = None,
                    sleep: Callable[[float], None] = time.sleep) -> T:
    """Run *operation*, retrying transient filesystem errors with the
    shared full-jitter backoff.

    Fatal errors (``ENOSPC``/``EDQUOT``/``EROFS``) escape as
    :class:`StorageUnavailable` immediately — retrying a full disk only
    delays the inevitable. A transient errno that survives the whole
    budget is persistent by definition and also escapes as
    :class:`StorageUnavailable`. Non-OSError exceptions and OSErrors
    outside both sets (``FileExistsError``, ``FileNotFoundError``, …)
    propagate untouched: they are *outcomes*, not faults.
    """
    from ..net.backoff import full_jitter_delay

    last: Optional[OSError] = None
    for attempt in range(max(1, attempts)):
        try:
            return operation()
        except OSError as exc:
            if is_fatal_fs_error(exc):
                raise StorageUnavailable(
                    f"{label}: fatal storage error: {exc}",
                    errno_value=exc.errno) from exc
            if not is_transient_fs_error(exc):
                raise
            last = exc
            if attempt + 1 < max(1, attempts):
                record_retry(label)
                sleep(full_jitter_delay(attempt, base, cap, rng))
    raise StorageUnavailable(
        f"{label}: transient storage error persisted after "
        f"{max(1, attempts)} attempts: {last}",
        errno_value=getattr(last, "errno", None)) from last
