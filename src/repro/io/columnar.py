"""Interned columnar snapshot codec (the ``columnar`` payload format).

Snapshots are stored on disk as integrity-enveloped JSON payloads
(:mod:`repro.collector.integrity`). The default payload is
``Snapshot.to_dict()`` — a route *list* that spells out every prefix,
AS-path, and community string per route. That encoding is the scaling
bottleneck for year-scale campaigns: route attributes at an IXP route
server are massively repetitive (a few hundred distinct AS-path tails
and community sets cover hundreds of thousands of routes), but the
route-major JSON layout scatters the repeats beyond gzip's 32 KiB
window and pays a full text parse per route on load.

This module provides a second *payload codec* behind the same
envelope. The columnar payload keeps the snapshot's scalar fields and
member list as plain JSON (so the store's schema tripwire — see
``REQUIRED_PAYLOAD_KEYS`` — is satisfied unchanged) and replaces the
route list with one LZMA-compressed binary body holding interned
column data:

* **runs** — routes come grouped in maximal stretches sharing
  ``(peer_asn, next_hop)`` (the shape the route server emits), so both
  columns collapse to one run header each;
* **prefix pool** — distinct prefixes, numerically sorted,
  delta-encoded (IPv6 addresses split into high/low 64-bit halves so
  sparse address space doesn't blow up the varints); per-route prefix
  references are zigzag deltas within each run;
* **AS-path tails** — paths are stored as interned *tails* (the path
  minus the leading peer ASN) attached per *prefix*, with per-route
  exceptions, because at a route server the tail is a function of the
  announcement, not of the receiving peer;
* **community set table** — each run carries a frequency-ordered
  dictionary of its distinct community strings (all three flavours in
  one pool; ``parse_community`` dispatch is structurally unambiguous)
  and a frequency-ordered table of the distinct community *sets* its
  routes attach (each set a sorted gap-varint id list into the
  dictionary). Routes repeat whole sets — an export policy tags every
  announcement it covers identically — so the per-route cost is a
  single small set-id varint, not one membership bit per community.

Every section is varint-framed, the whole body is compressed with
``lzma`` (``FORMAT_ALONE``, far better than the envelope's gzip on
bit-plane data) and embedded as base64, so the artefact on disk is
still a gzipped JSON envelope: manifests, fsck, quarantine, publish,
and the aggregate cache key all work unchanged on either codec.

Decoding is the performance story: community sets, AS paths, and
prefix strings are materialised once per distinct value and shared
across routes, and ``Route`` construction bypasses ``__post_init__``
(the pool entries are canonical by construction), making loads several
times faster than parsing the equivalent JSON route list.
"""

from __future__ import annotations

import base64
import binascii
import ipaddress
import lzma
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from ..bgp.aspath import AsPath
from ..bgp.communities import (
    ExtendedCommunity,
    LargeCommunity,
    parse_community,
)
from ..bgp.route import Route
from ..collector.snapshot import Snapshot
from ..ixp.member import Member

#: codec registry — the value stored in the payload's ``codec`` key.
JSON_CODEC = "json"
COLUMNAR_CODEC = "columnar"
SNAPSHOT_CODECS = (JSON_CODEC, COLUMNAR_CODEC)

#: version of the columnar body layout.
COLUMNAR_VERSION = 1

#: LZMA container for the body. ``FORMAT_ALONE`` has the smallest
#: header; integrity is the envelope's job, not the compressor's.
_LZMA_FORMAT = lzma.FORMAT_ALONE
_LZMA_PRESET = 6

#: marker prefixing a stored tail that is a *full* path (the route's
#: path did not start with its peer ASN, so it cannot be rebuilt from
#: ``peer + tail``). ``!`` cannot appear in an AS path string.
_FULL_PATH_MARK = "!"


class ColumnarFormatError(ValueError):
    """Raised when a columnar body cannot be decoded.

    Subclasses :class:`ValueError` so the store's snapshot read path
    classifies a mangled body as schema drift — the same damage
    taxonomy as a JSON payload that fails ``Snapshot.from_dict``.
    """


# -- varint plumbing -----------------------------------------------------

def _write_uvarint(value: int, out: bytearray) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_svarint(value: int, out: bytearray) -> None:
    _write_uvarint(value << 1 if value >= 0 else ((-value) << 1) - 1, out)


def _write_str(text: str, out: bytearray) -> None:
    raw = text.encode("utf-8")
    _write_uvarint(len(raw), out)
    out += raw


class _Cursor:
    """Sequential reader over the decompressed body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def uvarint(self) -> int:
        data, pos = self.data, self.pos
        result = 0
        shift = 0
        while True:
            try:
                byte = data[pos]
            except IndexError:
                raise ColumnarFormatError("truncated varint") from None
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self.pos = pos
                return result
            shift += 7

    def svarint(self) -> int:
        value = self.uvarint()
        return (value >> 1) if not value & 1 else -((value + 1) >> 1)

    def text(self) -> str:
        length = self.uvarint()
        raw = self.take(length)
        return raw.decode("utf-8")

    def take(self, length: int) -> bytes:
        end = self.pos + length
        if end > len(self.data):
            raise ColumnarFormatError("truncated section")
        raw = self.data[self.pos:end]
        self.pos = end
        return raw

    def done(self) -> bool:
        return self.pos == len(self.data)


# -- encoding ------------------------------------------------------------

def _route_tail(route: Route) -> str:
    """The stored path tail: path minus a leading peer ASN, or the
    full path behind :data:`_FULL_PATH_MARK` when it doesn't start
    with the peer (possible in hand-built or adversarial snapshots)."""
    text = str(route.as_path)
    peer = str(route.peer_asn)
    if text == peer:
        return ""
    if text.startswith(peer + " "):
        return text[len(peer) + 1:]
    return _FULL_PATH_MARK + text


def _community_strings(route: Route) -> List[str]:
    return [str(c) for c in route.communities] \
        + [str(c) for c in route.extended_communities] \
        + [str(c) for c in route.large_communities]


def _encode_body(routes: List[Route]) -> bytes:
    body = bytearray()
    _write_uvarint(COLUMNAR_VERSION, body)
    _write_uvarint(len(routes), body)

    # -- runs of (peer_asn, next_hop) ---------------------------------
    runs: List[Tuple[int, str, List[Route]]] = []
    for route in routes:
        if runs and runs[-1][0] == route.peer_asn \
                and runs[-1][1] == route.next_hop:
            runs[-1][2].append(route)
        else:
            runs.append((route.peer_asn, route.next_hop, [route]))
    _write_uvarint(len(runs), body)

    # -- prefix pool, numerically sorted ------------------------------
    networks = {route.prefix: ipaddress.ip_network(route.prefix)
                for route in routes}
    pool = sorted(networks, key=lambda p: (
        networks[p].version, int(networks[p].network_address),
        networks[p].prefixlen))
    pool_index = {prefix: i for i, prefix in enumerate(pool)}
    v4 = [p for p in pool if networks[p].version == 4]
    v6 = pool[len(v4):]
    _write_uvarint(len(v4), body)
    _write_uvarint(len(v6), body)
    previous = 0
    for prefix in v4:
        address = int(networks[prefix].network_address)
        _write_uvarint(address - previous, body)
        previous = address
    previous_high = 0
    for prefix in v6:
        address = int(networks[prefix].network_address)
        high, low = address >> 64, address & 0xFFFFFFFFFFFFFFFF
        _write_uvarint(high - previous_high, body)
        _write_uvarint(low, body)
        previous_high = high
    body += bytes(networks[prefix].prefixlen for prefix in pool)

    # -- AS-path tails: per-prefix default + per-route exceptions -----
    tail_index: Dict[str, int] = {}
    default_tail: Dict[str, int] = {}
    exceptions: List[Tuple[int, int]] = []
    for position, route in enumerate(routes):
        tail = _route_tail(route)
        tail_id = tail_index.setdefault(tail, len(tail_index))
        if route.prefix not in default_tail:
            default_tail[route.prefix] = tail_id
        elif tail_id != default_tail[route.prefix]:
            exceptions.append((position, tail_id))
    _write_uvarint(len(tail_index), body)
    for tail in tail_index:           # insertion order == id order
        _write_str(tail, body)
    for prefix in pool:
        _write_uvarint(default_tail[prefix], body)
    _write_uvarint(len(exceptions), body)
    previous = -1
    for position, tail_id in exceptions:
        _write_uvarint(position - previous - 1, body)
        _write_uvarint(tail_id, body)
        previous = position

    # -- per-run community dictionary, set table, prefix column -------
    for peer_asn, next_hop, run in runs:
        count = len(run)
        _write_uvarint(peer_asn, body)
        _write_str(next_hop, body)
        _write_uvarint(count, body)
        per_route = [_community_strings(route) for route in run]
        frequency: Counter = Counter()
        first_seen: Dict[str, int] = {}
        for strings in per_route:
            frequency.update(strings)
            for community in strings:
                first_seen.setdefault(community, len(first_seen))
        universe = sorted(frequency, key=lambda c: (-frequency[c],
                                                    first_seen[c]))
        universe_index = {c: i for i, c in enumerate(universe)}
        _write_uvarint(len(universe), body)
        for community in universe:
            _write_str(community, body)
        # distinct community *sets*, frequency-ordered so the hot set
        # ids stay single-byte; each set is a sorted gap-varint id
        # list into the run dictionary.
        keys = [tuple(sorted(universe_index[c] for c in strings))
                for strings in per_route]
        set_frequency: Counter = Counter(keys)
        set_first: Dict[Tuple[int, ...], int] = {}
        for key in keys:
            set_first.setdefault(key, len(set_first))
        table = sorted(set_frequency, key=lambda k: (-set_frequency[k],
                                                     set_first[k]))
        table_index = {key: i for i, key in enumerate(table)}
        _write_uvarint(len(table), body)
        for key in table:
            _write_uvarint(len(key), body)
            previous = -1
            for community_id in key:
                _write_uvarint(community_id - previous - 1, body)
                previous = community_id
        for key in keys:
            _write_uvarint(table_index[key], body)
        previous = 0
        for position, route in enumerate(run):
            index = pool_index[route.prefix]
            _write_svarint(index if position == 0 else index - previous,
                           body)
            previous = index

    # -- filtered routes ----------------------------------------------
    filtered = [(position, route.filter_reason)
                for position, route in enumerate(routes) if route.filtered]
    _write_uvarint(len(filtered), body)
    previous = -1
    for position, reason in filtered:
        _write_uvarint(position - previous - 1, body)
        _write_uvarint(0 if reason is None else 1, body)
        if reason is not None:
            _write_str(reason, body)
        previous = position
    return bytes(body)


def encode_snapshot_payload(snapshot: Snapshot,
                            codec: str = JSON_CODEC) -> Dict[str, Any]:
    """Serialise *snapshot* into an envelope payload in *codec* form.

    Both codecs produce payloads carrying the full
    ``REQUIRED_PAYLOAD_KEYS`` schema; the columnar one replaces the
    route list with ``{"n": ..., "blob": <base64 lzma body>}`` and
    tags itself with ``"codec": "columnar"``. Encoding is
    deterministic: one snapshot value always yields one payload (and
    therefore one on-disk byte sequence through the envelope).
    """
    if codec == JSON_CODEC:
        return snapshot.to_dict()
    if codec != COLUMNAR_CODEC:
        raise ValueError(f"unknown snapshot codec: {codec!r}")
    body = _encode_body(snapshot.routes)
    blob = lzma.compress(body, format=_LZMA_FORMAT, preset=_LZMA_PRESET)
    return {
        "codec": COLUMNAR_CODEC,
        "columnar_version": COLUMNAR_VERSION,
        "ixp": snapshot.ixp,
        "family": snapshot.family,
        "captured_on": snapshot.captured_on,
        "members": [member.to_dict() for member in snapshot.members],
        "routes": {
            "n": len(snapshot.routes),
            "blob": base64.b64encode(blob).decode("ascii"),
        },
        "filtered_count": snapshot.filtered_count,
        "meta": snapshot.meta,
    }


# -- decoding ------------------------------------------------------------

def _format_v4(address: int, prefixlen: int) -> str:
    return (f"{address >> 24}.{(address >> 16) & 255}."
            f"{(address >> 8) & 255}.{address & 255}/{prefixlen}")


def _decode_prefix_pool(cursor: _Cursor) -> List[str]:
    v4_count = cursor.uvarint()
    v6_count = cursor.uvarint()
    v4_addresses = []
    address = 0
    for _ in range(v4_count):
        address += cursor.uvarint()
        v4_addresses.append(address)
    v6_addresses = []
    high = 0
    for _ in range(v6_count):
        high += cursor.uvarint()
        v6_addresses.append((high << 64) | cursor.uvarint())
    prefixlens = cursor.take(v4_count + v6_count)
    pool = [_format_v4(address, prefixlens[i])
            for i, address in enumerate(v4_addresses)]
    for i, address in enumerate(v6_addresses):
        pool.append(str(ipaddress.IPv6Address(address))
                    + f"/{prefixlens[v4_count + i]}")
    return pool


def _decode_body(raw: bytes, expected_routes: int) -> List[Route]:
    cursor = _Cursor(raw)
    version = cursor.uvarint()
    if version != COLUMNAR_VERSION:
        raise ColumnarFormatError(
            f"unsupported columnar body version {version}")
    total = cursor.uvarint()
    if total != expected_routes:
        raise ColumnarFormatError(
            f"body carries {total} routes, payload says {expected_routes}")
    run_count = cursor.uvarint()
    pool = _decode_prefix_pool(cursor)

    tail_count = cursor.uvarint()
    tails = [cursor.text() for _ in range(tail_count)]
    default_tail = [cursor.uvarint() for _ in pool]
    if any(tail_id >= tail_count for tail_id in default_tail):
        raise ColumnarFormatError("default tail out of range")
    exception_count = cursor.uvarint()
    tail_overrides: Dict[int, int] = {}
    position = -1
    for _ in range(exception_count):
        position += cursor.uvarint() + 1
        tail_overrides[position] = cursor.uvarint()

    new_route = object.__new__
    path_cache: Dict[Tuple[int, int], AsPath] = {}
    routes: List[Optional[Route]] = []
    for _ in range(run_count):
        peer_asn = cursor.uvarint()
        next_hop = cursor.text()
        count = cursor.uvarint()
        universe_size = cursor.uvarint()
        parsed = [parse_community(cursor.text())
                  for _ in range(universe_size)]
        flavours = [2 if isinstance(c, LargeCommunity)
                    else 1 if isinstance(c, ExtendedCommunity) else 0
                    for c in parsed]
        empty = (frozenset(), frozenset(), frozenset())
        table_size = cursor.uvarint()
        set_table: List[Tuple[frozenset, frozenset, frozenset]] = []
        for _ in range(table_size):
            size = cursor.uvarint()
            if not size:
                set_table.append(empty)
                continue
            standard: List[Any] = []
            extended: List[Any] = []
            large: List[Any] = []
            community_id = -1
            for _ in range(size):
                community_id += cursor.uvarint() + 1
                if community_id >= universe_size:
                    raise ColumnarFormatError(
                        "set member out of range")
                (standard, extended,
                 large)[flavours[community_id]].append(
                     parsed[community_id])
            set_table.append((frozenset(standard), frozenset(extended),
                              frozenset(large)))
        set_ids = []
        for _ in range(count):
            set_id = cursor.uvarint()
            if set_id >= table_size:
                raise ColumnarFormatError("set reference out of range")
            set_ids.append(set_id)
        run_base = len(routes)
        run_overrides = {position - run_base: tail_id
                         for position, tail_id in tail_overrides.items()
                         if run_base <= position < run_base + count}
        pool_size = len(pool)
        path_cache_get = path_cache.get
        append_route = routes.append
        data, pos = cursor.data, cursor.pos
        previous = 0
        for position in range(count):
            # inlined zigzag varint read — this loop dominates decode
            value = shift = 0
            while True:
                try:
                    byte = data[pos]
                except IndexError:
                    raise ColumnarFormatError("truncated varint") \
                        from None
                pos += 1
                value |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            delta = (value >> 1) if not value & 1 else -((value + 1) >> 1)
            index = delta + previous if position else delta
            if not 0 <= index < pool_size:
                raise ColumnarFormatError("prefix reference out of range")
            previous = index
            sets = set_table[set_ids[position]]
            tail_id = run_overrides.get(position) if run_overrides \
                else None
            if tail_id is None:
                tail_id = default_tail[index]
            if tail_id >= tail_count:
                raise ColumnarFormatError("tail reference out of range")
            path = path_cache_get((peer_asn, tail_id))
            if path is None:
                tail = tails[tail_id]
                if tail.startswith(_FULL_PATH_MARK):
                    path = AsPath.from_string(tail[1:])
                elif tail:
                    path = AsPath.from_string(f"{peer_asn} {tail}")
                else:
                    path = AsPath.from_string(str(peer_asn))
                path_cache[(peer_asn, tail_id)] = path
            route = new_route(Route)
            route.__dict__.update(
                prefix=pool[index], next_hop=next_hop, as_path=path,
                peer_asn=peer_asn, communities=sets[0],
                extended_communities=sets[1], large_communities=sets[2],
                filtered=False, filter_reason=None)
            append_route(route)
        cursor.pos = pos
    if len(routes) != total:
        raise ColumnarFormatError("run lengths do not sum to route count")

    filtered_count = cursor.uvarint()
    position = -1
    for _ in range(filtered_count):
        position += cursor.uvarint() + 1
        if position >= total:
            raise ColumnarFormatError("filtered reference out of range")
        reason = cursor.text() if cursor.uvarint() else None
        patched = new_route(Route)
        patched.__dict__.update(routes[position].__dict__,
                                filtered=True, filter_reason=reason)
        routes[position] = patched
    if not cursor.done():
        raise ColumnarFormatError("trailing bytes after columnar body")
    return routes


def decode_columnar_routes(routes_section: Dict[str, Any]) -> List[Route]:
    """Decode the ``routes`` section of a columnar payload."""
    try:
        expected = int(routes_section["n"])
        blob = base64.b64decode(routes_section["blob"].encode("ascii"),
                                validate=True)
        raw = lzma.decompress(blob, format=_LZMA_FORMAT)
    except (KeyError, TypeError, AttributeError, binascii.Error,
            lzma.LZMAError) as error:
        raise ColumnarFormatError(
            f"columnar routes section unreadable: {error}") from error
    return _decode_body(raw, expected)


def payload_codec(payload: Dict[str, Any]) -> str:
    """The codec a snapshot payload was written with."""
    codec = payload.get("codec", JSON_CODEC)
    if not isinstance(codec, str) or codec not in SNAPSHOT_CODECS:
        raise ColumnarFormatError(f"unknown snapshot codec: {codec!r}")
    return codec


def decode_snapshot_payload(payload: Dict[str, Any]) -> Snapshot:
    """Deserialise a snapshot payload written with *either* codec.

    This is the single entry point the store's read path uses; the
    payload self-describes via its ``codec`` key (absent == JSON).
    """
    if payload_codec(payload) == JSON_CODEC:
        return Snapshot.from_dict(payload)
    routes = decode_columnar_routes(payload["routes"])
    return Snapshot(
        ixp=str(payload["ixp"]),
        family=int(payload["family"]),
        captured_on=str(payload["captured_on"]),
        members=[Member.from_dict(m) for m in payload.get("members", ())],
        routes=routes,
        filtered_count=int(payload.get("filtered_count", 0)),
        meta=dict(payload.get("meta", {})),
    )
