"""Sorted binary-search prefix index over snapshot routes.

Per-prefix questions — "which routes cover this address?", "is there a
more-specific announcement inside this block?", "which prefixes does
this snapshot blackhole?" — need something better than scanning a
route list. Radix tries are the classic answer; over a *static*
snapshot the same queries fall out of a sorted array of
``(family, address, prefixlen)`` keys and :mod:`bisect`, with far less
constant factor in pure Python and zero extra dependencies.

The index maps each distinct prefix to the positions of its routes in
the snapshot's route list (so callers can get back to full
:class:`~repro.bgp.route.Route` objects, preserving duplicate
announcements from different peers), and answers:

* exact-prefix lookup (:meth:`PrefixIndex.routes_for`),
* longest/most-specific match for an address or prefix
  (:meth:`PrefixIndex.most_specific_match`),
* all covering (less-specific) prefixes (:meth:`PrefixIndex.covering`),
* all covered (more-specific) prefixes (:meth:`PrefixIndex.subnets_of`).

Construction is O(n log n) in the number of distinct prefixes; every
query is O(log n + answer). Filtered routes are excluded by default —
the analyses this index feeds (blackholing target profiles, per-prefix
action churn) follow the paper in consuming accepted routes only.
"""

from __future__ import annotations

import ipaddress
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..bgp.route import Route

#: index key: (family, network address int, prefix length).
_Key = Tuple[int, int, int]


def _parse(prefix: str) -> Tuple[_Key, int]:
    """Return the index key and host-address width for *prefix*."""
    network = ipaddress.ip_network(prefix)
    return ((network.version, int(network.network_address),
             network.prefixlen), network.max_prefixlen)


@dataclass(frozen=True)
class PrefixMatch:
    """One matched prefix and the routes announcing it."""

    prefix: str
    prefixlen: int
    routes: Tuple[Route, ...]


class PrefixIndex:
    """Immutable most-specific-match index over one route list."""

    def __init__(self, routes: Sequence[Route], *,
                 include_filtered: bool = False) -> None:
        self._routes = routes
        positions: Dict[_Key, List[int]] = {}
        strings: Dict[_Key, str] = {}
        widths = {4: 32, 6: 128}
        for position, route in enumerate(routes):
            if route.filtered and not include_filtered:
                continue
            key, _width = _parse(route.prefix)
            if key in positions:
                positions[key].append(position)
            else:
                positions[key] = [position]
                strings[key] = route.prefix
        self._keys: List[_Key] = sorted(positions)
        self._positions = positions
        self._strings = strings
        #: distinct prefix lengths present, longest first, per family —
        #: most-specific match probes only lengths that exist.
        lengths: Dict[int, List[int]] = {4: [], 6: []}
        for family, _address, prefixlen in self._keys:
            bucket = lengths[family]
            if prefixlen not in bucket:
                insort(bucket, prefixlen)
        self._lengths = {family: bucket[::-1]
                         for family, bucket in lengths.items()}
        self._widths = widths

    # -- basics ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, prefix: str) -> bool:
        key, _ = _parse(prefix)
        return key in self._positions

    def prefixes(self) -> Iterator[str]:
        """Distinct indexed prefixes in (family, address, length) order."""
        for key in self._keys:
            yield self._strings[key]

    def routes_for(self, prefix: str) -> Tuple[Route, ...]:
        """All indexed routes announcing exactly *prefix* (snapshot
        order, one per announcing peer)."""
        key, _ = _parse(prefix)
        return tuple(self._routes[i]
                     for i in self._positions.get(key, ()))

    def _match(self, key: _Key) -> PrefixMatch:
        return PrefixMatch(
            prefix=self._strings[key], prefixlen=key[2],
            routes=tuple(self._routes[i] for i in self._positions[key]))

    # -- longest-prefix matching ---------------------------------------

    def most_specific_match(self, target: str) -> Optional[PrefixMatch]:
        """The longest indexed prefix containing *target* (an address
        like ``"203.0.113.9"`` or a prefix like ``"203.0.113.0/28"``).

        A prefix *contains* a target prefix when it covers its whole
        range and is no more specific; an address behaves like a
        host-length prefix.
        """
        if "/" not in target:
            target = target + "/" + str(
                ipaddress.ip_address(target).max_prefixlen)
        (family, address, prefixlen), width = _parse(target)
        for candidate_len in self._lengths[family]:
            if candidate_len > prefixlen:
                continue
            masked = address >> (width - candidate_len) \
                << (width - candidate_len) if candidate_len else 0
            key = (family, masked, candidate_len)
            if key in self._positions:
                return self._match(key)
        return None

    def covering(self, target: str) -> List[PrefixMatch]:
        """Every indexed prefix containing *target*, most specific
        first (the full covering chain, e.g. a blackholed /32 under
        its /24 and /19)."""
        if "/" not in target:
            target = target + "/" + str(
                ipaddress.ip_address(target).max_prefixlen)
        (family, address, prefixlen), width = _parse(target)
        matches = []
        for candidate_len in self._lengths[family]:
            if candidate_len > prefixlen:
                continue
            masked = address >> (width - candidate_len) \
                << (width - candidate_len) if candidate_len else 0
            key = (family, masked, candidate_len)
            if key in self._positions:
                matches.append(self._match(key))
        return matches

    def subnets_of(self, target: str) -> List[PrefixMatch]:
        """Every indexed prefix strictly inside *target* (more
        specific), in address order — binary search over the sorted
        key array for the target's address range."""
        (family, address, prefixlen), width = _parse(target)
        span = 1 << (width - prefixlen)
        low = bisect_left(self._keys, (family, address, prefixlen + 1))
        high = bisect_right(self._keys,
                            (family, address + span - 1, width + 1))
        return [self._match(self._keys[i]) for i in range(low, high)
                if self._keys[i][2] > prefixlen]
