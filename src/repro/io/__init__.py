"""``repro.io`` — filesystem substrate with deterministic fault injection.

The dataset store's durability story (PR 3) assumed a local POSIX
filesystem: ``os.link`` either succeeds or fails, a rename is visible
the instant it returns, ``stat`` never lies. Multi-*host* campaigns
share one store directory over network filesystems where none of that
holds — NFS retransmits make ``link()`` results ambiguous, attribute
caches delay cross-host visibility, handles go stale, and writes hit
``ENOSPC`` on a full export.

:mod:`repro.io.faultfs` is the injectable shim every store-level
filesystem operation goes through, plus the seeded
:class:`~repro.io.faultfs.FsFaultPlan` that turns those hazards into
deterministic, countable fault injections — the substrate of the
multi-host chaos harness in ``tests/chaos``.

:mod:`repro.io.columnar` is the interned columnar snapshot codec (the
compact alternative to JSON route lists behind the same integrity
envelope), and :mod:`repro.io.prefixindex` the sorted binary-search
prefix index built over decoded snapshots.
"""

from .faultfs import (
    FAULT_AMBIGUOUS_LINK,
    FAULT_EIO,
    FAULT_ENOSPC,
    FAULT_ESTALE,
    FAULT_HIDDEN,
    FAULT_SLOW,
    FaultFS,
    FileSystem,
    FsFaultPlan,
    FsFaultRule,
    HostIdentity,
    StorageUnavailable,
    active_fs,
    host_identity,
    install,
    is_fatal_fs_error,
    is_transient_fs_error,
    with_fs_retries,
)

__all__ = [
    "FAULT_AMBIGUOUS_LINK", "FAULT_EIO", "FAULT_ENOSPC", "FAULT_ESTALE",
    "FAULT_HIDDEN", "FAULT_SLOW", "FaultFS", "FileSystem", "FsFaultPlan",
    "FsFaultRule", "HostIdentity", "StorageUnavailable", "active_fs",
    "host_identity", "install", "is_fatal_fs_error",
    "is_transient_fs_error", "with_fs_retries",
    "COLUMNAR_CODEC", "ColumnarFormatError", "JSON_CODEC",
    "SNAPSHOT_CODECS", "decode_snapshot_payload",
    "encode_snapshot_payload", "payload_codec",
    "PrefixIndex", "PrefixMatch",
]

from .columnar import (
    COLUMNAR_CODEC,
    ColumnarFormatError,
    JSON_CODEC,
    SNAPSHOT_CODECS,
    decode_snapshot_payload,
    encode_snapshot_payload,
    payload_codec,
)
from .prefixindex import PrefixIndex, PrefixMatch
