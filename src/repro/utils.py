"""Small shared utilities.

Determinism helpers: Python's builtin ``hash()`` is randomised per
process (PYTHONHASHSEED), and ``random.Random(tuple)`` seeds via that
hash — so neither can anchor a reproducible dataset. Everything in this
package that needs a derived seed goes through :func:`stable_seed` /
:func:`stable_fraction`, which hash through SHA-256 instead.
"""

from __future__ import annotations

import hashlib
import random
from typing import Tuple


def stable_seed(*parts: object) -> int:
    """A 64-bit seed derived deterministically from *parts*.

    Stable across processes and Python versions (unlike ``hash``).
    """
    blob = "\x1f".join(repr(part) for part in parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def stable_rng(*parts: object) -> random.Random:
    """A :class:`random.Random` seeded with :func:`stable_seed`."""
    return random.Random(stable_seed(*parts))


def stable_fraction(*parts: object) -> float:
    """A deterministic pseudo-uniform float in [0, 1) from *parts*."""
    return (stable_seed(*parts) % 10_000_019) / 10_000_019.0
