"""UPDATE stream generation from route sets.

A real route server doesn't hand its peers a RIB dump — it streams BGP
UPDATEs, packing prefixes that share path attributes into one message
and splitting at the 4096-byte protocol limit (RFC 4271 §4). This
module converts an export view (a list of routes towards one peer) into
exactly that stream, which closes the loop for the session layer: a
:class:`~repro.bgp.session.BgpSession` can replay an Adj-RIB-Out to a
downstream speaker.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from ..bgp.errors import MessageEncodeError
from ..bgp.messages import MAX_MESSAGE_LEN, UpdateMessage
from ..bgp.route import Route

#: attribute-set key: everything that must be identical for two NLRI to
#: share one UPDATE.
_AttrKey = Tuple[str, str, frozenset, frozenset, frozenset]


def _attribute_key(route: Route) -> _AttrKey:
    return (str(route.as_path), route.next_hop, route.communities,
            route.extended_communities, route.large_communities)


def _base_update(route: Route, family: int) -> UpdateMessage:
    update = UpdateMessage(
        origin=0,
        as_path=route.as_path,
        communities=tuple(sorted(route.communities)),
        extended_communities=tuple(sorted(route.extended_communities)),
        large_communities=tuple(sorted(route.large_communities)),
    )
    if family == 4:
        update.next_hop = route.next_hop
    else:
        update.mp_next_hop = route.next_hop
    return update


def _encoded_size(update: UpdateMessage) -> int:
    return len(update.encode())


def _fill_within_limit(pending: List[str], assign) -> int:
    """Largest prefix count (≥ 0) from *pending* that encodes within
    the 4096-byte limit.

    ``assign(k)`` must install ``pending[:k]`` into the message and
    return its encoded size (or raise MessageEncodeError). Encoded size
    is monotonic in the prefix count, so binary search needs only
    O(log n) full encodes per message instead of one per prefix.
    """
    def fits(count: int) -> bool:
        try:
            return assign(count) <= MAX_MESSAGE_LEN
        except MessageEncodeError:
            return False

    low, high = 0, len(pending)
    if fits(high):
        return high
    while high - low > 1:  # invariant: low fits, high does not
        middle = (low + high) // 2
        if fits(middle):
            low = middle
        else:
            high = middle
    assign(low)  # leave the message holding the fitting prefix set
    return low


def build_updates(routes: Iterable[Route]) -> List[UpdateMessage]:
    """Pack *routes* into a minimal list of UPDATE messages.

    Routes sharing the exact same path attributes coalesce; each message
    stays within the 4096-byte BGP limit. Raises
    :class:`~repro.bgp.errors.MessageEncodeError` if a single route's
    attributes alone exceed the limit.
    """
    groups: Dict[_AttrKey, List[Route]] = {}
    order: List[_AttrKey] = []
    for route in routes:
        key = _attribute_key(route)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(route)

    updates: List[UpdateMessage] = []
    for key in order:
        group = groups[key]
        family = group[0].family
        pending = sorted(route.prefix for route in group)
        while pending:
            update = _base_update(group[0], family)

            def assign(count: int) -> int:
                if family == 4:
                    update.nlri = list(pending[:count])
                else:
                    update.mp_nlri = list(pending[:count])
                return _encoded_size(update)

            placed = _fill_within_limit(pending, assign)
            if placed == 0:
                raise MessageEncodeError(
                    f"attributes of {pending[0]} exceed the 4096-byte "
                    "UPDATE limit on their own")
            pending = pending[placed:]
            updates.append(update)
    return updates


def build_withdrawals(prefixes: Iterable[str],
                      family: int) -> List[UpdateMessage]:
    """Pack withdrawn prefixes into UPDATE messages."""
    updates: List[UpdateMessage] = []
    pending = sorted(set(prefixes))
    while pending:
        update = UpdateMessage()

        def assign(count: int) -> int:
            if family == 4:
                update.withdrawn = list(pending[:count])
            else:
                update.mp_withdrawn = list(pending[:count])
            return _encoded_size(update)

        placed = _fill_within_limit(pending, assign)
        if placed == 0:
            raise MessageEncodeError("cannot place a single withdrawal")
        pending = pending[placed:]
        updates.append(update)
    return updates


def replay_export(server, peer_asn: int) -> Iterator[bytes]:
    """Encode the Adj-RIB-Out towards *peer_asn* as wire UPDATEs."""
    for update in build_updates(server.export_to(peer_asn)):
        yield update.encode()
