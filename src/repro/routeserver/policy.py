"""Action-community export policy (RFC 7947 §2.2.2 style).

Given an accepted route carrying action communities, the policy decides,
for each candidate export peer:

* whether the route may be exported to that peer at all
  (do-not-announce-to / announce-only-to semantics), and
* how many prepends to apply (prepend-to semantics),

and whether the route is a blackhole request. Evaluation follows the
BIRD route-server convention used at the studied IXPs:

1. ``0:<peer>``  (do-not-announce-to <peer>)      → deny, most specific;
2. ``<rs>:<peer>`` (announce-only-to <peer>)      → allow;
3. ``0:<rs>``    (do-not-announce-to everyone)    → deny;
4. otherwise                                       → allow (default).

The same evaluation is what makes communities targeting ASes *not* at
the route server pointless (§5.5): rule 1 and 2 never fire for a peer
that does not exist, so the RS performs matching work for nothing.
"""

from __future__ import annotations

import types
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .. import obs
from ..bgp.communities import StandardCommunity
from ..bgp.route import Route
from ..ixp.dictionary import CommunityDictionary, Semantics
from ..ixp.taxonomy import ActionCategory, Target, TargetKind

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    actions=reg.counter(
        "repro_routeserver_action_applications_total",
        "Action-community instances compiled into route policies, "
        "by category", ("category",)),
))


@dataclass(frozen=True)
class RoutePolicy:
    """The parsed action-community intent of one route.

    Built once per route, then queried per candidate export peer.
    """

    deny_all: bool = False
    deny_peers: FrozenSet[int] = frozenset()
    allow_peers: FrozenSet[int] = frozenset()
    allow_all_explicit: bool = False
    #: peer ASN → prepend count (0 key means "all peers").
    prepend_counts: Dict[int, int] = field(default_factory=dict)
    prepend_all: int = 0
    blackhole: bool = False
    #: action communities found on the route (for scrubbing).
    action_communities: FrozenSet[StandardCommunity] = frozenset()

    def export_allowed(self, peer_asn: int) -> bool:
        """May this route be exported to *peer_asn*?"""
        if self.blackhole:
            # Blackhole routes are redistributed to all peers that accept
            # them; propagation scoping still applies on top.
            pass
        if peer_asn in self.deny_peers:
            return False
        if peer_asn in self.allow_peers:
            return True
        # deny_all is only ever set explicitly (dna-all) or by the
        # announce-only default flip, and the flip is already
        # suppressed by an explicit announce-to-all at compile time —
        # so a surviving deny_all is a deny, even against allow-all.
        if self.deny_all:
            return False
        return True

    def prepends_for(self, peer_asn: int) -> int:
        """Prepend count to apply when exporting to *peer_asn*."""
        return max(self.prepend_counts.get(peer_asn, 0), self.prepend_all)


class PolicyEngine:
    """Compiles routes' action communities into :class:`RoutePolicy`."""

    def __init__(self, dictionary: CommunityDictionary, rs_asn: int,
                 blackholing_enabled: bool = False) -> None:
        self._dictionary = dictionary
        self._rs_asn = rs_asn
        self._blackholing_enabled = blackholing_enabled

    def classify_actions(
            self, route: Route,
    ) -> List[Tuple[StandardCommunity, Semantics]]:
        """Action communities on *route* with their semantics."""
        actions: List[Tuple[StandardCommunity, Semantics]] = []
        for community in sorted(route.communities):
            semantics = self._dictionary.lookup(community)
            if semantics is not None and semantics.is_action:
                actions.append((community, semantics))
        return actions

    def compile(self, route: Route) -> RoutePolicy:
        """Parse the route's action communities into a policy."""
        deny_all = False
        allow_all_explicit = False
        blackhole = False
        deny_peers: Set[int] = set()
        allow_peers: Set[int] = set()
        prepend_counts: Dict[int, int] = {}
        prepend_all = 0
        action_communities: Set[StandardCommunity] = set()

        for community, semantics in self.classify_actions(route):
            action_communities.add(community)
            category = semantics.category
            _METRICS().actions.labels(category.value).inc()
            target = semantics.target or Target.none()
            if category is ActionCategory.BLACKHOLING:
                blackhole = self._blackholing_enabled
            elif category is ActionCategory.DO_NOT_ANNOUNCE_TO:
                if target.kind is TargetKind.ALL_PEERS:
                    deny_all = True
                elif target.kind is TargetKind.PEER_AS:
                    deny_peers.add(target.asn)  # type: ignore[arg-type]
            elif category is ActionCategory.ANNOUNCE_ONLY_TO:
                if target.kind is TargetKind.ALL_PEERS:
                    allow_all_explicit = True
                elif target.kind is TargetKind.PEER_AS:
                    allow_peers.add(target.asn)  # type: ignore[arg-type]
            elif category is ActionCategory.PREPEND_TO:
                count = semantics.prepend_count
                if target.kind is TargetKind.ALL_PEERS:
                    prepend_all = max(prepend_all, count)
                elif target.kind is TargetKind.PEER_AS:
                    asn = target.asn  # type: ignore[assignment]
                    prepend_counts[asn] = max(
                        prepend_counts.get(asn, 0), count)
        # The presence of any announce-only-to community flips the default
        # to deny (that is what "only" means) unless an explicit
        # announce-to-all is also present.
        if allow_peers and not allow_all_explicit:
            deny_all = True
        return RoutePolicy(
            deny_all=deny_all,
            deny_peers=frozenset(deny_peers),
            allow_peers=frozenset(allow_peers),
            allow_all_explicit=allow_all_explicit,
            prepend_counts=prepend_counts,
            prepend_all=prepend_all,
            blackhole=blackhole,
            action_communities=frozenset(action_communities),
        )

    def export_route(self, route: Route, policy: RoutePolicy,
                     peer_asn: int, scrub: bool = True) -> Optional[Route]:
        """The route as it would be exported to *peer_asn*, or None.

        Applies prepends and (by default) scrubs action communities —
        the behaviour that makes action communities invisible at
        classic route collectors (paper footnote 1) and IXP LGs the
        right vantage point.
        """
        if peer_asn == route.peer_asn:
            return None  # never export back to the announcer
        if not policy.export_allowed(peer_asn):
            return None
        exported = route
        prepends = policy.prepends_for(peer_asn)
        if prepends:
            exported = exported.with_prepend(route.peer_asn, prepends)
        if scrub and policy.action_communities:
            exported = exported.without_communities(
                policy.action_communities)
        return exported

    def ineffective_targets(self, route: Route,
                            rs_peer_asns: Iterable[int]) -> Set[int]:
        """Targets of the route's action communities that are not RS
        peers — the §5.5 "no practical routing effect" set."""
        present = set(rs_peer_asns)
        missing: Set[int] = set()
        for _, semantics in self.classify_actions(route):
            target = semantics.target
            if (target is not None and target.kind is TargetKind.PEER_AS
                    and target.asn not in present):
                missing.add(target.asn)  # type: ignore[arg-type]
        return missing
