"""The route server itself (RFC 7947 multilateral peering).

Ties together the import :class:`FilterChain`, the action-community
:class:`PolicyEngine`, and the :class:`RibStore`. Peers announce routes
(either as :class:`~repro.bgp.route.Route` objects or as encoded BGP
UPDATE messages); the server filters, stamps informational communities,
stores, and can compute per-peer export views with action semantics
applied and action communities scrubbed.

The Looking Glass reads the server through :meth:`peers_summary` and
:meth:`accepted_routes` / :meth:`filtered_routes` — the same two route
sets the paper's §3 describes.
"""

from __future__ import annotations

import types
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..bgp.messages import UpdateMessage
from ..bgp.route import Route
from ..ixp.member import Member
from ..utils import stable_fraction
from .config import RouteServerConfig
from .filters import FilterChain
from .policy import PolicyEngine, RoutePolicy
from .rib import RibStore

# Hot-path metrics: every child here is bound once per observability
# generation (see MetricSet), so `announce` pays one attribute read
# and one (no-op when disabled) increment per route.
_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    routes=reg.counter(
        "repro_routeserver_routes_processed_total",
        "Announcements run through the import pipeline").labels(),
    accepted=reg.counter(
        "repro_routeserver_routes_accepted_total",
        "Announcements accepted into the Adj-RIB-In").labels(),
    updates=reg.counter(
        "repro_routeserver_updates_total",
        "Encoded BGP UPDATE messages decoded and applied").labels(),
    withdrawals=reg.counter(
        "repro_routeserver_withdrawals_total",
        "Prefix withdrawals processed").labels(),
    rib_routes=reg.gauge(
        "repro_routeserver_rib_routes",
        "Adj-RIB-In size per peer (refreshed on summary reads, "
        "not per update)", ("peer", "kind")),
))


@dataclass(frozen=True)
class PeerSession:
    """State of one BGP session at the route server."""

    member: Member
    established: bool = True

    @property
    def asn(self) -> int:
        return self.member.asn


class RouteServer:
    """A simulated IXP route server for one address family."""

    def __init__(self, config: RouteServerConfig) -> None:
        if config.dictionary is None:
            raise ValueError("RouteServerConfig.dictionary is required")
        self.config = config
        self._filters = FilterChain.from_config(config)
        self._policy = PolicyEngine(
            config.dictionary, config.rs_asn,
            blackholing_enabled=config.blackholing_enabled)
        self._ribs = RibStore()
        self._sessions: Dict[int, PeerSession] = {}
        self._policy_cache: Dict[Tuple[int, str], RoutePolicy] = {}

    # -- session management --------------------------------------------

    def add_peer(self, member: Member) -> PeerSession:
        """Establish a session with *member*; idempotent."""
        session = PeerSession(member)
        self._sessions[member.asn] = session
        return session

    def remove_peer(self, peer_asn: int) -> None:
        """Tear down the session and flush the peer's routes."""
        self._sessions.pop(peer_asn, None)
        self._ribs.drop_peer(peer_asn)
        self._policy_cache = {key: value
                              for key, value in self._policy_cache.items()
                              if key[0] != peer_asn}

    def peers(self) -> List[PeerSession]:
        return [self._sessions[asn] for asn in sorted(self._sessions)]

    def peer_asns(self) -> List[int]:
        return sorted(self._sessions)

    def has_peer(self, peer_asn: int) -> bool:
        return peer_asn in self._sessions

    # -- announcements ---------------------------------------------------

    def announce(self, route: Route) -> Route:
        """Process one announcement; returns the stored route (accepted
        or marked filtered with the rejecting filter's reason)."""
        if route.peer_asn not in self._sessions:
            raise KeyError(f"AS{route.peer_asn} has no session with the RS")
        metrics = _METRICS()
        metrics.routes.inc()
        verdict = self._filters.evaluate(route)
        if verdict.accepted:
            metrics.accepted.inc()
            stored = self._stamp_informational(route)
            stored = replace(stored, filtered=False, filter_reason=None)
        else:
            stored = replace(route, filtered=True,
                             filter_reason=verdict.reason)
        self._ribs.rib_for(route.peer_asn).insert(stored)
        self._policy_cache.pop((route.peer_asn, route.prefix), None)
        return stored

    def announce_update(self, peer_asn: int, blob: bytes) -> List[Route]:
        """Process an encoded BGP UPDATE from *peer_asn*.

        Withdrawn prefixes are removed; each NLRI becomes an announced
        route. Returns the stored routes.
        """
        _METRICS().updates.inc()
        update = UpdateMessage.decode(blob)
        for prefix in update.withdrawn + update.mp_withdrawn:
            self.withdraw(peer_asn, prefix)
        stored: List[Route] = []
        nlri: List[Tuple[str, Optional[str]]] = (
            [(p, update.next_hop) for p in update.nlri]
            + [(p, update.mp_next_hop) for p in update.mp_nlri])
        for prefix, next_hop in nlri:
            if update.as_path is None or next_hop is None:
                raise ValueError("UPDATE with NLRI lacks AS_PATH/NEXT_HOP")
            route = Route(
                prefix=prefix,
                next_hop=next_hop,
                as_path=update.as_path,
                peer_asn=peer_asn,
                communities=frozenset(update.communities),
                extended_communities=frozenset(update.extended_communities),
                large_communities=frozenset(update.large_communities),
            )
            stored.append(self.announce(route))
        return stored

    def withdraw(self, peer_asn: int, prefix: str) -> Optional[Route]:
        _METRICS().withdrawals.inc()
        self._policy_cache.pop((peer_asn, prefix), None)
        if peer_asn in self._sessions:
            return self._ribs.rib_for(peer_asn).withdraw(prefix)
        return None

    def _stamp_informational(self, route: Route) -> Route:
        """Add the RS's informational tags (RS behaviour per §5.1: "the
        informational ones being added by the IXP typically to every
        route").

        When ``informational_per_route`` is a float, the fractional part
        is realised by stamping one extra tag on a deterministic
        per-prefix subset of routes, so a rate of 2.6 yields exactly 2.6
        informational instances per route in expectation.
        """
        if not (self.config.add_informational_communities
                and self.config.informational_tags):
            return route
        pool = self.config.informational_tags
        rate = self.config.informational_per_route
        if rate is None:
            tags = set(pool)
        else:
            base = min(int(rate), len(pool))
            fraction = max(0.0, rate - base)
            tags = set(pool[:base])
            if (fraction > 0 and len(pool) > base
                    and stable_fraction(route.prefix, "info-extra")
                    < fraction):
                tags.add(pool[base])
        if not tags:
            return route
        return route.with_communities(set(route.communities) | tags)

    # -- views -----------------------------------------------------------

    def accepted_routes(self, peer_asn: Optional[int] = None) -> List[Route]:
        """Accepted Adj-RIB-In routes (of one peer, or all)."""
        if peer_asn is not None:
            return self._ribs.rib_for(peer_asn).accepted()
        return list(self._ribs.all_accepted())

    def filtered_routes(self, peer_asn: Optional[int] = None) -> List[Route]:
        if peer_asn is not None:
            return self._ribs.rib_for(peer_asn).filtered()
        return list(self._ribs.all_filtered())

    def peers_summary(self) -> List[Dict[str, object]]:
        """The LG ``/neighbors`` summary: one row per session."""
        rows: List[Dict[str, object]] = []
        update_gauges = obs.enabled()
        metrics = _METRICS()
        for session in self.peers():
            rib = self._ribs.rib_for(session.asn)
            rows.append({
                "asn": session.asn,
                "name": session.member.name,
                "state": "Established" if session.established else "Idle",
                "routes_accepted": rib.accepted_count,
                "routes_filtered": rib.filtered_count,
            })
            if update_gauges:
                # gauges refresh on this (read-side) path so the
                # per-announce hot path never allocates label strings
                peer = str(session.asn)
                metrics.rib_routes.labels(peer, "accepted").set(
                    rib.accepted_count)
                metrics.rib_routes.labels(peer, "filtered").set(
                    rib.filtered_count)
        return rows

    def policy_for(self, route: Route) -> RoutePolicy:
        """Compiled action policy for an accepted route (cached)."""
        key = (route.peer_asn, route.prefix)
        policy = self._policy_cache.get(key)
        if policy is None:
            policy = self._policy.compile(route)
            self._policy_cache[key] = policy
        return policy

    def export_to(self, peer_asn: int) -> List[Route]:
        """The Adj-RIB-Out towards *peer_asn*: every accepted route from
        other peers that the per-route policy allows, prepends applied,
        action communities scrubbed (when configured)."""
        if peer_asn not in self._sessions:
            raise KeyError(f"AS{peer_asn} has no session with the RS")
        exported: List[Route] = []
        for route in self._ribs.all_accepted():
            policy = self.policy_for(route)
            result = self._policy.export_route(
                route, policy, peer_asn,
                scrub=self.config.scrub_action_communities)
            if result is not None:
                exported.append(result)
        return exported

    def ineffective_targets_of(self, route: Route) -> Iterable[int]:
        """Targets of this route's action communities that are not RS
        peers (§5.5)."""
        return self._policy.ineffective_targets(route, self.peer_asns())

    def statistics(self) -> Dict[str, int]:
        accepted, filtered = self._ribs.totals()
        return {
            "peers": len(self._sessions),
            "routes_accepted": accepted,
            "routes_filtered": filtered,
            "prefixes": self._ribs.unique_accepted_prefixes(),
        }
