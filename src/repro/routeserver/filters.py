"""Route server import filters.

The §3 sanitation text enumerates why route servers reject ("filter")
routes: *bogon prefixes or ASNs, AS paths too long, and prefixes too
specific (>/24) or too broad (</8)*. Each reason is one small filter
class here; a :class:`FilterChain` evaluates them in order and reports
the first rejection. Filtered routes are kept (marked) rather than
dropped, because the LG exposes both the filtered and accepted sets.
"""

from __future__ import annotations

import types
from dataclasses import dataclass
from typing import Iterable, List, Optional, Protocol, Sequence

from .. import obs
from ..bgp.asn import is_bogon_asn
from ..bgp.prefix import is_bogon_prefix, is_too_broad, is_too_specific
from ..bgp.route import Route
from .config import RouteServerConfig

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    rejects=reg.counter(
        "repro_routeserver_filter_rejected_total",
        "Import-filter rejections by rule", ("rule",)),
))


@dataclass(frozen=True)
class FilterVerdict:
    """Outcome of running one filter (or the whole chain)."""

    accepted: bool
    reason: Optional[str] = None

    @classmethod
    def accept(cls) -> "FilterVerdict":
        return cls(True)

    @classmethod
    def reject(cls, reason: str) -> "FilterVerdict":
        return cls(False, reason)


class ImportFilter(Protocol):
    """One import filter; returns a verdict for a candidate route."""

    name: str

    def evaluate(self, route: Route) -> FilterVerdict: ...


class WrongFamilyFilter:
    """Reject routes of the other address family (v4 RS vs v6 RS)."""

    name = "wrong-family"

    def __init__(self, family: int) -> None:
        self._family = family

    def evaluate(self, route: Route) -> FilterVerdict:
        if route.family != self._family:
            return FilterVerdict.reject(
                f"{self.name}: IPv{route.family} route on IPv{self._family} RS")
        return FilterVerdict.accept()


class BogonPrefixFilter:
    """Reject announcements for special-purpose (bogon) prefixes."""

    name = "bogon-prefix"

    def evaluate(self, route: Route) -> FilterVerdict:
        if is_bogon_prefix(route.prefix):
            return FilterVerdict.reject(f"{self.name}: {route.prefix}")
        return FilterVerdict.accept()


class BogonAsnFilter:
    """Reject routes whose AS path contains a reserved/private ASN."""

    name = "bogon-asn"

    def evaluate(self, route: Route) -> FilterVerdict:
        for asn in route.as_path.unique_asns():
            if is_bogon_asn(asn):
                return FilterVerdict.reject(f"{self.name}: AS{asn} in path")
        return FilterVerdict.accept()


class PathLengthFilter:
    """Reject implausibly long AS paths (prepend abuse / leaks)."""

    name = "as-path-too-long"

    def __init__(self, max_length: int) -> None:
        self._max_length = max_length

    def evaluate(self, route: Route) -> FilterVerdict:
        if route.as_path.length > self._max_length:
            return FilterVerdict.reject(
                f"{self.name}: {route.as_path.length} > {self._max_length}")
        return FilterVerdict.accept()


class PathLoopFilter:
    """Reject paths with non-adjacent ASN repeats (routing loops)."""

    name = "as-path-loop"

    def evaluate(self, route: Route) -> FilterVerdict:
        if route.as_path.has_loop():
            return FilterVerdict.reject(f"{self.name}: {route.as_path}")
        return FilterVerdict.accept()


class PrefixLengthFilter:
    """Reject prefixes too specific or too broad for the family."""

    name = "prefix-length"

    def __init__(self, min_len: int, max_len: int, family: int) -> None:
        self._min = min_len
        self._max = max_len
        self._family = family

    def evaluate(self, route: Route) -> FilterVerdict:
        kwargs = ({"min_v4": self._min} if self._family == 4
                  else {"min_v6": self._min})
        if is_too_broad(route.prefix, **kwargs):
            return FilterVerdict.reject(
                f"{self.name}: {route.prefix} too broad (< /{self._min})")
        kwargs = ({"max_v4": self._max} if self._family == 4
                  else {"max_v6": self._max})
        if is_too_specific(route.prefix, **kwargs):
            return FilterVerdict.reject(
                f"{self.name}: {route.prefix} too specific (> /{self._max})")
        return FilterVerdict.accept()


class PeerAsFilter:
    """Reject routes whose leftmost path ASN is not the announcing peer."""

    name = "peer-as-mismatch"

    def evaluate(self, route: Route) -> FilterVerdict:
        if route.as_path.first_asn != route.peer_asn:
            return FilterVerdict.reject(
                f"{self.name}: first AS {route.as_path.first_asn} != "
                f"peer AS {route.peer_asn}")
        return FilterVerdict.accept()


class MaxCommunitiesFilter:
    """Reject routes carrying more communities than allowed.

    This is the DE-CIX "too many communities" guard discussed in §5.6 as
    an incentive for ASes to hygienise their tagging.
    """

    name = "too-many-communities"

    def __init__(self, max_communities: int) -> None:
        self._max = max_communities

    def evaluate(self, route: Route) -> FilterVerdict:
        if route.community_count > self._max:
            return FilterVerdict.reject(
                f"{self.name}: {route.community_count} > {self._max}")
        return FilterVerdict.accept()


class BlackholePrefixLengthExemption:
    """Not a filter by itself — helper predicate used by the chain to
    allow host routes (/32, /128) when they carry the RFC 7999 blackhole
    community on a blackholing-enabled RS."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled

    def applies(self, route: Route) -> bool:
        from ..ixp.schemes.common import BLACKHOLE_COMMUNITY
        return self.enabled and BLACKHOLE_COMMUNITY in route.communities


class FilterChain:
    """Ordered import-filter evaluation with first-reject semantics."""

    def __init__(self, filters: Sequence[ImportFilter],
                 blackhole_exemption: Optional[
                     BlackholePrefixLengthExemption] = None) -> None:
        self._filters: List[ImportFilter] = list(filters)
        self._blackhole_exemption = blackhole_exemption

    @classmethod
    def from_config(cls, config: RouteServerConfig) -> "FilterChain":
        """Build the standard chain for a route-server config."""
        filters: List[ImportFilter] = [WrongFamilyFilter(config.family)]
        if config.enforce_peer_as:
            filters.append(PeerAsFilter())
        if config.reject_bogon_prefixes:
            filters.append(BogonPrefixFilter())
        if config.reject_bogon_asns:
            filters.append(BogonAsnFilter())
        filters.append(PathLengthFilter(config.max_as_path_length))
        if config.reject_as_path_loops:
            filters.append(PathLoopFilter())
        filters.append(PrefixLengthFilter(
            config.min_prefix_len, config.max_prefix_len, config.family))
        if config.max_communities is not None:
            filters.append(MaxCommunitiesFilter(config.max_communities))
        return cls(filters, BlackholePrefixLengthExemption(
            config.blackholing_enabled))

    def evaluate(self, route: Route) -> FilterVerdict:
        """Run the chain; first rejection wins."""
        exempt_prefix_len = (self._blackhole_exemption is not None
                             and self._blackhole_exemption.applies(route))
        for import_filter in self._filters:
            if exempt_prefix_len and isinstance(
                    import_filter, PrefixLengthFilter):
                continue
            verdict = import_filter.evaluate(route)
            if not verdict.accepted:
                _METRICS().rejects.labels(import_filter.name).inc()
                return verdict
        return FilterVerdict.accept()

    @property
    def filter_names(self) -> List[str]:
        return [f.name for f in self._filters]
