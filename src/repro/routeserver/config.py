"""Route server configuration.

Mirrors the knobs visible in public BIRD route-server configs at the
studied IXPs: import-filter bounds (§3 lists the rejection reasons:
bogon prefixes or ASNs, AS paths too long, prefixes too specific or too
broad), the max-communities guard DE-CIX applies ("filters routes with
too many communities", §5.6), whether action communities are scrubbed
before export (RFC 7947 §2.2.2 behaviour, "will typically do" per §2),
and which informational tags the RS adds at import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..bgp.communities import StandardCommunity
from ..ixp.dictionary import CommunityDictionary


@dataclass
class RouteServerConfig:
    """Configuration of one (IXP, address family) route server."""

    rs_asn: int
    family: int = 4
    dictionary: Optional[CommunityDictionary] = None

    # Import filter bounds.
    max_as_path_length: int = 32
    min_prefix_len_v4: int = 8
    max_prefix_len_v4: int = 24
    min_prefix_len_v6: int = 16
    max_prefix_len_v6: int = 48
    #: None disables the guard; DE-CIX-style deployments set it.
    max_communities: Optional[int] = None
    reject_bogon_prefixes: bool = True
    reject_bogon_asns: bool = True
    reject_as_path_loops: bool = True
    #: require the leftmost AS-path ASN to equal the announcing peer ASN
    #: (standard RS peer-AS check).
    enforce_peer_as: bool = True

    # Policy behaviour.
    scrub_action_communities: bool = True
    add_informational_communities: bool = True
    #: informational tags the RS stamps on every accepted route; defaults
    #: to the first informational entries of the dictionary.
    informational_tags: Tuple[StandardCommunity, ...] = ()
    #: mean informational tags per route; None stamps the whole tuple on
    #: every route, a float (e.g. 2.6) stamps the first two tags always
    #: and the third on 60% of routes (deterministic per prefix).
    informational_per_route: Optional[float] = None
    #: accept RFC 7999 blackhole requests (DE-CIX yes; others at the
    #: paper's collection time, no).
    blackholing_enabled: bool = False

    def __post_init__(self) -> None:
        if self.family not in (4, 6):
            raise ValueError(f"family must be 4 or 6, got {self.family}")
        if not self.informational_tags and self.dictionary is not None:
            self.informational_tags = tuple(
                entry.community for entry in
                list(self.dictionary.informational_entries())[:2]
                if isinstance(entry.community, StandardCommunity))

    @property
    def min_prefix_len(self) -> int:
        return self.min_prefix_len_v4 if self.family == 4 else self.min_prefix_len_v6

    @property
    def max_prefix_len(self) -> int:
        return self.max_prefix_len_v4 if self.family == 4 else self.max_prefix_len_v6
