"""Route-server substrate: RFC 7947 simulator with action communities."""

from .config import RouteServerConfig
from .filters import (
    BogonAsnFilter,
    BogonPrefixFilter,
    FilterChain,
    FilterVerdict,
    MaxCommunitiesFilter,
    PathLengthFilter,
    PathLoopFilter,
    PeerAsFilter,
    PrefixLengthFilter,
    WrongFamilyFilter,
)
from .policy import PolicyEngine, RoutePolicy
from .rib import AdjRibIn, RibStore
from .server import PeerSession, RouteServer
from .updates import build_updates, build_withdrawals, replay_export

__all__ = [
    "RouteServer", "RouteServerConfig", "PeerSession",
    "FilterChain", "FilterVerdict", "PolicyEngine", "RoutePolicy",
    "AdjRibIn", "RibStore",
    "build_updates", "build_withdrawals", "replay_export",
    "WrongFamilyFilter", "BogonPrefixFilter", "BogonAsnFilter",
    "PathLengthFilter", "PathLoopFilter", "PrefixLengthFilter",
    "PeerAsFilter", "MaxCommunitiesFilter",
]
