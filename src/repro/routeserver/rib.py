"""Routing Information Bases for the route server.

The route server keeps, per peer, an Adj-RIB-In split into *accepted*
and *filtered* routes — exactly the two sets the LG API exposes and the
paper collects (§3). Export state (Adj-RIB-Out) is computed on demand by
the server from accepted routes + policy; it is not materialised here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..bgp.route import Route


@dataclass
class AdjRibIn:
    """Per-peer received routes, keyed by prefix.

    A peer announces at most one route per prefix to the RS (one session),
    so the key is the prefix alone. Re-announcing replaces; withdrawing
    removes.
    """

    peer_asn: int
    _accepted: Dict[str, Route] = field(default_factory=dict)
    _filtered: Dict[str, Route] = field(default_factory=dict)

    def insert(self, route: Route) -> None:
        if route.peer_asn != self.peer_asn:
            raise ValueError(
                f"route from AS{route.peer_asn} in AS{self.peer_asn} RIB")
        # A replacement may move between accepted and filtered.
        self._accepted.pop(route.prefix, None)
        self._filtered.pop(route.prefix, None)
        if route.filtered:
            self._filtered[route.prefix] = route
        else:
            self._accepted[route.prefix] = route

    def withdraw(self, prefix: str) -> Optional[Route]:
        """Remove the route for *prefix*; returns it if present."""
        return (self._accepted.pop(prefix, None)
                or self._filtered.pop(prefix, None))

    def accepted(self) -> List[Route]:
        return list(self._accepted.values())

    def filtered(self) -> List[Route]:
        return list(self._filtered.values())

    @property
    def accepted_count(self) -> int:
        return len(self._accepted)

    @property
    def filtered_count(self) -> int:
        return len(self._filtered)


class RibStore:
    """All per-peer Adj-RIB-Ins of one route server."""

    def __init__(self) -> None:
        self._ribs: Dict[int, AdjRibIn] = {}

    def rib_for(self, peer_asn: int) -> AdjRibIn:
        if peer_asn not in self._ribs:
            self._ribs[peer_asn] = AdjRibIn(peer_asn)
        return self._ribs[peer_asn]

    def drop_peer(self, peer_asn: int) -> None:
        self._ribs.pop(peer_asn, None)

    def peers(self) -> List[int]:
        return sorted(self._ribs)

    def all_accepted(self) -> Iterator[Route]:
        for peer_asn in self.peers():
            yield from self._ribs[peer_asn].accepted()

    def all_filtered(self) -> Iterator[Route]:
        for peer_asn in self.peers():
            yield from self._ribs[peer_asn].filtered()

    def totals(self) -> Tuple[int, int]:
        """(accepted, filtered) route counts across all peers."""
        accepted = sum(r.accepted_count for r in self._ribs.values())
        filtered = sum(r.filtered_count for r in self._ribs.values())
        return accepted, filtered

    def unique_accepted_prefixes(self) -> int:
        """Distinct prefixes across all accepted routes (Table 1's
        "# of Observed Prefixes" as opposed to routes)."""
        prefixes = {route.prefix for route in self.all_accepted()}
        return len(prefixes)
