"""Rate limiting and fault injection for the Looking Glass server.

The paper's collection "was subject to communication failures because of
LG instability and/or query rate limits" (§3, citing Periscope). The
simulated LG reproduces both: a token bucket that returns HTTP 429 when
clients query too fast, and a configurable instability injector that
fails a fraction of requests with HTTP 503.

On top of those two probabilistic modes, :class:`FaultSchedule` injects
the *deterministic* fault shapes a resilient campaign must survive:
scheduled outage windows (every request in a request-index window gets
503 — an LG down for an afternoon), slow responses (the server stalls
before answering, to exercise client timeouts), and truncated JSON
payloads (the bytes on the wire stop mid-document — the malformed
responses §3's sanitation existed to catch downstream).
"""

from __future__ import annotations

import threading
import types
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

from .. import obs
from ..net.ratelimit import MIN_RETRY_AFTER, TokenBucket as _SharedTokenBucket
from ..utils import stable_fraction

#: fault kinds a :class:`FaultSchedule` can inject.
FAULT_OUTAGE = "outage"
FAULT_SLOW = "slow"
FAULT_MALFORMED = "malformed"

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    ratelimited=reg.counter(
        "repro_lg_server_ratelimited_total",
        "Requests the simulated LG answered 429 (token bucket empty)"),
    instability=reg.counter(
        "repro_lg_server_instability_total",
        "Requests failed 503 by the probabilistic instability "
        "injector"),
    faults=reg.counter(
        "repro_lg_server_faults_total",
        "Scheduled faults injected by kind", ("kind",)),
))


class TokenBucket(_SharedTokenBucket):
    """The shared :class:`repro.net.ratelimit.TokenBucket`, counting
    rejections into the LG's own metric family. ``retry_after`` comes
    from the shared class and is always a positive sleep (never zero,
    even when refill races a token back before the 429 is rendered)."""

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; never blocks."""
        acquired = super().try_acquire(tokens)
        if not acquired:
            _METRICS().ratelimited.labels().inc()
        return acquired


@dataclass
class InstabilityInjector:
    """Deterministically fails a fraction of requests (HTTP 503).

    Failures are keyed on (seed, counter) so test runs are reproducible,
    and bursty: failures cluster in runs of `burst_length`, mimicking an
    LG falling over for a stretch rather than coin-flip noise.
    """

    failure_rate: float = 0.0
    burst_length: int = 5
    seed: int = 7
    _counter: int = 0

    def should_fail(self) -> bool:
        if self.failure_rate <= 0:
            return False
        window = self._counter // max(1, self.burst_length)
        self._counter += 1
        failing = stable_fraction(self.seed, window) < self.failure_rate
        if failing:
            _METRICS().instability.labels().inc()
        return failing


@dataclass
class FaultSchedule:
    """Deterministic, request-indexed fault plan for the simulated LG.

    All faults are keyed on a request counter rather than wall-clock
    time, so tests and demos are exactly reproducible:

    * ``outage_windows`` — half-open ``(start, stop)`` request-index
      intervals during which every request fails with HTTP 503;
    * ``slow_every`` — every Nth request is delayed by ``slow_delay``
      seconds before being answered (0 disables);
    * ``malformed_every`` — every Nth request's JSON body is truncated
      mid-document (0 disables).

    Outages shadow the other two: a dead LG answers nothing, slowly or
    otherwise.
    """

    outage_windows: Sequence[Tuple[int, int]] = ()
    slow_every: int = 0
    slow_delay: float = 0.0
    malformed_every: int = 0
    _counter: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def next_fault(self) -> Optional[str]:
        """Advance the request counter and return the fault (if any)
        this request should suffer."""
        with self._lock:
            index = self._counter
            self._counter += 1
        fault: Optional[str] = None
        if any(start <= index < stop
               for start, stop in self.outage_windows):
            fault = FAULT_OUTAGE
        # counters are 1-based for the "every Nth" modes so that
        # malformed_every=1 means "every request", not "first only".
        elif self.malformed_every > 0 \
                and (index + 1) % self.malformed_every == 0:
            fault = FAULT_MALFORMED
        elif self.slow_every > 0 and (index + 1) % self.slow_every == 0:
            fault = FAULT_SLOW
        if fault is not None:
            _METRICS().faults.labels(fault).inc()
        return fault

    @property
    def requests_seen(self) -> int:
        with self._lock:
            return self._counter
