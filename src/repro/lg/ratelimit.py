"""Token-bucket rate limiting for the Looking Glass server.

The paper's collection "was subject to communication failures because of
LG instability and/or query rate limits" (§3, citing Periscope). The
simulated LG reproduces both: a token bucket that returns HTTP 429 when
clients query too fast, and a configurable instability injector that
fails a fraction of requests with HTTP 503.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..utils import stable_fraction


class TokenBucket:
    """Classic token bucket; thread-safe (the HTTP server is threaded)."""

    def __init__(self, rate_per_second: float, burst: int) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate_per_second
        self.capacity = max(1, burst)
        self._tokens = float(self.capacity)
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; never blocks."""
        with self._lock:
            now = time.monotonic()
            elapsed = now - self._updated
            self._updated = now
            self._tokens = min(self.capacity,
                               self._tokens + elapsed * self.rate)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def retry_after(self) -> float:
        """Suggested wait (seconds) before the next token is available."""
        with self._lock:
            missing = max(0.0, 1.0 - self._tokens)
            return missing / self.rate


@dataclass
class InstabilityInjector:
    """Deterministically fails a fraction of requests (HTTP 503).

    Failures are keyed on (seed, counter) so test runs are reproducible,
    and bursty: failures cluster in runs of `burst_length`, mimicking an
    LG falling over for a stretch rather than coin-flip noise.
    """

    failure_rate: float = 0.0
    burst_length: int = 5
    seed: int = 7
    _counter: int = 0

    def should_fail(self) -> bool:
        if self.failure_rate <= 0:
            return False
        window = self._counter // max(1, self.burst_length)
        self._counter += 1
        return stable_fraction(self.seed, window) < self.failure_rate
