"""Looking Glass API dialects.

The eight studied IXPs do not share one LG implementation: DE-CIX and
LINX run alice-lg, BCIX birdseye, IX.br and AMS-IX custom frontends.
The paper's collection pipeline (like Periscope, its citation [25]) had
to unify them. This module models that heterogeneity:

* the **alice** dialect is the native schema of :mod:`repro.lg.api`;
* the **birdseye** dialect renders the same information with the field
  names and URL layout of a birdseye deployment
  (``/api/protocols`` and ``/api/routes/<protocol>``);

plus translators mapping every dialect's payloads to the common
client-side types (:class:`~repro.lg.api.NeighborSummary`, routes), so
the scraper works unchanged against either.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..bgp.aspath import AsPath
from ..bgp.communities import parse_community
from ..bgp.route import Route
from . import api

DIALECT_ALICE = "alice"
DIALECT_BIRDSEYE = "birdseye"
DIALECTS = (DIALECT_ALICE, DIALECT_BIRDSEYE)


class DialectError(ValueError):
    """Unknown dialect or untranslatable payload."""


# -- birdseye rendering (server side) -----------------------------------


def birdseye_protocols(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Render ``/neighbors`` rows as a birdseye ``/api/protocols``
    response: protocols keyed ``pb_<asn>``, birdseye field names."""
    protocols: Dict[str, Any] = {}
    for row in rows:
        protocols[f"pb_{row['asn']}"] = {
            "neighbor_as": row["asn"],
            "description": row["name"],
            "state": "up" if row["state"] == "Established" else "down",
            "routes_imported": row["routes_accepted"],
            "routes_filtered": row["routes_filtered"],
        }
    return {"protocols": protocols}


def birdseye_routes(routes: Sequence[Route], page: int, page_size: int,
                    total: int) -> Dict[str, Any]:
    """Render a routes page in birdseye's schema (``network``/``bgp``
    sub-object, string community tuples)."""
    rendered = []
    for route in routes:
        rendered.append({
            "network": route.prefix,
            "gateway": route.next_hop,
            "bgp": {
                "as_path": [str(asn) for asn in route.as_path.asns()],
                "communities": [[c.asn, c.value]
                                for c in sorted(route.communities)],
                "ext_communities": [str(c) for c in sorted(
                    route.extended_communities)],
                "large_communities": [
                    [c.global_admin, c.local_data1, c.local_data2]
                    for c in sorted(route.large_communities)],
            },
            "from_protocol": f"pb_{route.peer_asn}",
        })
    return {
        "routes": rendered,
        "api": {
            "result_from_cache": False,
            "pagination": {
                "page": page,
                "page_size": page_size,
                "total_results": total,
                "total_pages": (total + page_size - 1) // page_size
                                if total else 1,
            },
        },
    }


# -- translation (client side) ------------------------------------------


def parse_neighbors(payload: Dict[str, Any],
                    dialect: str) -> List[api.NeighborSummary]:
    """Normalise a neighbors payload from any dialect."""
    if dialect == DIALECT_ALICE:
        return [api.NeighborSummary.from_dict(row)
                for row in payload.get("neighbors", ())]
    if dialect == DIALECT_BIRDSEYE:
        summaries = []
        for _key, protocol in sorted(payload.get("protocols",
                                                 {}).items()):
            summaries.append(api.NeighborSummary(
                asn=int(protocol["neighbor_as"]),
                name=str(protocol.get("description",
                                      f"AS{protocol['neighbor_as']}")),
                state=("Established" if protocol.get("state") == "up"
                       else "Idle"),
                routes_accepted=int(protocol.get("routes_imported", 0)),
                routes_filtered=int(protocol.get("routes_filtered", 0)),
            ))
        return summaries
    raise DialectError(f"unknown dialect {dialect!r}")


def parse_routes(payload: Dict[str, Any], dialect: str) -> List[Route]:
    """Normalise a routes page from any dialect."""
    if dialect == DIALECT_ALICE:
        return api.parse_routes_page(payload)
    if dialect == DIALECT_BIRDSEYE:
        routes = []
        for row in payload.get("routes", ()):
            bgp = row.get("bgp", {})
            peer_asn = int(str(row.get("from_protocol",
                                       "pb_0")).rpartition("_")[2])
            routes.append(Route(
                prefix=row["network"],
                next_hop=row["gateway"],
                as_path=AsPath.from_asns(
                    [int(asn) for asn in bgp.get("as_path", ())]),
                peer_asn=peer_asn,
                communities=frozenset(
                    parse_community(f"{a}:{b}")
                    for a, b in bgp.get("communities", ())),
                extended_communities=frozenset(
                    parse_community(text)
                    for text in bgp.get("ext_communities", ())),
                large_communities=frozenset(
                    parse_community(f"{a}:{b}:{c}")
                    for a, b, c in bgp.get("large_communities", ())),
            ))
        return routes
    raise DialectError(f"unknown dialect {dialect!r}")


def total_pages(payload: Dict[str, Any], dialect: str) -> int:
    if dialect == DIALECT_ALICE:
        return api.total_pages(payload)
    if dialect == DIALECT_BIRDSEYE:
        return int(payload.get("api", {}).get("pagination",
                                              {}).get("total_pages", 1))
    raise DialectError(f"unknown dialect {dialect!r}")
