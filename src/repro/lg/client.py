"""Looking Glass HTTP client.

Consumes the :mod:`repro.lg.api` endpoints with the robustness the
paper's collection needed (§3): retry with full-jitter exponential
backoff on 5xx/timeouts/garbled payloads, honouring ``Retry-After`` on
429, and a per-mount circuit breaker so a dead LG is not hammered
through every retry budget. The paper's collection kept "a single
connection to the LG server, to avoid overloading it"; this client
defaults to the same serial discipline but is **thread-safe** — the
concurrent collection engine (:mod:`repro.collector.campaign`) shares
one client per mount across a bounded worker pool, and the shared
state (stats counters, breaker, metric children) is lock-protected.

Failures that survive the retry budget are raised as subclasses of
:class:`LookingGlassError` carrying a ``failure_class`` from the
campaign taxonomy (``rate_limited`` / ``lg_outage`` / ``timeout`` /
``malformed_payload`` / ``breaker_open``), so the collection layer can
count *why* peers were lost, not just that they were.

Every request is also metered through :mod:`repro.obs` (requests,
retries, per-kind errors, Retry-After hits, backoff sleep time, fetch
latency) under ``repro_lg_client_*`` — free no-ops unless
observability is enabled.
"""

from __future__ import annotations

import json
import math
import random
import socket
import threading
import time
import types
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from .. import obs
from ..bgp.route import Route
from ..ixp.dictionary import CommunityDictionary
from ..net.backoff import full_jitter_delay
from . import api
from .breaker import CircuitBreaker

#: the §3 failure taxonomy surfaced in campaign reports.
FAILURE_RATE_LIMITED = "rate_limited"
FAILURE_LG_OUTAGE = "lg_outage"
FAILURE_TIMEOUT = "timeout"
FAILURE_MALFORMED = "malformed_payload"
#: refused locally because the mount's circuit breaker was open — a
#: distinct class (not an LG outage observation: no request was made).
FAILURE_BREAKER_OPEN = "breaker_open"
FAILURE_CLASSES = (FAILURE_RATE_LIMITED, FAILURE_LG_OUTAGE,
                   FAILURE_TIMEOUT, FAILURE_MALFORMED,
                   FAILURE_BREAKER_OPEN)

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    requests=reg.counter(
        "repro_lg_client_requests_total",
        "HTTP requests issued by the LG client", ("ixp", "family")),
    retries=reg.counter(
        "repro_lg_client_retries_total",
        "Request attempts retried after a transient failure",
        ("ixp", "family")),
    errors=reg.counter(
        "repro_lg_client_errors_total",
        "Request-level failures by kind",
        ("ixp", "family", "kind")),
    retry_after=reg.counter(
        "repro_lg_client_retry_after_total",
        "429 responses whose Retry-After header was honoured",
        ("ixp", "family")),
    backoff=reg.counter(
        "repro_lg_client_backoff_seconds_total",
        "Seconds spent sleeping between retries", ("ixp", "family")),
    fetch=reg.histogram(
        "repro_lg_client_fetch_seconds",
        "Latency of one successful page/endpoint fetch "
        "(including its internal retries)", ("ixp", "family")),
    exhausted=reg.counter(
        "repro_lg_client_exhausted_total",
        "Fetches abandoned with the whole retry budget spent, "
        "by failure class", ("ixp", "family", "class")),
))


def parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Parse a ``Retry-After`` header into seconds, or None.

    RFC 9110 allows both delta-seconds and an HTTP-date. Only the
    numeric form is honoured (a non-negative float); an HTTP-date —
    or any garbage — returns None so the caller falls back to its own
    backoff schedule instead of crashing mid-retry-loop (computing a
    delta from a server-supplied wall-clock date would import the
    server's clock skew into our sleep).
    """
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except ValueError:
        return None
    if not math.isfinite(seconds) or seconds < 0:
        return None
    return seconds


class LookingGlassError(Exception):
    """The LG could not be queried (after retries)."""

    #: which bucket of the failure taxonomy this error falls in.
    failure_class = FAILURE_LG_OUTAGE


class TransientError(LookingGlassError):
    """A failure worth retrying at a higher level (page / peer)."""


class RateLimitedError(TransientError):
    """HTTP 429 persisted through the whole retry budget."""

    failure_class = FAILURE_RATE_LIMITED


class OutageError(TransientError):
    """5xx or connection-level failure persisted through retries."""

    failure_class = FAILURE_LG_OUTAGE


class QueryTimeoutError(TransientError):
    """The LG kept exceeding the request timeout."""

    failure_class = FAILURE_TIMEOUT


class MalformedPayloadError(TransientError):
    """The LG kept returning truncated/undecodable JSON."""

    failure_class = FAILURE_MALFORMED


class CircuitOpenError(LookingGlassError):
    """Refused locally: the mount's circuit breaker is open."""

    failure_class = FAILURE_BREAKER_OPEN


@dataclass
class ClientStats:
    """Counters for observability and tests.

    Thread-safe: the concurrent collection engine shares one client
    (and so one stats object) across a worker pool, and ``n += 1`` on
    an attribute is a read-modify-write that can lose updates under
    preemption — all bumps go through :meth:`incr`.
    """

    requests: int = 0
    retries: int = 0
    rate_limited: int = 0
    server_errors: int = 0
    timeouts: int = 0
    malformed: int = 0
    #: definitive 4xx answers — "the LG said no", as opposed to the
    #: transport-loss buckets above (campaign reports distinguish them).
    http_4xx: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def incr(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)


@dataclass
class LookingGlassClient:
    """LG client for one (ixp, family) mount.

    ``dialect`` selects the remote API flavour ("alice" default, or
    "birdseye"); responses are normalised to the common types either
    way — the Periscope-style unification the paper's scraping needed.

    Safe to share across collection workers: stats bumps are locked,
    the breaker serialises its own transitions, and the jitter rng is
    only consulted for backoff delays (never for payload content), so
    concurrent interleavings cannot change *what* is collected.
    """

    base_url: str
    ixp: str
    family: int
    dialect: str = "alice"
    max_retries: int = 5
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: upper bound on a server-requested Retry-After wait. The server's
    #: word is honoured (unlike backoff_cap, which only bounds our own
    #: exponential schedule) but a hostile/buggy header can't stall the
    #: campaign for an hour.
    retry_after_cap: float = 60.0
    #: socket timeout per request, seconds.
    timeout: float = 30.0
    #: extra whole-page retries in :meth:`routes` after ``_get_raw``'s
    #: own budget is spent — one lost page must not discard a peer.
    page_retries: int = 1
    #: full-jitter backoff (AWS-style); disable for exact-delay tests.
    jitter: bool = True
    #: optional per-mount circuit breaker (campaigns install one).
    breaker: Optional[CircuitBreaker] = None
    #: sleep function — injectable so tests run instantly.
    sleep: Any = time.sleep
    #: rng for jitter — seeded so reruns are reproducible.
    rng: random.Random = field(
        default_factory=lambda: random.Random(0x1C27))
    stats: ClientStats = field(default_factory=ClientStats)

    def _url(self, resource: str) -> str:
        return (f"{self.base_url}/{self.ixp}/v{self.family}"
                f"{api.API_PREFIX}{resource}")

    def _get(self, resource: str) -> Dict[str, Any]:
        """GET with retries; raises LookingGlassError when exhausted."""
        return self._get_raw(self._url(resource))

    def _backoff_delay(self, attempt: int) -> float:
        return full_jitter_delay(attempt, self.backoff_base,
                                 self.backoff_cap, self.rng, self.jitter)

    @property
    def _mount_labels(self) -> tuple:
        return (self.ixp, str(self.family))

    def _get_raw(self, url: str) -> Dict[str, Any]:
        metrics = _METRICS()
        mount = self._mount_labels
        if self.breaker is not None and not self.breaker.allow():
            raise CircuitOpenError(
                f"GET {url} refused: circuit open for "
                f"{self.ixp}/v{self.family} "
                f"({self.breaker.seconds_until_probe:.1f}s until probe)")
        last_error: Optional[str] = None
        error_type = OutageError
        started = time.perf_counter()
        for attempt in range(self.max_retries + 1):
            self.stats.incr("requests")
            metrics.requests.labels(*mount).inc()
            delay: float
            try:
                with urllib.request.urlopen(
                        url, timeout=self.timeout) as response:
                    body = response.read()
            except urllib.error.HTTPError as error:
                if error.code == 429:
                    self.stats.incr("rate_limited")
                    metrics.errors.labels(*mount, "rate_limited").inc()
                    error_type = RateLimitedError
                    retry_after = parse_retry_after(
                        error.headers.get("Retry-After"))
                    if retry_after is not None:
                        metrics.retry_after.labels(*mount).inc()
                        delay = min(self.retry_after_cap,
                                    max(retry_after, 0.01))
                    else:
                        # absent, HTTP-date, or garbage header: our own
                        # backoff schedule decides the wait.
                        delay = self._backoff_delay(attempt)
                elif 500 <= error.code < 600:
                    self.stats.incr("server_errors")
                    metrics.errors.labels(*mount, "server_error").inc()
                    error_type = OutageError
                    delay = self._backoff_delay(attempt)
                else:
                    # 4xx: the LG is alive and answered definitively.
                    self._record(success=True)
                    self.stats.incr("http_4xx")
                    metrics.errors.labels(*mount, "http_4xx").inc()
                    raise LookingGlassError(
                        f"GET {url} failed: HTTP {error.code}") from error
                last_error = f"HTTP {error.code}"
            except (socket.timeout, TimeoutError):
                self.stats.incr("timeouts")
                metrics.errors.labels(*mount, "timeout").inc()
                error_type = QueryTimeoutError
                last_error = f"timed out after {self.timeout}s"
                delay = self._backoff_delay(attempt)
            except urllib.error.URLError as error:
                if isinstance(error.reason, (socket.timeout, TimeoutError)):
                    self.stats.incr("timeouts")
                    metrics.errors.labels(*mount, "timeout").inc()
                    error_type = QueryTimeoutError
                    last_error = f"timed out after {self.timeout}s"
                else:
                    metrics.errors.labels(*mount, "connection").inc()
                    error_type = OutageError
                    last_error = str(error.reason)
                delay = self._backoff_delay(attempt)
            else:
                try:
                    payload = json.loads(body)
                except ValueError as error:
                    self.stats.incr("malformed")
                    metrics.errors.labels(*mount, "malformed").inc()
                    error_type = MalformedPayloadError
                    last_error = f"malformed JSON ({error})"
                    delay = self._backoff_delay(attempt)
                else:
                    self._record(success=True)
                    metrics.fetch.labels(*mount).observe(
                        time.perf_counter() - started)
                    return payload
            if attempt < self.max_retries:
                self.stats.incr("retries")
                metrics.retries.labels(*mount).inc()
                metrics.backoff.labels(*mount).inc(delay)
                self.sleep(delay)
        self._record(success=False)
        metrics.exhausted.labels(
            *mount, error_type.failure_class).inc()
        raise error_type(
            f"GET {url} failed after {self.max_retries + 1} attempts "
            f"({last_error})")

    def _record(self, success: bool) -> None:
        if self.breaker is None:
            return
        if success:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()

    # -- endpoints -------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        return self._get("/status")

    def config_dictionary(self) -> CommunityDictionary:
        """The RS-config half of the paper's dictionary (§3)."""
        return CommunityDictionary.from_dict(self._get("/config"))

    def neighbors(self) -> List[api.NeighborSummary]:
        from . import dialects
        if self.dialect == dialects.DIALECT_BIRDSEYE:
            payload = self._get_raw(
                f"{self.base_url}/{self.ixp}/v{self.family}"
                "/api/protocols")
        else:
            payload = self._get("/neighbors")
        return dialects.parse_neighbors(payload, self.dialect)

    def _page_url(self, asn: int, filtered: bool, page: int,
                  page_size: int) -> str:
        from . import dialects
        if self.dialect == dialects.DIALECT_BIRDSEYE:
            if filtered:
                raise LookingGlassError(
                    "the birdseye dialect does not expose the "
                    "filtered route set")
            return (f"{self.base_url}/{self.ixp}/v{self.family}"
                    f"/api/routes/pb_{asn}?page={page}"
                    f"&page_size={page_size}")
        query = f"/neighbors/{asn}/routes?page={page}" \
                f"&page_size={page_size}"
        if filtered:
            query += "&filtered=1"
        return self._url(query)

    def _fetch_page(self, asn: int, filtered: bool, page: int,
                    page_size: int) -> Dict[str, Any]:
        """One routes page, with page-level retry on transient failure
        (a fresh ``_get_raw`` budget per attempt) so a single lost page
        does not discard the peer's whole pagination."""
        attempts = max(0, self.page_retries) + 1
        for attempt in range(attempts):
            try:
                return self._get_raw(
                    self._page_url(asn, filtered, page, page_size))
            except CircuitOpenError:
                raise  # the mount is down; retrying locally is pointless
            except TransientError:
                if attempt == attempts - 1:
                    raise
        raise AssertionError("unreachable")

    def routes(self, asn: int, filtered: bool = False,
               page_size: int = api.DEFAULT_PAGE_SIZE) -> Iterator[Route]:
        """All (accepted or filtered) routes of one neighbor, following
        pagination (dialect-aware)."""
        from . import dialects
        page = 1
        while True:
            payload = self._fetch_page(asn, filtered, page, page_size)
            yield from dialects.parse_routes(payload, self.dialect)
            if page >= dialects.total_pages(payload, self.dialect):
                return
            page += 1

    def all_routes(self, filtered: bool = False) -> List[Route]:
        """Accepted (or filtered) routes of every established neighbor,
        collected peer by peer — the paper's §3 procedure ("for each
        peer, we collect all the accepted routes")."""
        routes: List[Route] = []
        for neighbor in self.neighbors():
            if not neighbor.established:
                continue
            routes.extend(self.routes(neighbor.asn, filtered=filtered))
        return routes
