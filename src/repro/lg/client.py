"""Looking Glass HTTP client.

Consumes the :mod:`repro.lg.api` endpoints with the robustness the
paper's collection needed (§3): retry with exponential backoff on 5xx,
honouring ``Retry-After`` on 429, and a single persistent connection
("we kept a single connection to the LG server, to avoid overloading
it" — the client is strictly sequential).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from ..bgp.route import Route
from ..ixp.dictionary import CommunityDictionary
from . import api


class LookingGlassError(Exception):
    """The LG could not be queried (after retries)."""


@dataclass
class ClientStats:
    """Counters for observability and tests."""

    requests: int = 0
    retries: int = 0
    rate_limited: int = 0
    server_errors: int = 0


@dataclass
class LookingGlassClient:
    """Sequential LG client for one (ixp, family) mount.

    ``dialect`` selects the remote API flavour ("alice" default, or
    "birdseye"); responses are normalised to the common types either
    way — the Periscope-style unification the paper's scraping needed.
    """

    base_url: str
    ixp: str
    family: int
    dialect: str = "alice"
    max_retries: int = 5
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: sleep function — injectable so tests run instantly.
    sleep: Any = time.sleep
    stats: ClientStats = field(default_factory=ClientStats)

    def _url(self, resource: str) -> str:
        return (f"{self.base_url}/{self.ixp}/v{self.family}"
                f"{api.API_PREFIX}{resource}")

    def _get(self, resource: str) -> Dict[str, Any]:
        """GET with retries; raises LookingGlassError when exhausted."""
        return self._get_raw(self._url(resource))

    def _get_raw(self, url: str) -> Dict[str, Any]:
        last_error: Optional[str] = None
        for attempt in range(self.max_retries + 1):
            self.stats.requests += 1
            try:
                with urllib.request.urlopen(url, timeout=30) as response:
                    return json.load(response)
            except urllib.error.HTTPError as error:
                if error.code == 429:
                    self.stats.rate_limited += 1
                    retry_after = float(
                        error.headers.get("Retry-After", "0.1") or 0.1)
                    delay = min(self.backoff_cap, max(retry_after, 0.01))
                elif 500 <= error.code < 600:
                    self.stats.server_errors += 1
                    delay = min(self.backoff_cap,
                                self.backoff_base * (2 ** attempt))
                else:
                    raise LookingGlassError(
                        f"GET {url} failed: HTTP {error.code}") from error
                last_error = f"HTTP {error.code}"
            except urllib.error.URLError as error:
                delay = min(self.backoff_cap,
                            self.backoff_base * (2 ** attempt))
                last_error = str(error.reason)
            if attempt < self.max_retries:
                self.stats.retries += 1
                self.sleep(delay)
        raise LookingGlassError(
            f"GET {url} failed after {self.max_retries + 1} attempts "
            f"({last_error})")

    # -- endpoints -------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        return self._get("/status")

    def config_dictionary(self) -> CommunityDictionary:
        """The RS-config half of the paper's dictionary (§3)."""
        return CommunityDictionary.from_dict(self._get("/config"))

    def neighbors(self) -> List[api.NeighborSummary]:
        from . import dialects
        if self.dialect == dialects.DIALECT_BIRDSEYE:
            payload = self._get_raw(
                f"{self.base_url}/{self.ixp}/v{self.family}"
                "/api/protocols")
        else:
            payload = self._get("/neighbors")
        return dialects.parse_neighbors(payload, self.dialect)

    def routes(self, asn: int, filtered: bool = False,
               page_size: int = api.DEFAULT_PAGE_SIZE) -> Iterator[Route]:
        """All (accepted or filtered) routes of one neighbor, following
        pagination (dialect-aware)."""
        from . import dialects
        page = 1
        while True:
            if self.dialect == dialects.DIALECT_BIRDSEYE:
                if filtered:
                    raise LookingGlassError(
                        "the birdseye dialect does not expose the "
                        "filtered route set")
                payload = self._get_raw(
                    f"{self.base_url}/{self.ixp}/v{self.family}"
                    f"/api/routes/pb_{asn}?page={page}"
                    f"&page_size={page_size}")
            else:
                query = f"/neighbors/{asn}/routes?page={page}" \
                        f"&page_size={page_size}"
                if filtered:
                    query += "&filtered=1"
                payload = self._get(query)
            yield from dialects.parse_routes(payload, self.dialect)
            if page >= dialects.total_pages(payload, self.dialect):
                return
            page += 1

    def all_routes(self, filtered: bool = False) -> List[Route]:
        """Accepted (or filtered) routes of every established neighbor,
        collected peer by peer — the paper's §3 procedure ("for each
        peer, we collect all the accepted routes")."""
        routes: List[Route] = []
        for neighbor in self.neighbors():
            if not neighbor.established:
                continue
            routes.extend(self.routes(neighbor.asn, filtered=filtered))
        return routes
