"""Looking Glass substrate: JSON API, HTTP server, resilient client."""

from .api import DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE, NeighborSummary
from .breaker import BreakerRegistry, CircuitBreaker
from .dialects import DIALECT_ALICE, DIALECT_BIRDSEYE, DIALECTS
from .aio import AsyncLookingGlassClient
from .client import (
    FAILURE_CLASSES,
    FAILURE_LG_OUTAGE,
    FAILURE_MALFORMED,
    FAILURE_RATE_LIMITED,
    FAILURE_TIMEOUT,
    CircuitOpenError,
    ClientStats,
    LookingGlassClient,
    LookingGlassError,
    MalformedPayloadError,
    OutageError,
    QueryTimeoutError,
    RateLimitedError,
    TransientError,
    parse_retry_after,
)
from .ratelimit import FaultSchedule, InstabilityInjector, TokenBucket
from .server import LookingGlassServer

__all__ = [
    "LookingGlassServer", "LookingGlassClient",
    "AsyncLookingGlassClient", "parse_retry_after", "LookingGlassError",
    "TransientError", "RateLimitedError", "OutageError",
    "QueryTimeoutError", "MalformedPayloadError", "CircuitOpenError",
    "FAILURE_CLASSES", "FAILURE_RATE_LIMITED", "FAILURE_LG_OUTAGE",
    "FAILURE_TIMEOUT", "FAILURE_MALFORMED",
    "CircuitBreaker", "BreakerRegistry",
    "ClientStats", "NeighborSummary", "TokenBucket",
    "InstabilityInjector", "FaultSchedule",
    "DEFAULT_PAGE_SIZE", "MAX_PAGE_SIZE",
    "DIALECT_ALICE", "DIALECT_BIRDSEYE", "DIALECTS",
]
