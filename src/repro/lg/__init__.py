"""Looking Glass substrate: JSON API, HTTP server, resilient client."""

from .api import DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE, NeighborSummary
from .dialects import DIALECT_ALICE, DIALECT_BIRDSEYE, DIALECTS
from .client import ClientStats, LookingGlassClient, LookingGlassError
from .ratelimit import InstabilityInjector, TokenBucket
from .server import LookingGlassServer

__all__ = [
    "LookingGlassServer", "LookingGlassClient", "LookingGlassError",
    "ClientStats", "NeighborSummary", "TokenBucket",
    "InstabilityInjector", "DEFAULT_PAGE_SIZE", "MAX_PAGE_SIZE",
    "DIALECT_ALICE", "DIALECT_BIRDSEYE", "DIALECTS",
]
