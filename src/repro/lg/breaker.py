"""Per-LG circuit breaker.

A twelve-week campaign against flaky public Looking Glasses cannot
afford to burn its whole retry budget against an endpoint that is down
for an afternoon (§3's "LG instability"). The breaker wraps every
(ixp, family) mount with the classic three-state machine:

* **closed** — requests flow; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures the
  breaker trips and requests are refused instantly (no network I/O)
  for ``reset_timeout`` seconds;
* **half-open** — after the cooldown one probe request is let through:
  success closes the breaker, failure re-opens it (and restarts the
  cooldown).

The breaker is **thread-safe**: the concurrent collection engine
(see :mod:`repro.collector.campaign`) shares one breaker per mount
across a worker pool, so every state read/transition happens under a
lock and exactly one worker wins the half-open probe — the rest are
refused until the probe's outcome is recorded.

The clock is injectable so tests drive the cooldown without sleeping.
"""

from __future__ import annotations

import threading
import time
import types
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from .. import obs

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

STATES = (CLOSED, OPEN, HALF_OPEN)

#: numeric encoding of states for the breaker-state gauge.
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    transitions=reg.counter(
        "repro_lg_breaker_transitions_total",
        "Circuit-breaker state transitions",
        ("mount", "from_state", "to_state")),
    rejected=reg.counter(
        "repro_lg_breaker_rejected_total",
        "Requests refused locally while the breaker was open",
        ("mount",)),
    state=reg.gauge(
        "repro_lg_breaker_state",
        "Current breaker state (0 closed, 1 open, 2 half-open)",
        ("mount",)),
))


@dataclass
class CircuitBreaker:
    """Three-state circuit breaker for one LG mount."""

    #: consecutive failures that trip the breaker.
    failure_threshold: int = 5
    #: seconds the breaker stays open before allowing a probe.
    reset_timeout: float = 30.0
    #: injectable monotonic clock (tests pass a fake).
    clock: Any = time.monotonic
    #: metric label identifying the mount (e.g. ``linx/v4``); breakers
    #: created anonymously report as ``-``.
    name: str = "-"

    state: str = CLOSED
    consecutive_failures: int = 0
    #: how many times the breaker has tripped (observability).
    times_opened: int = 0
    #: requests refused while open (observability).
    rejected: int = 0
    _opened_at: float = field(default=0.0, repr=False)
    #: a half-open probe has been handed out and its outcome is still
    #: unrecorded — concurrent callers must not also probe.
    _probe_in_flight: bool = field(default=False, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def allow(self) -> bool:
        """May a request proceed right now?

        Transitions open → half-open when the cooldown has elapsed, in
        which case the caller gets exactly one probe: under a worker
        pool, concurrent callers racing for the probe all lose except
        one — the rest are refused until the probe's outcome has been
        recorded (success closes, failure restarts the cooldown).
        """
        with self._lock:
            if self.state == CLOSED:
                return True
            if self.state == OPEN:
                if self.clock() - self._opened_at >= self.reset_timeout:
                    self._transition(HALF_OPEN)
                    self._probe_in_flight = True
                    return True
                return self._reject()
            # HALF_OPEN: exactly one probe per cooldown. The winner's
            # outcome (record_success/record_failure) releases the slot.
            if self._probe_in_flight:
                return self._reject()
            self._probe_in_flight = True
            return True

    def _reject(self) -> bool:
        """Count one refused request (lock held)."""
        self.rejected += 1
        _METRICS().rejected.labels(self.name).inc()
        return False

    def record_success(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            if self.state != CLOSED:
                self._transition(CLOSED)
            self.consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            self.consecutive_failures += 1
            if self.state == HALF_OPEN or (
                    self.state == CLOSED
                    and self.consecutive_failures
                    >= self.failure_threshold):
                self._trip()

    def _trip(self) -> None:
        """Open the breaker and start the cooldown (lock held)."""
        self._transition(OPEN)
        self.times_opened += 1
        self._opened_at = self.clock()

    def _transition(self, new_state: str) -> None:
        """State change + metrics (lock held)."""
        metrics = _METRICS()
        metrics.transitions.labels(self.name, self.state,
                                   new_state).inc()
        metrics.state.labels(self.name).set(STATE_CODES[new_state])
        self.state = new_state

    @property
    def seconds_until_probe(self) -> float:
        """How long until an open breaker will allow a probe (0 when
        closed/half-open or when the cooldown already elapsed)."""
        with self._lock:
            if self.state != OPEN:
                return 0.0
            return max(0.0, self.reset_timeout
                       - (self.clock() - self._opened_at))


class BreakerRegistry:
    """One :class:`CircuitBreaker` per (ixp, family) mount.

    A campaign scraping several mounts of the same physical LG keeps
    independent breaker state per mount — one unstable route server
    must not blacklist its siblings. ``get`` is thread-safe: campaigns
    collecting mounts concurrently must agree on one breaker per mount.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 30.0,
                 clock: Any = time.monotonic) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock
        self._breakers: Dict[Tuple[str, int], CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, ixp: str, family: int) -> CircuitBreaker:
        key = (ixp, family)
        with self._lock:
            if key not in self._breakers:
                self._breakers[key] = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    reset_timeout=self.reset_timeout,
                    clock=self.clock,
                    name=f"{ixp}/v{family}")
            return self._breakers[key]

    def states(self) -> Dict[str, str]:
        """Mount → state, for campaign reports."""
        with self._lock:
            breakers = sorted(self._breakers.items())
        return {f"{ixp}/v{family}": breaker.state
                for (ixp, family), breaker in breakers}
