"""Per-LG circuit breaker.

A twelve-week campaign against flaky public Looking Glasses cannot
afford to burn its whole retry budget against an endpoint that is down
for an afternoon (§3's "LG instability"). The breaker wraps every
(ixp, family) mount with the classic three-state machine:

* **closed** — requests flow; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures the
  breaker trips and requests are refused instantly (no network I/O)
  for ``reset_timeout`` seconds;
* **half-open** — after the cooldown one probe request is let through:
  success closes the breaker, failure re-opens it (and restarts the
  cooldown).

The clock is injectable so tests drive the cooldown without sleeping.
"""

from __future__ import annotations

import time
import types
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from .. import obs

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

STATES = (CLOSED, OPEN, HALF_OPEN)

#: numeric encoding of states for the breaker-state gauge.
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    transitions=reg.counter(
        "repro_lg_breaker_transitions_total",
        "Circuit-breaker state transitions",
        ("mount", "from_state", "to_state")),
    rejected=reg.counter(
        "repro_lg_breaker_rejected_total",
        "Requests refused locally while the breaker was open",
        ("mount",)),
    state=reg.gauge(
        "repro_lg_breaker_state",
        "Current breaker state (0 closed, 1 open, 2 half-open)",
        ("mount",)),
))


@dataclass
class CircuitBreaker:
    """Three-state circuit breaker for one LG mount."""

    #: consecutive failures that trip the breaker.
    failure_threshold: int = 5
    #: seconds the breaker stays open before allowing a probe.
    reset_timeout: float = 30.0
    #: injectable monotonic clock (tests pass a fake).
    clock: Any = time.monotonic
    #: metric label identifying the mount (e.g. ``linx/v4``); breakers
    #: created anonymously report as ``-``.
    name: str = "-"

    state: str = CLOSED
    consecutive_failures: int = 0
    #: how many times the breaker has tripped (observability).
    times_opened: int = 0
    #: requests refused while open (observability).
    rejected: int = 0
    _opened_at: float = field(default=0.0, repr=False)

    def allow(self) -> bool:
        """May a request proceed right now?

        Transitions open → half-open when the cooldown has elapsed, in
        which case the caller gets exactly one probe.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.clock() - self._opened_at >= self.reset_timeout:
                self._transition(HALF_OPEN)
                return True
            self.rejected += 1
            _METRICS().rejected.labels(self.name).inc()
            return False
        # HALF_OPEN: one probe is already in flight this cooldown; let
        # the caller through — sequential clients probe one at a time.
        return True

    def record_success(self) -> None:
        if self.state != CLOSED:
            self._transition(CLOSED)
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
                self.state == CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self._trip()

    def _trip(self) -> None:
        self._transition(OPEN)
        self.times_opened += 1
        self._opened_at = self.clock()

    def _transition(self, new_state: str) -> None:
        metrics = _METRICS()
        metrics.transitions.labels(self.name, self.state,
                                   new_state).inc()
        metrics.state.labels(self.name).set(STATE_CODES[new_state])
        self.state = new_state

    @property
    def seconds_until_probe(self) -> float:
        """How long until an open breaker will allow a probe (0 when
        closed/half-open or when the cooldown already elapsed)."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self.reset_timeout
                   - (self.clock() - self._opened_at))


class BreakerRegistry:
    """One :class:`CircuitBreaker` per (ixp, family) mount.

    A campaign scraping several mounts of the same physical LG keeps
    independent breaker state per mount — one unstable route server
    must not blacklist its siblings.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 30.0,
                 clock: Any = time.monotonic) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock
        self._breakers: Dict[Tuple[str, int], CircuitBreaker] = {}

    def get(self, ixp: str, family: int) -> CircuitBreaker:
        key = (ixp, family)
        if key not in self._breakers:
            self._breakers[key] = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                reset_timeout=self.reset_timeout,
                clock=self.clock,
                name=f"{ixp}/v{family}")
        return self._breakers[key]

    def states(self) -> Dict[str, str]:
        """Mount → state, for campaign reports."""
        return {f"{ixp}/v{family}": breaker.state
                for (ixp, family), breaker in sorted(self._breakers.items())}
