"""Looking Glass API schema.

The studied IXPs expose their route servers through LG frontends
(alice-lg at DE-CIX/LINX, birdseye at BCIX, custom UIs at IX.br/AMS-IX).
All of them boil down to the same three resources, which this module
models as plain JSON payload builders/parsers:

* ``GET /api/v1/status``                  — LG and RS liveness/metadata;
* ``GET /api/v1/config``                  — community semantics (the
  RS-config half of the paper's dictionary, §3);
* ``GET /api/v1/neighbors``               — peers with route counts;
* ``GET /api/v1/neighbors/<asn>/routes``  — accepted routes of one peer
  (paginated), with ``?filtered=1`` for the rejected set.

The server (:mod:`repro.lg.server`) renders these; the client
(:mod:`repro.lg.client`) consumes them; the scraper
(:mod:`repro.collector.scraper`) drives the client the way the paper's
collection pipeline drove the real LGs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..bgp.route import Route

API_PREFIX = "/api/v1"
DEFAULT_PAGE_SIZE = 500
MAX_PAGE_SIZE = 2000


def status_payload(ixp: str, family: int, rs_asn: int,
                   generated_at: str) -> Dict[str, Any]:
    return {
        "status": "ok",
        "ixp": ixp,
        "family": family,
        "rs_asn": rs_asn,
        "generated_at": generated_at,
        "api_version": "v1",
    }


def neighbors_payload(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    return {"neighbors": list(rows), "count": len(rows)}


def routes_payload(routes: Sequence[Route], page: int, page_size: int,
                   total: int, filtered: bool) -> Dict[str, Any]:
    return {
        "routes": [route.to_dict() for route in routes],
        "pagination": {
            "page": page,
            "page_size": page_size,
            "total_routes": total,
            "total_pages": (total + page_size - 1) // page_size if total
                            else 1,
        },
        "filtered": filtered,
    }


def error_payload(message: str, status: int) -> Dict[str, Any]:
    return {"status": "error", "code": status, "message": message}


@dataclass(frozen=True)
class NeighborSummary:
    """Client-side view of one ``/neighbors`` row."""

    asn: int
    name: str
    state: str
    routes_accepted: int
    routes_filtered: int

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "NeighborSummary":
        return cls(
            asn=int(payload["asn"]),
            name=str(payload.get("name", f"AS{payload['asn']}")),
            state=str(payload.get("state", "Established")),
            routes_accepted=int(payload.get("routes_accepted", 0)),
            routes_filtered=int(payload.get("routes_filtered", 0)),
        )

    @property
    def established(self) -> bool:
        return self.state == "Established"


def parse_routes_page(payload: Dict[str, Any]) -> List[Route]:
    return [Route.from_dict(r) for r in payload.get("routes", ())]


def total_pages(payload: Dict[str, Any]) -> int:
    return int(payload.get("pagination", {}).get("total_pages", 1))
