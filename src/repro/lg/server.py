"""Looking Glass HTTP server (stdlib only).

Serves one or more route servers over the JSON API described in
:mod:`repro.lg.api`, with token-bucket rate limiting (HTTP 429) and
optional instability injection (HTTP 503) — the two failure modes the
paper's §3 collection had to survive.

Usage::

    server = LookingGlassServer({("decix-fra", 4): route_server})
    with server.serve() as base_url:
        ...  # point a LookingGlassClient at base_url

URL layout (one route server per (ixp, family) mount):

    /<ixp>/v<family>/api/v1/status
    /<ixp>/v<family>/api/v1/config
    /<ixp>/v<family>/api/v1/neighbors
    /<ixp>/v<family>/api/v1/neighbors/<asn>/routes?page=N[&filtered=1]

plus the ops-plane ``/metrics`` endpoint (Prometheus text format,
live when :func:`repro.obs.enable` has been called).
"""

from __future__ import annotations

import contextlib
import datetime as _dt
import json
import re
import threading
import time
import types
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .. import obs
from ..routeserver.server import RouteServer
from . import api, dialects
from .ratelimit import (
    FAULT_MALFORMED,
    FAULT_OUTAGE,
    FAULT_SLOW,
    FaultSchedule,
    InstabilityInjector,
    TokenBucket,
)

_ROUTE_PATTERN = re.compile(
    r"^/(?P<ixp>[\w.-]+)/v(?P<family>[46])" + api.API_PREFIX
    + r"(?P<resource>/status|/config|/neighbors"
    + r"|/neighbors/(?P<asn>\d+)/routes)$")

#: birdseye URL layout: /<ixp>/v<family>/api/protocols and
#: /<ixp>/v<family>/api/routes/pb_<asn>
_BIRDSEYE_PATTERN = re.compile(
    r"^/(?P<ixp>[\w.-]+)/v(?P<family>[46])/api"
    r"(?P<resource>/protocols|/routes/pb_(?P<asn>\d+))$")

#: ops-plane path serving the process metrics in Prometheus text
#: format (never rate limited, never fault injected).
METRICS_PATH = "/metrics"

#: mount prefix of any API path: /<ixp>/v<4|6>/...
_MOUNT_PATTERN = re.compile(r"^/(?P<ixp>[\w.-]+)/v(?P<family>[46])/")

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    requests=reg.counter(
        "repro_lg_server_requests_total",
        "Requests answered by the simulated LG, by HTTP status",
        ("status",)),
    cap_rejections=reg.counter(
        "repro_lg_server_cap_rejections_total",
        "Connections refused by the per-mount connection cap",
        ("mount",)),
))


class _ConnectionLedger:
    """Per-mount accounting of open front-end connections.

    The cap fault mode models a real LG's reverse proxy shedding load:
    a connection is pinned to the mount of its first request (moved if
    a later request targets another mount) and released when it
    closes. ``peak`` and ``rejections`` are kept per mount so tests and
    benchmarks can assert that a well-capped client never trips the
    server's limit.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._mount_of: Dict[int, str] = {}
        self._count: Dict[str, int] = {}
        self.peak: Dict[str, int] = {}
        self.rejections: Dict[str, int] = {}

    def admit(self, conn_id: int, mount: str,
              cap: Optional[int]) -> bool:
        with self._lock:
            current = self._mount_of.get(conn_id)
            if current == mount:
                return True
            if current is not None:
                self._release_locked(conn_id)
            count = self._count.get(mount, 0)
            if cap is not None and count >= cap:
                self.rejections[mount] = \
                    self.rejections.get(mount, 0) + 1
                return False
            self._mount_of[conn_id] = mount
            self._count[mount] = count + 1
            self.peak[mount] = max(self.peak.get(mount, 0), count + 1)
            return True

    def drop(self, conn_id: int) -> None:
        with self._lock:
            self._release_locked(conn_id)

    def _release_locked(self, conn_id: int) -> None:
        mount = self._mount_of.pop(conn_id, None)
        if mount is not None:
            self._count[mount] = max(0, self._count.get(mount, 0) - 1)


class LookingGlassServer:
    """An HTTP Looking Glass over in-memory route servers."""

    def __init__(self, route_servers: Dict[Tuple[str, int], RouteServer],
                 rate_per_second: float = 200.0,
                 burst: int = 200,
                 failure_rate: float = 0.0,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 dialect_overrides: Optional[Dict[str, str]] = None,
                 faults: Optional[FaultSchedule] = None,
                 connection_cap: Optional[int] = None,
                 ) -> None:
        self.route_servers = dict(route_servers)
        #: IXP key → dialect; alice unless overridden (e.g. BCIX runs
        #: birdseye). The server answers BOTH URL layouts regardless —
        #: this records which frontend an IXP nominally runs.
        self.dialects = dict(dialect_overrides or {})
        self.bucket = TokenBucket(rate_per_second, burst)
        self.injector = InstabilityInjector(failure_rate=failure_rate)
        #: deterministic fault plan (outage windows, slow responses,
        #: truncated JSON); None disables.
        self.faults = faults
        #: concurrent-connection cap fault mode: beyond this many open
        #: connections per (ixp, family) mount, further connections are
        #: answered 503-and-close. None disables. Lets tests prove the
        #: async client's connection cap actually bounds LG pressure.
        self.connection_cap = connection_cap
        self._ledger = _ConnectionLedger()
        #: injectable so slow-response tests need not really stall.
        self.slow_sleep = time.sleep
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- request handling (framework-free) ------------------------------

    def handle(self, path: str) -> Tuple[int, Dict[str, object]]:
        """Resolve one GET request path to (status, JSON payload).

        Pure function of server state — exercised directly by unit tests
        without sockets, and by the HTTP handler below.
        """
        if self.injector.should_fail():
            return 503, api.error_payload("looking glass unstable", 503)
        if not self.bucket.try_acquire():
            return 429, api.error_payload("query rate limit exceeded", 429)
        parsed = urlparse(path)
        match = _ROUTE_PATTERN.match(parsed.path)
        if not match:
            birdseye = _BIRDSEYE_PATTERN.match(parsed.path)
            if birdseye is not None:
                return self._handle_birdseye(birdseye, parsed.query)
            return 404, api.error_payload(f"no such resource: {path}", 404)
        key = (match.group("ixp"), int(match.group("family")))
        server = self.route_servers.get(key)
        if server is None:
            return 404, api.error_payload(
                f"no route server mounted at {key}", 404)
        resource = match.group("resource")
        query = parse_qs(parsed.query)
        if resource == "/status":
            return 200, api.status_payload(
                key[0], key[1], server.config.rs_asn,
                _dt.datetime.now(_dt.timezone.utc).isoformat())
        if resource == "/config":
            if server.config.dictionary is None:
                return 500, api.error_payload("no dictionary", 500)
            return 200, server.config.dictionary.to_dict()
        if resource == "/neighbors":
            return 200, api.neighbors_payload(server.peers_summary())
        # /neighbors/<asn>/routes
        asn = int(match.group("asn"))
        if not server.has_peer(asn):
            return 404, api.error_payload(f"no neighbor AS{asn}", 404)
        filtered = query.get("filtered", ["0"])[0] in ("1", "true")
        page = max(1, int(query.get("page", ["1"])[0]))
        page_size = min(api.MAX_PAGE_SIZE,
                        max(1, int(query.get("page_size",
                                             [str(api.DEFAULT_PAGE_SIZE)])[0])))
        routes = (server.filtered_routes(asn) if filtered
                  else server.accepted_routes(asn))
        routes.sort(key=lambda r: r.prefix)
        total = len(routes)
        start = (page - 1) * page_size
        page_routes = routes[start:start + page_size]
        return 200, api.routes_payload(
            page_routes, page, page_size, total, filtered)

    def _handle_birdseye(self, match, query_text: str,
                         ) -> Tuple[int, Dict[str, object]]:
        """Serve the birdseye URL layout (BCIX-style deployments)."""
        key = (match.group("ixp"), int(match.group("family")))
        server = self.route_servers.get(key)
        if server is None:
            return 404, api.error_payload(
                f"no route server mounted at {key}", 404)
        query = parse_qs(query_text)
        resource = match.group("resource")
        if resource == "/protocols":
            return 200, dialects.birdseye_protocols(
                server.peers_summary())
        asn = int(match.group("asn"))
        if not server.has_peer(asn):
            return 404, api.error_payload(f"no protocol pb_{asn}", 404)
        page = max(1, int(query.get("page", ["1"])[0]))
        page_size = min(api.MAX_PAGE_SIZE,
                        max(1, int(query.get("page_size",
                                             [str(api.DEFAULT_PAGE_SIZE)]
                                             )[0])))
        routes = server.accepted_routes(asn)
        routes.sort(key=lambda r: r.prefix)
        total = len(routes)
        start = (page - 1) * page_size
        return 200, dialects.birdseye_routes(
            routes[start:start + page_size], page, page_size, total)

    # -- wire-level faults ----------------------------------------------

    def handle_bytes(self, path: str) -> Tuple[int, bytes, Dict[str, str]]:
        """One GET rendered to wire bytes, with the fault schedule
        applied: scheduled outages answer 503 without touching the
        route servers, slow responses stall before answering, and
        malformed responses truncate the JSON body mid-document.

        ``/metrics`` is the ops plane: it serves the process metrics in
        Prometheus text format and bypasses rate limiting and fault
        injection — a flaky LG must still be observable.
        """
        if urlparse(path).path == METRICS_PATH:
            text = obs.render_prometheus(obs.get_registry()) \
                if obs.enabled() else "# observability disabled\n"
            return 200, text.encode("utf-8"), {
                "Content-Type": obs.CONTENT_TYPE}
        fault = self.faults.next_fault() if self.faults else None
        if fault == FAULT_OUTAGE:
            body = json.dumps(
                api.error_payload("scheduled maintenance outage",
                                  503)).encode("utf-8")
            _METRICS().requests.labels("503").inc()
            return 503, body, {}
        if fault == FAULT_SLOW:
            self.slow_sleep(self.faults.slow_delay)
        status, payload = self.handle(path)
        body = json.dumps(payload).encode("utf-8")
        headers: Dict[str, str] = {}
        if status == 429:
            headers["Retry-After"] = f"{self.bucket.retry_after:.3f}"
        if fault == FAULT_MALFORMED and status == 200:
            body = body[:max(1, len(body) // 2)]
        _METRICS().requests.labels(str(status)).inc()
        return status, body, headers

    # -- HTTP plumbing ---------------------------------------------------

    @property
    def cap_rejections(self) -> int:
        """Connections refused by the cap fault mode (all mounts)."""
        return sum(self._ledger.rejections.values())

    @property
    def peak_connections(self) -> Dict[str, int]:
        """Highest concurrent connection count seen, per mount."""
        return dict(self._ledger.peak)

    def _admit_connection(self, conn_id: int, path: str) -> bool:
        """Apply the connection-cap fault mode; True = serve."""
        if self.connection_cap is None:
            return True
        parsed = _MOUNT_PATTERN.match(urlparse(path).path)
        if parsed is None:
            return True  # /metrics and unroutable paths are uncapped
        mount = f"{parsed.group('ixp')}/v{parsed.group('family')}"
        if self._ledger.admit(conn_id, mount, self.connection_cap):
            return True
        _METRICS().cap_rejections.labels(mount).inc()
        return False

    def _make_handler(self):
        outer = self

        class Handler(BaseHTTPRequestHandler):
            # HTTP/1.1 so keep-alive is the default: the async
            # client's connection pool depends on it (every response
            # already carries Content-Length). urllib-based clients
            # still send "Connection: close" and get single-use
            # connections, exactly as before.
            protocol_version = "HTTP/1.1"
            #: an idle keep-alive connection is dropped after this —
            #: lingering handler threads must not outlive tests.
            timeout = 30.0
            #: headers and body are separate small writes; with Nagle
            #: on, the second waits out the client's delayed ACK
            #: (~40ms) on every keep-alive response.
            disable_nagle_algorithm = True

            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                if not outer._admit_connection(id(self.connection),
                                               self.path):
                    body = json.dumps(api.error_payload(
                        "connection limit exceeded", 503)).encode("utf-8")
                    _METRICS().requests.labels("503").inc()
                    self._answer(503, body, {"Connection": "close"})
                    self.close_connection = True
                    return
                status, body, headers = outer.handle_bytes(self.path)
                self._answer(status, body, headers)

            def _answer(self, status: int, body: bytes,
                        headers: Dict[str, str]) -> None:
                try:
                    self.send_response(status)
                    self.send_header(
                        "Content-Type",
                        headers.pop("Content-Type", "application/json"))
                    self.send_header("Content-Length", str(len(body)))
                    for name, value in headers.items():
                        self.send_header(name, value)
                    self.end_headers()
                    self.wfile.write(body)
                except (BrokenPipeError, ConnectionResetError):
                    # the client gave up (e.g. timed out during a
                    # scheduled slow response) — nothing to answer.
                    pass

            def finish(self) -> None:
                outer._ledger.drop(id(self.connection))
                super().finish()

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # keep test output clean

        return Handler

    def start(self) -> str:
        """Start serving in a daemon thread; returns the base URL."""
        if self._httpd is not None:
            raise RuntimeError("server already started")
        # A deep accept backlog: the async client opens its whole
        # connection budget in one burst, and the socketserver default
        # of 5 drops the overflow SYNs — each dropped one costs the
        # kernel's ~1s retransmission before the connect completes.
        server_cls = type("_LGServer", (ThreadingHTTPServer,),
                          {"request_queue_size": 128})
        self._httpd = server_cls(
            (self.host, self.port), self._make_handler())
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self.base_url

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
            self._thread = None

    @contextlib.contextmanager
    def serve(self) -> Iterator[str]:
        """Context-manager form of start/stop."""
        url = self.start()
        try:
            yield url
        finally:
            self.stop()
