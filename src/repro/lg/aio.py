"""Event-driven Looking Glass client (:mod:`repro.net.aio`-based).

:class:`AsyncLookingGlassClient` preserves **every semantic** of the
thread-safe :class:`~repro.lg.client.LookingGlassClient` — the same
full-jitter retry schedule (:mod:`repro.net.backoff`), the same
``Retry-After`` honouring with cap, the same circuit breaker, the same
five-class failure taxonomy, the same :class:`ClientStats` buckets and
``repro_lg_client_*`` metrics — but replaces one-thread-per-waiting-
request with one selectors event loop per mount.

What that buys is *page-level* fan-out: the thread-pool engine's unit
of concurrency is a whole peer (pages fetched serially inside
``client.routes``), so its practical in-flight request count tops out
at the number of peers. This client fetches page 1, learns the page
count, and fans pages 2..N onto the loop alongside every other peer's
pages — hundreds of concurrent slow fetches per process at near-zero
idle cost, bounded by two explicit limits:

* ``max_inflight`` — a semaphore over page fetches (one slot covers a
  fetch's whole retry/backoff lifetime), and
* ``max_connections`` — the hard per-mount cap handed to the
  keep-alive :class:`~repro.net.aio.ConnectionPool`; the paper's
  "single connection to the LG server, to avoid overloading it"
  discipline as a first-class limit (set both to 1 and the paper's
  serial behaviour falls out).

Loop- and pool-level health is metered under ``repro_lg_aio_*``
(open/opened connections, pool reuse, loop turn latency, in-flight
fetches) next to the shared ``repro_lg_client_*`` request metrics.

Not thread-safe: one thread drives a client's loop at a time. The
campaign engine keeps one async client per (ixp, family) mount, driven
by that target's coordinating thread — which also means the shared
``ClientStats``/breaker (borrowed from the sync client via
:meth:`from_client`) keep their locked discipline intact.
"""

from __future__ import annotations

import json
import random
import time
import types
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Iterator, List, Optional, Union

from .. import obs
from ..bgp.route import Route
from ..ixp.dictionary import CommunityDictionary
from ..net import aio
from . import api
from .breaker import CircuitBreaker
from .client import (
    ClientStats,
    CircuitOpenError,
    LookingGlassClient,
    LookingGlassError,
    MalformedPayloadError,
    OutageError,
    QueryTimeoutError,
    RateLimitedError,
    TransientError,
    parse_retry_after,
    _METRICS as _CLIENT_METRICS,
)

__all__ = ["AsyncLookingGlassClient"]

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    open_connections=reg.gauge(
        "repro_lg_aio_open_connections",
        "Live keep-alive connections held against the mount",
        ("ixp", "family")),
    connections_opened=reg.counter(
        "repro_lg_aio_connections_opened_total",
        "Connections the pool dialled", ("ixp", "family")),
    pool_reuse=reg.counter(
        "repro_lg_aio_pool_reuse_total",
        "Requests served over a reused keep-alive connection",
        ("ixp", "family")),
    inflight=reg.gauge(
        "repro_lg_aio_inflight_fetches",
        "Page fetches currently holding an inflight slot",
        ("ixp", "family")),
    loop_turn=reg.histogram(
        "repro_lg_aio_loop_turn_seconds",
        "Duration of one event-loop turn", ("ixp", "family")),
))


@dataclass
class AsyncLookingGlassClient:
    """LG client for one (ixp, family) mount on a selectors loop.

    The constructor mirrors :class:`LookingGlassClient` knob for knob,
    plus the two async bounds. URL layout, backoff arithmetic and the
    failure taxonomy are *reused* from the sync client (not copied):
    the unbound ``LookingGlassClient`` helpers are applied to this
    object, which carries the same attributes.
    """

    base_url: str
    ixp: str
    family: int
    dialect: str = "alice"
    max_retries: int = 5
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    retry_after_cap: float = 60.0
    timeout: float = 30.0
    page_retries: int = 1
    jitter: bool = True
    breaker: Optional[CircuitBreaker] = None
    #: page fetches in flight at once (each slot spans one fetch's
    #: whole retry/backoff lifetime).
    max_inflight: int = 32
    #: hard cap on open connections to the mount; None = match
    #: ``max_inflight`` (every in-flight fetch can hold a socket).
    max_connections: Optional[int] = None
    rng: random.Random = field(
        default_factory=lambda: random.Random(0x1C27))
    stats: ClientStats = field(default_factory=ClientStats)

    #: peak of the in-flight gauge over this client's lifetime — the
    #: honest "how much concurrency did we actually sustain" number
    #: benchmarks report.
    peak_inflight: int = field(default=0, init=False)
    inflight_fetches: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.max_inflight = max(1, int(self.max_inflight))
        cap = (self.max_inflight if self.max_connections is None
               else max(1, int(self.max_connections)))
        self.max_connections = cap
        self.loop = aio.EventLoop(on_turn=self._on_turn)
        self.pool = aio.ConnectionPool(
            max_per_host=cap,
            connect_timeout=self.timeout,
            on_open=self._on_open,
            on_reuse=self._on_reuse,
            on_close=self._on_close)
        self._sem = aio.Semaphore(self.max_inflight)

    @classmethod
    def from_client(cls, client: LookingGlassClient,
                    max_inflight: int = 32,
                    max_connections: Optional[int] = None,
                    ) -> "AsyncLookingGlassClient":
        """Wrap a sync client: shares its **stats and breaker**, so
        campaign-level accounting is engine-agnostic."""
        return cls(
            base_url=client.base_url, ixp=client.ixp,
            family=client.family, dialect=client.dialect,
            max_retries=client.max_retries,
            backoff_base=client.backoff_base,
            backoff_cap=client.backoff_cap,
            retry_after_cap=client.retry_after_cap,
            timeout=client.timeout, page_retries=client.page_retries,
            jitter=client.jitter, breaker=client.breaker,
            max_inflight=max_inflight, max_connections=max_connections,
            stats=client.stats)

    # -- observer hooks -------------------------------------------------

    @property
    def _mount_labels(self) -> tuple:
        return (self.ixp, str(self.family))

    def _on_turn(self, seconds: float) -> None:
        _METRICS().loop_turn.labels(*self._mount_labels).observe(seconds)

    def _on_open(self, _key: tuple) -> None:
        metrics = _METRICS()
        metrics.connections_opened.labels(*self._mount_labels).inc()
        metrics.open_connections.labels(*self._mount_labels).inc()

    def _on_reuse(self, _key: tuple) -> None:
        _METRICS().pool_reuse.labels(*self._mount_labels).inc()

    def _on_close(self, _key: tuple) -> None:
        _METRICS().open_connections.labels(*self._mount_labels).dec()

    # -- reused sync-client helpers ------------------------------------

    def _url(self, resource: str) -> str:
        return LookingGlassClient._url(self, resource)

    def _page_url(self, asn: int, filtered: bool, page: int,
                  page_size: int) -> str:
        return LookingGlassClient._page_url(self, asn, filtered, page,
                                            page_size)

    def _backoff_delay(self, attempt: int) -> float:
        return LookingGlassClient._backoff_delay(self, attempt)

    def _record(self, success: bool) -> None:
        LookingGlassClient._record(self, success)

    # -- the retry loop, as a coroutine --------------------------------

    def _get_raw_coro(self, url: str,
                      ) -> Generator[Any, Any, Dict[str, Any]]:
        """Mirror of ``LookingGlassClient._get_raw``: same attempts,
        same taxonomy, same stats/metrics — waits go through the loop
        (timers for backoff, selector for sockets) instead of blocking
        the thread."""
        metrics = _CLIENT_METRICS()
        mount = self._mount_labels
        if self.breaker is not None and not self.breaker.allow():
            raise CircuitOpenError(
                f"GET {url} refused: circuit open for "
                f"{self.ixp}/v{self.family} "
                f"({self.breaker.seconds_until_probe:.1f}s until probe)")
        last_error: Optional[str] = None
        error_type = OutageError
        started = time.perf_counter()
        for attempt in range(self.max_retries + 1):
            self.stats.incr("requests")
            metrics.requests.labels(*mount).inc()
            delay: float
            response: Optional[aio.HTTPResponse] = None
            try:
                response = yield from aio.http_request(
                    self.pool, "GET", url, timeout=self.timeout)
            except aio.IOTimeout:
                self.stats.incr("timeouts")
                metrics.errors.labels(*mount, "timeout").inc()
                error_type = QueryTimeoutError
                last_error = f"timed out after {self.timeout}s"
                delay = self._backoff_delay(attempt)
            except aio.ProtocolError as error:
                self.stats.incr("malformed")
                metrics.errors.labels(*mount, "malformed").inc()
                error_type = MalformedPayloadError
                last_error = f"malformed HTTP ({error})"
                delay = self._backoff_delay(attempt)
            except OSError as error:
                # ConnectionClosed, refused, unreachable, ...
                metrics.errors.labels(*mount, "connection").inc()
                error_type = OutageError
                last_error = str(error)
                delay = self._backoff_delay(attempt)
            if response is not None:
                status = response.status
                if status == 429:
                    self.stats.incr("rate_limited")
                    metrics.errors.labels(*mount, "rate_limited").inc()
                    error_type = RateLimitedError
                    retry_after = parse_retry_after(
                        response.header("retry-after"))
                    if retry_after is not None:
                        metrics.retry_after.labels(*mount).inc()
                        delay = min(self.retry_after_cap,
                                    max(retry_after, 0.01))
                    else:
                        delay = self._backoff_delay(attempt)
                    last_error = "HTTP 429"
                elif 500 <= status < 600:
                    self.stats.incr("server_errors")
                    metrics.errors.labels(*mount, "server_error").inc()
                    error_type = OutageError
                    delay = self._backoff_delay(attempt)
                    last_error = f"HTTP {status}"
                elif status != 200:
                    # definitive 4xx-style answer: the LG is alive.
                    self._record(success=True)
                    self.stats.incr("http_4xx")
                    metrics.errors.labels(*mount, "http_4xx").inc()
                    raise LookingGlassError(
                        f"GET {url} failed: HTTP {status}")
                else:
                    try:
                        payload = json.loads(response.body)
                    except ValueError as error:
                        self.stats.incr("malformed")
                        metrics.errors.labels(*mount, "malformed").inc()
                        error_type = MalformedPayloadError
                        last_error = f"malformed JSON ({error})"
                        delay = self._backoff_delay(attempt)
                    else:
                        self._record(success=True)
                        metrics.fetch.labels(*mount).observe(
                            time.perf_counter() - started)
                        return payload
            if attempt < self.max_retries:
                self.stats.incr("retries")
                metrics.retries.labels(*mount).inc()
                metrics.backoff.labels(*mount).inc(delay)
                yield from aio.sleep(delay)
        self._record(success=False)
        metrics.exhausted.labels(*mount, error_type.failure_class).inc()
        raise error_type(
            f"GET {url} failed after {self.max_retries + 1} attempts "
            f"({last_error})")

    def _fetch_page_coro(self, asn: int, filtered: bool, page: int,
                         page_size: int,
                         ) -> Generator[Any, Any, Dict[str, Any]]:
        """Page-level retry with a fresh ``_get_raw`` budget per
        attempt — the ``LookingGlassClient._fetch_page`` contract."""
        attempts = max(0, self.page_retries) + 1
        for attempt in range(attempts):
            try:
                return (yield from self._get_raw_coro(
                    self._page_url(asn, filtered, page, page_size)))
            except CircuitOpenError:
                raise  # the mount is down; local retries are pointless
            except TransientError:
                if attempt == attempts - 1:
                    raise
        raise AssertionError("unreachable")

    def _guarded_page(self, asn: int, filtered: bool, page: int,
                      page_size: int,
                      ) -> Generator[Any, Any, Dict[str, Any]]:
        """One page fetch under the in-flight semaphore: the slot spans
        the fetch's whole retry/backoff lifetime."""
        yield from self._sem.acquire()
        metrics = _METRICS()
        self.inflight_fetches += 1
        self.peak_inflight = max(self.peak_inflight,
                                 self.inflight_fetches)
        metrics.inflight.labels(*self._mount_labels).inc()
        try:
            return (yield from self._fetch_page_coro(
                asn, filtered, page, page_size))
        finally:
            self.inflight_fetches -= 1
            metrics.inflight.labels(*self._mount_labels).dec()
            self._sem.release()

    # -- peer-level fan-out --------------------------------------------

    def peer_routes_coro(self, asn: int, filtered: bool = False,
                         page_size: int = api.DEFAULT_PAGE_SIZE,
                         ) -> Generator[Any, Any, List[Route]]:
        """All routes of one neighbor. Page 1 reveals the page count;
        pages 2..N then fan out as sibling tasks (each bounded by the
        shared semaphore) and are **reassembled in page order**, so the
        route list is byte-for-byte the serial pagination's."""
        from . import dialects
        first = yield from self._guarded_page(asn, filtered, 1,
                                              page_size)
        routes = list(dialects.parse_routes(first, self.dialect))
        pages = dialects.total_pages(first, self.dialect)
        if pages <= 1:
            return routes
        tasks = [
            self.loop.spawn(
                self._guarded_page(asn, filtered, page, page_size),
                name=f"page:{asn}:{page}")
            for page in range(2, pages + 1)]
        for task in tasks:
            yield from aio.join(task)
        for task in tasks:  # report the lowest failing page's error
            if task.error is not None:
                raise task.error
        for task in tasks:
            routes.extend(dialects.parse_routes(task.result,
                                                self.dialect))
        return routes

    def _peer_outcome_coro(self, asn: int, filtered: bool,
                           page_size: int,
                           ) -> Generator[Any, Any,
                                          Union[List[Route],
                                                LookingGlassError]]:
        """Outcome form of :meth:`peer_routes_coro` — returns the typed
        error instead of raising, so a fan-out over many peers never
        aborts siblings (the scraper's ``_fetch_peer`` contract)."""
        try:
            return (yield from self.peer_routes_coro(asn, filtered,
                                                     page_size))
        except LookingGlassError as error:
            return error

    def fetch_peers(self, neighbors: List[api.NeighborSummary],
                    filtered: bool = False,
                    page_size: int = api.DEFAULT_PAGE_SIZE,
                    ) -> Dict[int, Union[List[Route],
                                         LookingGlassError]]:
        """Fan every peer's paginated fetch onto one loop; returns
        outcomes keyed by ASN (routes, or the typed error that lost the
        peer). Reassembly order is the caller's business — results are
        deterministic per ASN regardless of completion order."""
        tasks = {
            neighbor.asn: self.loop.spawn(
                self._peer_outcome_coro(neighbor.asn, filtered,
                                        page_size),
                name=f"peer:{neighbor.asn}")
            for neighbor in neighbors}
        pending = set(tasks)
        while pending:
            if self.loop.idle:
                raise RuntimeError(
                    "async fetch stalled with peers pending")
            self.loop.run_once()
            pending = {asn for asn in pending if not tasks[asn].done}
        outcomes: Dict[int, Union[List[Route], LookingGlassError]] = {}
        for asn, task in tasks.items():
            if task.error is not None:
                raise task.error  # bug, not a taxonomy failure
            outcomes[asn] = task.result
        return outcomes

    # -- sync endpoint wrappers (LookingGlassClient parity) ------------

    def _run(self, coro: Generator, name: str) -> Any:
        return self.loop.run_until_complete(self.loop.spawn(coro, name))

    def _get(self, resource: str) -> Dict[str, Any]:
        return self._run(self._get_raw_coro(self._url(resource)),
                         f"get:{resource}")

    def status(self) -> Dict[str, Any]:
        return self._get("/status")

    def config_dictionary(self) -> CommunityDictionary:
        return CommunityDictionary.from_dict(self._get("/config"))

    def neighbors(self) -> List[api.NeighborSummary]:
        from . import dialects
        if self.dialect == dialects.DIALECT_BIRDSEYE:
            payload = self._run(self._get_raw_coro(
                f"{self.base_url}/{self.ixp}/v{self.family}"
                "/api/protocols"), "neighbors")
        else:
            payload = self._get("/neighbors")
        return dialects.parse_neighbors(payload, self.dialect)

    def routes(self, asn: int, filtered: bool = False,
               page_size: int = api.DEFAULT_PAGE_SIZE,
               ) -> Iterator[Route]:
        return iter(self._run(
            self.peer_routes_coro(asn, filtered, page_size),
            f"routes:{asn}"))

    def all_routes(self, filtered: bool = False) -> List[Route]:
        established = [n for n in self.neighbors() if n.established]
        outcomes = self.fetch_peers(established, filtered=filtered)
        routes: List[Route] = []
        for neighbor in established:
            outcome = outcomes[neighbor.asn]
            if isinstance(outcome, LookingGlassError):
                raise outcome
            routes.extend(outcome)
        return routes

    def close(self) -> None:
        """Drop every pooled connection and the selector."""
        self.pool.close_all()
        self.loop.close()
