"""repro — reproduction of "Light, Camera, Actions: characterizing the
usage of IXPs' action BGP communities" (CoNEXT '22).

The package is layered bottom-up:

* :mod:`repro.bgp` — BGP data model (communities, AS paths, routes,
  UPDATE wire codec);
* :mod:`repro.ixp` — IXP substrate (members, community dictionaries,
  the eight studied IXPs' schemes and profiles);
* :mod:`repro.routeserver` — an RFC 7947 route-server simulator with
  import filters and action-community policy;
* :mod:`repro.lg` — a Looking Glass HTTP server and resilient client;
* :mod:`repro.workload` — calibrated synthetic populations and the
  twelve-week snapshot generator;
* :mod:`repro.collector` — snapshots, dataset store, scraper, and the
  §3 sanitation pass;
* :mod:`repro.core` — the paper's analyses (Figs. 1–7, Tables 1–4) and
  the :class:`~repro.core.pipeline.Study` entry point.

Quick start::

    from repro import Study
    study = Study.synthetic(scale=0.05)
    for row in study.action_vs_informational(family=4):
        print(row["ixp"], row["action_share"])
"""

from .collector import DatasetStore, SanitationReport, Snapshot, sanitise
from .core import Study, aggregate_snapshot
from .ixp import (
    ALL_IXPS,
    LARGE_FOUR,
    CommunityDictionary,
    IxpProfile,
    all_profiles,
    dictionary_for,
    get_profile,
    large_profiles,
)
from .workload import ScenarioConfig, SnapshotGenerator

__version__ = "1.0.0"

__all__ = [
    "Study", "aggregate_snapshot",
    "Snapshot", "DatasetStore", "sanitise", "SanitationReport",
    "SnapshotGenerator", "ScenarioConfig",
    "IxpProfile", "get_profile", "all_profiles", "large_profiles",
    "dictionary_for", "CommunityDictionary",
    "ALL_IXPS", "LARGE_FOUR",
    "__version__",
]
