"""MRT (RFC 6396) TABLE_DUMP_V2 export/import for snapshots.

Route collectors (RouteViews, RIPE RIS) archive RIBs as MRT dumps; the
paper's repro hint calls out "live LG access or archived dumps" as the
data gate. This module closes the loop for archived data: a
:class:`~repro.collector.snapshot.Snapshot` round-trips through a real
MRT TABLE_DUMP_V2 file (PEER_INDEX_TABLE + RIB_IPV4/IPV6_UNICAST
records), so the analysis pipeline can consume dumps produced by this
library — or, with the usual MRT caveat the paper's footnote 1 makes,
dumps from actual collectors (which would show *scrubbed* routes).

Implemented subset:

* record type 13 (TABLE_DUMP_V2) with subtypes 1 (PEER_INDEX_TABLE),
  2 (RIB_IPV4_UNICAST), 4 (RIB_IPV6_UNICAST);
* BGP path attributes re-encoded via the same codec as the UPDATE
  message (ORIGIN, AS_PATH with 4-octet ASNs, NEXT_HOP / MP_REACH
  next hop, COMMUNITIES, EXTENDED/LARGE COMMUNITIES).

Files may be plain or gzip-compressed (detected on read by magic).
"""

from __future__ import annotations

import datetime as _dt
import gzip
import ipaddress
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Dict, Iterator, List, Optional, Tuple

from ..bgp.errors import MessageDecodeError
from ..bgp.messages import (
    ATTR_AS_PATH,
    ATTR_COMMUNITIES,
    ATTR_EXTENDED_COMMUNITIES,
    ATTR_LARGE_COMMUNITIES,
    ATTR_MP_REACH_NLRI,
    ATTR_NEXT_HOP,
    ATTR_ORIGIN,
    FLAG_EXTENDED_LENGTH,
    FLAG_OPTIONAL,
    FLAG_TRANSITIVE,
    ORIGIN_IGP,
    PathAttribute,
    _decode_as_path,
    _decode_prefixes,
    _encode_as_path,
    _encode_prefix,
)
from ..bgp.communities import (
    ExtendedCommunity,
    LargeCommunity,
    StandardCommunity,
)
from ..bgp.route import Route
from ..ixp.member import Member, MemberRole
from .snapshot import Snapshot

MRT_TABLE_DUMP_V2 = 13
SUBTYPE_PEER_INDEX_TABLE = 1
SUBTYPE_RIB_IPV4_UNICAST = 2
SUBTYPE_RIB_IPV6_UNICAST = 4

_PEER_TYPE_AS4 = 0x02        # bit 1: AS is 4 bytes
_PEER_TYPE_IPV6 = 0x01       # bit 0: address is IPv6


class MrtError(ValueError):
    """An MRT file could not be written or parsed."""


def _snapshot_timestamp(snapshot: Snapshot) -> int:
    date = _dt.date.fromisoformat(snapshot.captured_on)
    midnight = _dt.datetime(date.year, date.month, date.day,
                            tzinfo=_dt.timezone.utc)
    return int(midnight.timestamp())


def _mrt_record(timestamp: int, subtype: int, body: bytes) -> bytes:
    return struct.pack("!IHHI", timestamp, MRT_TABLE_DUMP_V2, subtype,
                       len(body)) + body


def _encode_peer_index(snapshot: Snapshot,
                       peer_order: List[Member]) -> bytes:
    view_name = f"{snapshot.ixp}-v{snapshot.family}".encode("ascii")
    body = bytearray()
    body += ipaddress.IPv4Address("192.0.2.255").packed  # collector ID
    body += struct.pack("!H", len(view_name)) + view_name
    body += struct.pack("!H", len(peer_order))
    for member in peer_order:
        address = member.peering_ip(snapshot.family)
        if address is None:
            address = "0.0.0.0" if snapshot.family == 4 else "::"
        packed = ipaddress.ip_address(address).packed
        peer_type = _PEER_TYPE_AS4
        if len(packed) == 16:
            peer_type |= _PEER_TYPE_IPV6
        body.append(peer_type)
        body += ipaddress.IPv4Address(
            min(member.asn, 0xFFFFFFFF) & 0xFFFFFFFF).packed  # BGP ID
        body += packed
        body += struct.pack("!I", member.asn)
    return bytes(body)


def _route_attributes(route: Route) -> bytes:
    attributes: List[PathAttribute] = [
        PathAttribute(FLAG_TRANSITIVE, ATTR_ORIGIN, bytes([ORIGIN_IGP])),
        PathAttribute(FLAG_TRANSITIVE, ATTR_AS_PATH,
                      _encode_as_path(route.as_path)),
    ]
    next_hop = ipaddress.ip_address(route.next_hop)
    if next_hop.version == 4:
        attributes.append(PathAttribute(
            FLAG_TRANSITIVE, ATTR_NEXT_HOP, next_hop.packed))
    else:
        # RFC 6396 §4.3.4: MP_REACH_NLRI carries only the next-hop
        # length and address inside TABLE_DUMP_V2 records.
        attributes.append(PathAttribute(
            FLAG_OPTIONAL, ATTR_MP_REACH_NLRI,
            bytes([len(next_hop.packed)]) + next_hop.packed))
    if route.communities:
        blob = b"".join(c.to_bytes() for c in sorted(route.communities))
        attributes.append(PathAttribute(
            FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_COMMUNITIES, blob))
    if route.extended_communities:
        blob = b"".join(c.to_bytes()
                        for c in sorted(route.extended_communities))
        attributes.append(PathAttribute(
            FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_EXTENDED_COMMUNITIES,
            blob))
    if route.large_communities:
        blob = b"".join(c.to_bytes()
                        for c in sorted(route.large_communities))
        attributes.append(PathAttribute(
            FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_LARGE_COMMUNITIES,
            blob))
    return b"".join(a.encode() for a in attributes)


def write_snapshot(snapshot: Snapshot, path: Path,
                   compress: bool = True) -> Path:
    """Write *snapshot* as an MRT TABLE_DUMP_V2 file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    timestamp = _snapshot_timestamp(snapshot)
    peer_order = sorted(snapshot.members, key=lambda m: m.asn)
    peer_index = {member.asn: index
                  for index, member in enumerate(peer_order)}
    subtype_rib = (SUBTYPE_RIB_IPV4_UNICAST if snapshot.family == 4
                   else SUBTYPE_RIB_IPV6_UNICAST)

    opener = gzip.open if compress else open
    with opener(path, "wb") as handle:  # type: ignore[operator]
        handle.write(_mrt_record(
            timestamp, SUBTYPE_PEER_INDEX_TABLE,
            _encode_peer_index(snapshot, peer_order)))
        # group per prefix: one RIB record per prefix, one entry per peer
        by_prefix: Dict[str, List[Route]] = {}
        for route in snapshot.routes:
            by_prefix.setdefault(route.prefix, []).append(route)
        for sequence, prefix in enumerate(sorted(by_prefix)):
            routes = by_prefix[prefix]
            body = bytearray(struct.pack("!I", sequence))
            body += _encode_prefix(prefix)
            body += struct.pack("!H", len(routes))
            for route in routes:
                if route.peer_asn not in peer_index:
                    raise MrtError(
                        f"route from AS{route.peer_asn} but no such "
                        "member in the snapshot")
                attributes = _route_attributes(route)
                body += struct.pack("!HIH", peer_index[route.peer_asn],
                                    timestamp, len(attributes))
                body += attributes
            handle.write(_mrt_record(timestamp, subtype_rib, bytes(body)))
    return path


# -- reading ----------------------------------------------------------------


def _iter_records(handle: BinaryIO) -> Iterator[Tuple[int, int, bytes]]:
    while True:
        header = handle.read(12)
        if not header:
            return
        if len(header) != 12:
            raise MrtError("truncated MRT record header")
        timestamp, mrt_type, subtype, length = struct.unpack(
            "!IHHI", header)
        body = handle.read(length)
        if len(body) != length:
            raise MrtError("truncated MRT record body")
        if mrt_type != MRT_TABLE_DUMP_V2:
            continue  # skip record types we do not model
        yield timestamp, subtype, body


def _decode_peer_index(body: bytes) -> Tuple[str, List[Tuple[int, str]]]:
    offset = 4  # collector BGP ID
    (name_len,) = struct.unpack("!H", body[offset:offset + 2])
    offset += 2
    view_name = body[offset:offset + name_len].decode("ascii",
                                                      errors="replace")
    offset += name_len
    (peer_count,) = struct.unpack("!H", body[offset:offset + 2])
    offset += 2
    peers: List[Tuple[int, str]] = []
    for _ in range(peer_count):
        peer_type = body[offset]
        offset += 1 + 4  # type + BGP ID
        addr_len = 16 if peer_type & _PEER_TYPE_IPV6 else 4
        address = str(ipaddress.ip_address(body[offset:offset + addr_len]))
        offset += addr_len
        as_len = 4 if peer_type & _PEER_TYPE_AS4 else 2
        asn = int.from_bytes(body[offset:offset + as_len], "big")
        offset += as_len
        peers.append((asn, address))
    return view_name, peers


def _decode_rib_entry_attributes(blob: bytes, family: int,
                                 ) -> Dict[str, object]:
    result: Dict[str, object] = {
        "as_path": None, "next_hop": None,
        "communities": frozenset(), "extended": frozenset(),
        "large": frozenset(),
    }
    offset = 0
    while offset < len(blob):
        flags = blob[offset]
        type_code = blob[offset + 1]
        if flags & FLAG_EXTENDED_LENGTH:
            (length,) = struct.unpack("!H", blob[offset + 2:offset + 4])
            offset += 4
        else:
            length = blob[offset + 2]
            offset += 3
        value = blob[offset:offset + length]
        offset += length
        if type_code == ATTR_AS_PATH:
            result["as_path"] = _decode_as_path(value)
        elif type_code == ATTR_NEXT_HOP:
            result["next_hop"] = str(ipaddress.ip_address(value))
        elif type_code == ATTR_MP_REACH_NLRI:
            nh_len = value[0]
            result["next_hop"] = str(
                ipaddress.ip_address(value[1:1 + nh_len]))
        elif type_code == ATTR_COMMUNITIES:
            result["communities"] = frozenset(
                StandardCommunity.from_bytes(value[i:i + 4])
                for i in range(0, len(value), 4))
        elif type_code == ATTR_EXTENDED_COMMUNITIES:
            result["extended"] = frozenset(
                ExtendedCommunity.from_bytes(value[i:i + 8])
                for i in range(0, len(value), 8))
        elif type_code == ATTR_LARGE_COMMUNITIES:
            result["large"] = frozenset(
                LargeCommunity.from_bytes(value[i:i + 12])
                for i in range(0, len(value), 12))
    return result


def read_snapshot(path: Path, ixp: Optional[str] = None,
                  family: Optional[int] = None) -> Snapshot:
    """Read an MRT TABLE_DUMP_V2 file back into a Snapshot.

    ``ixp``/``family`` default to the values encoded in the dump's view
    name (``<ixp>-v<family>``).
    """
    path = Path(path)
    raw = path.open("rb")
    magic = raw.read(2)
    raw.seek(0)
    handle: BinaryIO = (gzip.open(path, "rb")  # type: ignore[assignment]
                        if magic == b"\x1f\x8b" else raw)

    members: List[Member] = []
    routes: List[Route] = []
    peer_list: List[Tuple[int, str]] = []
    timestamp: Optional[int] = None
    view_name = ""
    with handle:
        for record_timestamp, subtype, body in _iter_records(handle):
            timestamp = record_timestamp
            if subtype == SUBTYPE_PEER_INDEX_TABLE:
                view_name, peer_list = _decode_peer_index(body)
                continue
            if subtype not in (SUBTYPE_RIB_IPV4_UNICAST,
                               SUBTYPE_RIB_IPV6_UNICAST):
                continue
            record_family = (4 if subtype == SUBTYPE_RIB_IPV4_UNICAST
                             else 6)
            offset = 4  # sequence number
            plen = body[offset]
            nbytes = (plen + 7) // 8
            prefix = _decode_prefixes(
                body[offset:offset + 1 + nbytes], record_family)[0]
            offset += 1 + nbytes
            (entry_count,) = struct.unpack("!H", body[offset:offset + 2])
            offset += 2
            for _ in range(entry_count):
                peer_idx, _originated, attr_len = struct.unpack(
                    "!HIH", body[offset:offset + 8])
                offset += 8
                attributes = _decode_rib_entry_attributes(
                    body[offset:offset + attr_len], record_family)
                offset += attr_len
                if peer_idx >= len(peer_list):
                    raise MrtError(f"peer index {peer_idx} out of range")
                peer_asn, _peer_ip = peer_list[peer_idx]
                if attributes["as_path"] is None or (
                        attributes["next_hop"] is None):
                    raise MrtError(
                        f"RIB entry for {prefix} lacks AS_PATH/NEXT_HOP")
                routes.append(Route(
                    prefix=prefix,
                    next_hop=attributes["next_hop"],  # type: ignore[arg-type]
                    as_path=attributes["as_path"],    # type: ignore[arg-type]
                    peer_asn=peer_asn,
                    communities=attributes["communities"],  # type: ignore[arg-type]
                    extended_communities=attributes["extended"],  # type: ignore[arg-type]
                    large_communities=attributes["large"],  # type: ignore[arg-type]
                ))

    if family is None or ixp is None:
        if "-v" in view_name:
            parsed_ixp, _, family_text = view_name.rpartition("-v")
            ixp = ixp or parsed_ixp
            family = family or int(family_text)
        else:
            raise MrtError("dump has no usable view name; pass ixp/family")
    for asn, address in peer_list:
        members.append(Member(
            asn=asn, name=f"AS{asn}", role=MemberRole.ACCESS_ISP,
            at_rs_v4=family == 4, at_rs_v6=family == 6,
            peering_ip_v4=address if family == 4 else None,
            peering_ip_v6=address if family == 6 else None))
    captured_on = _dt.datetime.fromtimestamp(
        timestamp or 0, tz=_dt.timezone.utc).date().isoformat()
    return Snapshot(ixp=ixp, family=family, captured_on=captured_on,
                    members=members, routes=routes,
                    meta={"source": f"mrt:{path.name}",
                          "view": view_name})
