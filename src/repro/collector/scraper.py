"""Snapshot scraper: drives the LG client the way §3 describes.

For each (IXP, family): first fetch the summary (the list of peers and
their route counts), then collect all accepted routes per peer, then
assemble a :class:`~repro.collector.snapshot.Snapshot`. The community
dictionary is the union of the LG ``/config`` payload and a "website"
dictionary supplied by the caller (§3's two sources).

Collection is resilient: a peer whose route fetch keeps failing is
recorded in the report rather than aborting the snapshot — partial
snapshots are exactly what the sanitation pass (§3) exists to catch.
Only peers whose routes were actually collected become snapshot
members; failed peers appear solely in the report and the snapshot's
``meta`` (a degraded snapshot must not over-count the membership the
RS showed us).

Per-peer fetches can fan out over a bounded worker pool (``workers``;
default 1 is exactly the serial behaviour) or — with ``io="async"`` —
over one selectors event loop that fans every peer's individual route
*pages* concurrently under a ``max_inflight`` bound (see
:mod:`repro.lg.aio`). Snapshots are deterministic regardless of worker
count or I/O engine: peers are fetched from a list sorted by ASN and
reassembled in that same order (pages in page order within a peer), so
the member list, route list, and on-disk bytes of a ``workers=8`` or
async snapshot are identical to a serial run's.

The default capture date is computed in UTC — a scrape started near
local midnight must date its snapshot the same way on every machine.
"""

from __future__ import annotations

import datetime as _dt
import threading
import time
import types
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from .. import obs
from ..bgp.route import Route
from ..ixp.dictionary import CommunityDictionary
from ..ixp.member import Member, MemberRole
from ..lg import api
from ..lg.aio import AsyncLookingGlassClient
from ..lg.api import NeighborSummary
from ..lg.client import LookingGlassClient, LookingGlassError
from .snapshot import Snapshot

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    collected=reg.counter(
        "repro_scraper_peers_collected_total",
        "Peers whose routes one-shot scrapes collected",
        ("ixp", "family")),
    failed=reg.counter(
        "repro_scraper_peers_failed_total",
        "Peers one-shot scrapes lost, by failure class",
        ("ixp", "family", "class")),
    inflight=reg.gauge(
        "repro_scraper_inflight_fetches",
        "Per-peer route fetches currently in flight",
        ("ixp", "family")),
    fetch=reg.histogram(
        "repro_scraper_peer_fetch_seconds",
        "Wall-clock time fetching one peer's full route set, "
        "by pool worker", ("ixp", "family", "worker")),
))


def worker_label() -> str:
    """Metric label for the current pool worker.

    ``ThreadPoolExecutor`` names its threads ``<prefix>_<index>``; the
    index is the stable per-pool worker id (bounded by ``workers``, so
    label cardinality stays small). Outside a pool — the serial path —
    everything is worker ``0``.
    """
    name = threading.current_thread().name
    _, _, index = name.rpartition("_")
    return index if index.isdigit() else "0"


def utc_today() -> str:
    """Today's ISO date in UTC — the deterministic default capture
    date (local-timezone ``date.today()`` flips a day earlier/later
    near midnight depending on the machine)."""
    return _dt.datetime.now(_dt.timezone.utc).date().isoformat()


@dataclass
class ScrapeReport:
    """Outcome of one snapshot collection."""

    snapshot: Optional[Snapshot] = None
    peers_attempted: int = 0
    peers_collected: int = 0
    peers_failed: List[int] = field(default_factory=list)
    #: why each failed peer was lost: ASN → taxonomy failure class
    #: (``breaker_open`` when the mount's circuit breaker refused the
    #: fetch — distinct from an observed ``lg_outage``).
    failure_classes: Dict[int, str] = field(default_factory=dict)
    #: set when the collection failed before any peer could be tried
    #: (e.g. the neighbor summary itself was unreachable).
    error: Optional[str] = None

    @property
    def complete(self) -> bool:
        return (not self.peers_failed and self.snapshot is not None
                and self.error is None)


class SnapshotScraper:
    """Collects one snapshot from a Looking Glass.

    ``workers`` bounds the per-peer fetch pool; 1 (the default) keeps
    the paper's strictly sequential single-connection discipline.
    ``io="async"`` switches to the event-driven engine instead: all
    peers' paginated fetches share one selectors loop, bounded by
    ``max_inflight`` page fetches (and as many connections at most).
    """

    def __init__(self, client: LookingGlassClient,
                 workers: int = 1, io: str = "threads",
                 max_inflight: int = 32,
                 page_size: Optional[int] = None) -> None:
        if io not in ("threads", "async"):
            raise ValueError(f"unknown io engine {io!r} "
                             f"(expected 'threads' or 'async')")
        self.client = client
        self.workers = max(1, int(workers))
        self.io = io
        self.max_inflight = max(1, int(max_inflight))
        #: None = leave the client's own default page size alone (so
        #: minimal stub clients without a page_size kwarg keep working).
        self.page_size = None if page_size is None else int(page_size)
        self._aio_client: Optional[AsyncLookingGlassClient] = None

    def _async_client(self) -> AsyncLookingGlassClient:
        """The mount's async twin (lazily built; shares stats and
        breaker with the sync client)."""
        if self._aio_client is None:
            if isinstance(self.client, AsyncLookingGlassClient):
                self._aio_client = self.client
            else:
                self._aio_client = AsyncLookingGlassClient.from_client(
                    self.client, max_inflight=self.max_inflight)
        return self._aio_client

    def fetch_dictionary(
            self,
            website_dictionary: Optional[CommunityDictionary] = None,
    ) -> CommunityDictionary:
        """The §3 dictionary: LG config ∪ website documentation."""
        rs_dictionary = self.client.config_dictionary()
        if website_dictionary is None:
            return rs_dictionary
        return CommunityDictionary.union(
            rs_dictionary.ixp_name, rs_dictionary, website_dictionary)

    # -- per-peer fetch ---------------------------------------------------

    def _fetch_peer(self, neighbor: NeighborSummary,
                    ) -> Union[List[Route], LookingGlassError]:
        """One peer's full route set, or the typed error that lost it.

        Never raises: pool futures must not carry exceptions, so the
        assembly loop can stay a straight walk over the ASN order.
        """
        metrics = _METRICS()
        mount = (self.client.ixp, str(self.client.family))
        metrics.inflight.labels(*mount).inc()
        started = time.perf_counter()
        try:
            if self.page_size is None:
                return list(self.client.routes(neighbor.asn))
            return list(self.client.routes(neighbor.asn,
                                           page_size=self.page_size))
        except LookingGlassError as error:
            return error
        finally:
            metrics.inflight.labels(*mount).dec()
            metrics.fetch.labels(*mount, worker_label()).observe(
                time.perf_counter() - started)

    def _fetch_all(self, established: List[NeighborSummary],
                   ) -> Dict[int, Union[List[Route], LookingGlassError]]:
        """Fetch every established peer's routes — serially, fanned
        out over the worker pool, or fanned page-by-page onto the
        async engine's loop. Results are keyed by ASN; ordering is
        reimposed by the caller, so completion order is irrelevant."""
        if self.io == "async":
            return self._async_client().fetch_peers(
                established,
                page_size=self.page_size or api.DEFAULT_PAGE_SIZE)
        if self.workers == 1 or len(established) <= 1:
            return {neighbor.asn: self._fetch_peer(neighbor)
                    for neighbor in established}
        with ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="scraper") as pool:
            futures = {
                neighbor.asn: pool.submit(self._fetch_peer, neighbor)
                for neighbor in established}
            return {asn: future.result()
                    for asn, future in futures.items()}

    # -- snapshot assembly ------------------------------------------------

    def collect(self, captured_on: Optional[str] = None) -> ScrapeReport:
        """Collect the snapshot: summary first, then per-peer routes."""
        report = ScrapeReport()
        captured_on = captured_on or utc_today()
        try:
            neighbors = self.client.neighbors()
        except LookingGlassError as error:
            # No peer list means no snapshot — but a failed summary
            # must not abort a multi-LG collection run.
            report.error = str(error)
            return report
        # Deterministic ASN order: the assembly below (and so the
        # snapshot bytes) is independent of fetch completion order.
        established = sorted(
            (n for n in neighbors if n.established),
            key=lambda n: n.asn)
        outcomes = self._fetch_all(established)

        metrics = _METRICS()
        mount = (self.client.ixp, str(self.client.family))
        members: List[Member] = []
        routes: List[Route] = []
        filtered_count = 0
        for neighbor in established:
            report.peers_attempted += 1
            outcome = outcomes[neighbor.asn]
            if isinstance(outcome, LookingGlassError):
                report.peers_failed.append(neighbor.asn)
                report.failure_classes[neighbor.asn] = \
                    outcome.failure_class
                metrics.failed.labels(
                    *mount, outcome.failure_class).inc()
                continue
            report.peers_collected += 1
            metrics.collected.labels(*mount).inc()
            # membership is an observation: only a peer whose routes we
            # actually hold counts as present at the RS this day.
            members.append(Member(
                asn=neighbor.asn,
                name=neighbor.name,
                role=MemberRole.ACCESS_ISP,  # role is not observable
                at_rs_v4=self.client.family == 4,
                at_rs_v6=self.client.family == 6,
            ))
            routes.extend(outcome)
            filtered_count += neighbor.routes_filtered
        report.snapshot = Snapshot(
            ixp=self.client.ixp,
            family=self.client.family,
            captured_on=captured_on,
            members=members,
            routes=routes,
            filtered_count=filtered_count,
            meta={
                "source": self.client.base_url,
                "peers_failed": list(report.peers_failed),
                "peer_failure_classes": {
                    str(asn): cls
                    for asn, cls in report.failure_classes.items()},
                "degraded": bool(report.peers_failed),
            },
        )
        return report
