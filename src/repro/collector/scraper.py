"""Snapshot scraper: drives the LG client the way §3 describes.

For each (IXP, family): first fetch the summary (the list of peers and
their route counts), then collect all accepted routes per peer, then
assemble a :class:`~repro.collector.snapshot.Snapshot`. The community
dictionary is the union of the LG ``/config`` payload and a "website"
dictionary supplied by the caller (§3's two sources).

Collection is resilient: a peer whose route fetch keeps failing is
recorded in the report rather than aborting the snapshot — partial
snapshots are exactly what the sanitation pass (§3) exists to catch.
"""

from __future__ import annotations

import datetime as _dt
import types
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..bgp.route import Route
from ..ixp.dictionary import CommunityDictionary
from ..ixp.member import Member, MemberRole
from ..lg.client import LookingGlassClient, LookingGlassError
from .snapshot import Snapshot

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    collected=reg.counter(
        "repro_scraper_peers_collected_total",
        "Peers whose routes one-shot scrapes collected",
        ("ixp", "family")),
    failed=reg.counter(
        "repro_scraper_peers_failed_total",
        "Peers one-shot scrapes lost, by failure class",
        ("ixp", "family", "class")),
))


@dataclass
class ScrapeReport:
    """Outcome of one snapshot collection."""

    snapshot: Optional[Snapshot] = None
    peers_attempted: int = 0
    peers_collected: int = 0
    peers_failed: List[int] = field(default_factory=list)
    #: why each failed peer was lost: ASN → taxonomy failure class
    #: (``breaker_open`` when the mount's circuit breaker refused the
    #: fetch — distinct from an observed ``lg_outage``).
    failure_classes: Dict[int, str] = field(default_factory=dict)
    #: set when the collection failed before any peer could be tried
    #: (e.g. the neighbor summary itself was unreachable).
    error: Optional[str] = None

    @property
    def complete(self) -> bool:
        return (not self.peers_failed and self.snapshot is not None
                and self.error is None)


class SnapshotScraper:
    """Collects one snapshot from a Looking Glass."""

    def __init__(self, client: LookingGlassClient) -> None:
        self.client = client

    def fetch_dictionary(
            self,
            website_dictionary: Optional[CommunityDictionary] = None,
    ) -> CommunityDictionary:
        """The §3 dictionary: LG config ∪ website documentation."""
        rs_dictionary = self.client.config_dictionary()
        if website_dictionary is None:
            return rs_dictionary
        return CommunityDictionary.union(
            rs_dictionary.ixp_name, rs_dictionary, website_dictionary)

    def collect(self, captured_on: Optional[str] = None) -> ScrapeReport:
        """Collect the snapshot: summary first, then per-peer routes."""
        report = ScrapeReport()
        captured_on = captured_on or _dt.date.today().isoformat()
        try:
            neighbors = self.client.neighbors()
        except LookingGlassError as error:
            # No peer list means no snapshot — but a failed summary
            # must not abort a multi-LG collection run.
            report.error = str(error)
            return report
        members: List[Member] = []
        routes: List[Route] = []
        filtered_count = 0
        for neighbor in neighbors:
            if not neighbor.established:
                continue
            report.peers_attempted += 1
            members.append(Member(
                asn=neighbor.asn,
                name=neighbor.name,
                role=MemberRole.ACCESS_ISP,  # role is not observable
                at_rs_v4=self.client.family == 4,
                at_rs_v6=self.client.family == 6,
            ))
            try:
                peer_routes = list(self.client.routes(neighbor.asn))
            except LookingGlassError as error:
                report.peers_failed.append(neighbor.asn)
                report.failure_classes[neighbor.asn] = \
                    error.failure_class
                _METRICS().failed.labels(
                    self.client.ixp, str(self.client.family),
                    error.failure_class).inc()
                continue
            report.peers_collected += 1
            _METRICS().collected.labels(
                self.client.ixp, str(self.client.family)).inc()
            routes.extend(peer_routes)
            filtered_count += neighbor.routes_filtered
        report.snapshot = Snapshot(
            ixp=self.client.ixp,
            family=self.client.family,
            captured_on=captured_on,
            members=members,
            routes=routes,
            filtered_count=filtered_count,
            meta={
                "source": self.client.base_url,
                "peers_failed": list(report.peers_failed),
                "peer_failure_classes": {
                    str(asn): cls
                    for asn, cls in report.failure_classes.items()},
                "degraded": bool(report.peers_failed),
            },
        )
        return report
