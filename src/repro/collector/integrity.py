"""Artefact integrity: taxonomy, envelopes, atomic writes, crash hooks.

The store's durability contract (see :mod:`repro.collector.store`) is
built from four small pieces that live here so every artefact kind —
snapshots, checkpoints, dictionaries, run reports, manifests — shares
one implementation:

* an **error taxonomy** (:class:`IntegrityError` and friends) that
  turns raw tracebacks (``EOFError`` deep inside gzip, ``KeyError``
  inside a deserialiser) into typed, classified damage;
* a **payload envelope**: every artefact is stored as
  ``{"artefact": "repro.artefact", "version": 1, "kind": ...,
  "sha256": <digest of the canonical payload JSON>, "payload": ...}``
  so a file can vouch for itself, and the same digest is mirrored in
  the per-IXP ``MANIFEST.json`` so either side can validate the other;
* an **atomic write** helper: unique temp name in the same directory,
  ``fsync`` of the file, ``rename``, ``fsync`` of the directory — a
  reader can never observe a partially written artefact, and a crash
  at any instant leaves only invisible ``*.tmp`` debris;
* a :class:`CrashSchedule` fault-injection hook mirroring the
  simulated LG's ``FaultSchedule`` idiom: deterministic,
  boundary-indexed, and able to kill the process (or raise a
  :class:`SimulatedCrash`) at any write boundary — the substrate of
  the ``tests/chaos`` harness.

Everything is introspectable with ``zcat`` and ``jq``; the envelope is
plain JSON around the old payload.
"""

from __future__ import annotations

import contextlib
import gzip
import hashlib
import itertools
import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..io.faultfs import active_fs, with_fs_retries
from .snapshot import REQUIRED_PAYLOAD_KEYS as _SNAPSHOT_KEYS

#: magic marker distinguishing enveloped artefacts from legacy payloads.
ARTEFACT_MAGIC = "repro.artefact"
#: highest envelope version this code understands.
ENVELOPE_VERSION = 1

#: damage classes — the vocabulary shared by errors, quarantine
#: records, fsck findings, and metrics labels.
DAMAGE_TRUNCATED = "truncated"
DAMAGE_MALFORMED = "malformed"
DAMAGE_CHECKSUM = "checksum_mismatch"
DAMAGE_SCHEMA = "schema_drift"
DAMAGE_MISSING_ENTRY = "missing_manifest_entry"
DAMAGE_MANIFEST_DRIFT = "manifest_drift"
DAMAGE_MISSING_FILE = "missing_file"
DAMAGE_ORPHAN_TEMP = "orphan_temp"
DAMAGE_ORPHANED = "orphaned_dispatch"

DAMAGE_CLASSES = (
    DAMAGE_TRUNCATED, DAMAGE_MALFORMED, DAMAGE_CHECKSUM, DAMAGE_SCHEMA,
    DAMAGE_MISSING_ENTRY, DAMAGE_MANIFEST_DRIFT, DAMAGE_MISSING_FILE,
    DAMAGE_ORPHAN_TEMP, DAMAGE_ORPHANED,
)

#: top-level keys an artefact payload must carry, per kind — the
#: schema-drift tripwire (deep validation stays in the deserialisers).
REQUIRED_PAYLOAD_KEYS: Dict[str, Tuple[str, ...]] = {
    "snapshot": _SNAPSHOT_KEYS,
    "checkpoint": ("version", "peers"),
    "dictionary": ("ixp", "entries"),
    "report": ("version", "kind", "metrics"),
    "manifest": ("version", "entries"),
    "aggregate": ("version", "key", "aggregate"),
    "lease": ("version", "unit", "owner", "token", "renewed_at", "ttl"),
}


# -- error taxonomy ------------------------------------------------------

class IntegrityError(Exception):
    """An on-disk artefact failed verification.

    ``damage_class`` is one of the module's ``DAMAGE_*`` constants;
    ``path`` (when known) is the offending file. After a self-healing
    loader quarantines the file, the resulting
    :class:`QuarantineRecord` is attached as ``record``.
    """

    damage_class = DAMAGE_MALFORMED

    def __init__(self, message: str, path: Optional[Path] = None) -> None:
        super().__init__(message)
        self.path = path
        self.record: Optional["QuarantineRecord"] = None


class TruncatedArtefactError(IntegrityError):
    """The gzip stream ends before its end-of-stream marker."""

    damage_class = DAMAGE_TRUNCATED


class MalformedArtefactError(IntegrityError):
    """Not gzip / corrupt deflate data / invalid JSON / not an object."""

    damage_class = DAMAGE_MALFORMED


class ChecksumMismatchError(IntegrityError):
    """A digest disagreement: gzip CRC, envelope sha256, or manifest."""

    damage_class = DAMAGE_CHECKSUM


class SchemaDriftError(IntegrityError):
    """Parseable, but not the artefact we expect (version, kind, keys)."""

    damage_class = DAMAGE_SCHEMA


# -- digests and envelopes ----------------------------------------------

def canonical_bytes(payload: Any) -> bytes:
    """The canonical JSON serialisation every digest is computed over."""
    return json.dumps(payload, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")


def payload_digest(payload: Any) -> str:
    return hashlib.sha256(canonical_bytes(payload)).hexdigest()


def encode_artefact(payload: Any, kind: str, *, gz: bool,
                    compresslevel: int = 9) -> Tuple[bytes, str]:
    """Wrap *payload* in the integrity envelope and serialise it.

    Returns ``(file_bytes, sha256)`` — the digest is over the canonical
    payload JSON, so it is independent of compression settings and is
    the value mirrored into the manifest.
    """
    digest = payload_digest(payload)
    envelope = {
        "artefact": ARTEFACT_MAGIC,
        "version": ENVELOPE_VERSION,
        "kind": kind,
        "sha256": digest,
        "payload": payload,
    }
    body = json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    if gz:
        # mtime=0 keeps identical payloads byte-identical on disk.
        body = gzip.compress(body, compresslevel=compresslevel, mtime=0)
    return body, digest


def decode_artefact(data: bytes, *, kind: str, gz: bool,
                    path: Optional[Path] = None,
                    ) -> Tuple[Any, str, bool]:
    """Parse and verify one artefact's raw file bytes.

    Returns ``(payload, sha256, self_verified)`` where
    ``self_verified`` is True for enveloped artefacts whose embedded
    digest matched (legacy, pre-envelope files parse with
    ``self_verified=False`` and a freshly computed digest).

    Raises the :class:`IntegrityError` taxonomy on any damage.
    """
    if gz:
        if len(data) < 2 or data[:2] != b"\x1f\x8b":
            raise MalformedArtefactError(
                "not a gzip stream (bad magic bytes)", path)
        try:
            body = gzip.decompress(data)
        except EOFError as error:
            raise TruncatedArtefactError(
                f"truncated gzip stream: {error}", path) from error
        except gzip.BadGzipFile as error:
            # valid magic but a failed CRC/length trailer: the payload
            # bytes changed after they were written.
            raise ChecksumMismatchError(
                f"gzip integrity check failed: {error}", path) from error
        except zlib.error as error:
            raise MalformedArtefactError(
                f"corrupt deflate data: {error}", path) from error
        except OSError as error:
            raise MalformedArtefactError(
                f"unreadable gzip stream: {error}", path) from error
    else:
        body = data
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise MalformedArtefactError(
            f"invalid JSON: {error}", path) from error
    if not isinstance(document, dict):
        raise MalformedArtefactError(
            f"artefact is not a JSON object "
            f"(got {type(document).__name__})", path)

    if document.get("artefact") == ARTEFACT_MAGIC:
        version = document.get("version")
        if not isinstance(version, int) or version > ENVELOPE_VERSION:
            raise SchemaDriftError(
                f"unsupported envelope version {version!r}", path)
        if document.get("kind") != kind:
            raise SchemaDriftError(
                f"artefact kind is {document.get('kind')!r}, "
                f"expected {kind!r}", path)
        payload = document.get("payload")
        if not isinstance(payload, dict):
            raise SchemaDriftError("envelope payload is not an object",
                                   path)
        digest = payload_digest(payload)
        declared = document.get("sha256")
        if declared != digest:
            raise ChecksumMismatchError(
                f"embedded sha256 {str(declared)[:12]}… does not match "
                f"payload digest {digest[:12]}…", path)
        self_verified = True
    else:
        payload, digest, self_verified = document, None, False
        digest = payload_digest(payload)

    missing = [key for key in REQUIRED_PAYLOAD_KEYS.get(kind, ())
               if key not in payload]
    if missing:
        raise SchemaDriftError(
            f"{kind} payload is missing keys: {', '.join(missing)}",
            path)
    return payload, digest, self_verified


# -- crash injection -----------------------------------------------------

class SimulatedCrash(BaseException):
    """Raised by :class:`CrashSchedule` in ``raise`` mode.

    Derives from ``BaseException`` so ``except Exception`` cleanup
    paths do not swallow it — a simulated crash must leave the same
    debris a real ``kill -9`` would.
    """

    def __init__(self, label: str, index: int) -> None:
        super().__init__(f"simulated crash at write boundary "
                         f"#{index} ({label})")
        self.label = label
        self.index = index


@dataclass
class CrashSchedule:
    """Deterministic, boundary-indexed crash plan for a store.

    Mirrors the LG's ``FaultSchedule`` idiom: the store calls
    :meth:`check` at every write boundary (labelled
    ``<kind>:begin`` / ``<kind>:temp`` / ``<kind>:renamed``), the
    schedule counts them, and at the configured point it either raises
    :class:`SimulatedCrash` (in-process tests) or calls ``os._exit``
    (subprocess chaos tests — no ``atexit``, no ``finally``, exactly
    like a kill). With no trigger configured it only records, which is
    how tests enumerate a run's boundaries before choosing where to
    crash on the next one.
    """

    #: crash at this global boundary index (0-based); None disables.
    crash_at: Optional[int] = None
    #: restrict the trigger to boundaries with this exact label.
    label: Optional[str] = None
    #: with ``label`` set: crash on the Nth (1-based) occurrence.
    occurrence: int = 1
    #: "raise" → SimulatedCrash; "exit" → os._exit(exit_code).
    action: str = "raise"
    exit_code: int = 86
    #: every boundary label seen, in order (the enumeration log).
    log: List[str] = field(default_factory=list)
    _label_counts: Dict[str, int] = field(default_factory=dict,
                                          repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def check(self, label: str) -> None:
        with self._lock:
            index = len(self.log)
            self.log.append(label)
            count = self._label_counts.get(label, 0) + 1
            self._label_counts[label] = count
        if self.label is not None:
            triggered = label == self.label and count == self.occurrence
        else:
            triggered = self.crash_at is not None and index == self.crash_at
        if not triggered:
            return
        if self.action == "exit":
            os._exit(self.exit_code)
        raise SimulatedCrash(label, index)

    @property
    def boundaries_seen(self) -> int:
        with self._lock:
            return len(self.log)


#: signature of the crash hook threaded through atomic writes.
CrashHook = Callable[[str], None]


def _noop_crash(_label: str) -> None:
    return None


# -- atomic writes -------------------------------------------------------

_TMP_COUNTER = itertools.count()
#: suffix of in-flight temp files; never matches ``*.json[.gz]`` globs.
TMP_SUFFIX = ".tmp"


def is_temp_artefact(path: Path) -> bool:
    return path.name.endswith(TMP_SUFFIX)


def fsync_directory(directory: Path) -> bool:
    """Flush a directory entry; False where the platform refuses."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(fd)
        return True
    except OSError:
        return False
    finally:
        os.close(fd)


def atomic_write(path: Path, data: bytes, *, kind: str = "artefact",
                 crash: Optional[CrashHook] = None,
                 durable: bool = True) -> int:
    """Atomically publish *data* at *path*; returns the fsync count.

    Write boundaries (in order): ``<kind>:begin`` before the temp file
    exists, ``<kind>:temp`` after the temp file is fully written and
    fsynced, ``<kind>:renamed`` after the rename. A crash at any of
    them leaves either the old file or the new file visible — never a
    partial one — plus at most one orphan ``*.tmp``.

    A failed write (any ordinary exception) removes its temp file; a
    :class:`SimulatedCrash` deliberately does not.

    All filesystem calls go through :func:`repro.io.faultfs.active_fs`
    and transient faults (``EIO``/``ESTALE``) are retried with the
    shared full-jitter backoff; fatal ones (``ENOSPC``) escape as
    :class:`~repro.io.faultfs.StorageUnavailable`.
    """
    crash = crash or _noop_crash
    fs = active_fs()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.parent / (
        f".{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}{TMP_SUFFIX}")
    fsyncs = [0]
    crash(f"{kind}:begin")

    def write_temp() -> None:
        # idempotent under retry: the temp file is ours alone and is
        # rewritten from scratch on every attempt.
        with fs.open(temporary, "wb") as handle:
            handle.write(data)
            handle.flush()
            if durable:
                fs.fsync(handle.fileno())
                fsyncs[0] += 1

    def rename_into_place() -> None:
        try:
            fs.replace(temporary, path)
        except FileNotFoundError:
            # an ambiguously-failed earlier replace may have already
            # consumed the temp file; the temp name is unique to this
            # call, so temp-gone + target-present proves it was ours.
            if not os.path.exists(temporary) and os.path.exists(path):
                return
            raise

    try:
        with_fs_retries(write_temp, label=f"{kind}:write")
        crash(f"{kind}:temp")
        with_fs_retries(rename_into_place, label=f"{kind}:rename")
    except Exception:
        # note: SimulatedCrash is a BaseException and intentionally
        # skips this cleanup — crash debris is the point.
        with contextlib.suppress(OSError):
            temporary.unlink()
        raise
    if durable and fsync_directory(path.parent):
        fsyncs[0] += 1
    crash(f"{kind}:renamed")
    return fsyncs[0]


def atomic_publish(path: Path, data: bytes, *, kind: str = "artefact",
                   crash: Optional[CrashHook] = None,
                   durable: bool = True) -> Optional[int]:
    """Create-exclusive variant of :func:`atomic_write`.

    Publishes *data* at *path* only if nothing is there yet: the temp
    file is hard-linked into place (``os.link`` fails with ``EEXIST``
    instead of clobbering), so when two writers race, exactly one wins
    and the loser learns it lost. Returns the fsync count on success,
    or ``None`` when another writer already published — the storage
    side of a fencing check: a late (zombie) writer cannot overwrite a
    committed artefact even if its lease bookkeeping is stale.

    Write boundaries: ``<kind>:begin``, ``<kind>:temp``,
    ``<kind>:published``.

    Under an ambiguous ``link()`` fault (the operation succeeded on
    the server but an error came back) the retry observes ``EEXIST``
    and this function returns ``None`` exactly as if another writer
    won — callers that care (``publish_snapshot_file``) resolve the
    ambiguity by comparing the published content's digest to their
    own.
    """
    crash = crash or _noop_crash
    fs = active_fs()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.parent / (
        f".{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}{TMP_SUFFIX}")
    fsyncs = [0]
    crash(f"{kind}:begin")

    def write_temp() -> None:
        with fs.open(temporary, "wb") as handle:
            handle.write(data)
            handle.flush()
            if durable:
                fs.fsync(handle.fileno())
                fsyncs[0] += 1

    try:
        with_fs_retries(write_temp, label=f"{kind}:write")
        crash(f"{kind}:temp")
        try:
            with_fs_retries(lambda: fs.link(temporary, path),
                            label=f"{kind}:link")
        except FileExistsError:
            return None
        finally:
            with contextlib.suppress(OSError):
                temporary.unlink()
    except Exception:
        with contextlib.suppress(OSError):
            temporary.unlink()
        raise
    if durable and fsync_directory(path.parent):
        fsyncs[0] += 1
    crash(f"{kind}:published")
    return fsyncs[0]


# -- quarantine records --------------------------------------------------

@dataclass
class QuarantineRecord:
    """Machine-readable sidecar written next to a quarantined file."""

    original: str          # store-relative path the file came from
    moved_to: str          # store-relative path inside quarantine/
    damage_class: str
    detail: str
    quarantined_at: str    # ISO-8601 UTC timestamp
    size: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "original": self.original,
            "moved_to": self.moved_to,
            "damage_class": self.damage_class,
            "detail": self.detail,
            "quarantined_at": self.quarantined_at,
            "size": self.size,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QuarantineRecord":
        return cls(
            original=str(payload["original"]),
            moved_to=str(payload["moved_to"]),
            damage_class=str(payload["damage_class"]),
            detail=str(payload.get("detail", "")),
            quarantined_at=str(payload.get("quarantined_at", "")),
            size=int(payload.get("size", 0)),
        )
