"""Per-directory artefact manifests.

Every manifest scope — one per IXP directory, plus the ``reports/``
directory — carries a ``MANIFEST.json`` mapping scope-relative paths
to integrity metadata::

    {
      "artefact": "repro.artefact", "version": 1, "kind": "manifest",
      "sha256": "<digest of the entries payload>",
      "payload": {
        "version": 1,
        "entries": {
          "v4/2021-07-19.json.gz": {
            "sha256": "…", "size": 1234, "kind": "snapshot",
            "updated": "2021-07-19T02:00:00+00:00"
          },
          "dictionary.json": {…}
        }
      }
    }

The per-entry ``sha256`` is the digest of the artefact's canonical
payload JSON — the same value embedded in the artefact's own envelope,
so either side can validate the other: a stale manifest is detectable
against a self-consistent file, and a corrupted file is detectable
against the manifest even if its embedded digest was corrupted with it.

The manifest file itself is just another enveloped artefact: written
atomically, self-checksummed, and verified on load.
"""

from __future__ import annotations

import datetime as _dt
from pathlib import Path
from typing import Any, Dict, Optional

from ..io.faultfs import active_fs, with_fs_retries
from .integrity import (
    CrashHook,
    IntegrityError,
    atomic_write,
    decode_artefact,
    encode_artefact,
)

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1


def _utcnow() -> str:
    return _dt.datetime.now(_dt.timezone.utc).isoformat(
        timespec="seconds")


class Manifest:
    """The integrity ledger of one store scope (IXP or reports dir)."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / MANIFEST_NAME
        self.entries: Dict[str, Dict[str, Any]] = {}
        #: set when load() found a manifest it could not verify — the
        #: damage is reported through fsck, not hidden.
        self.load_error: Optional[IntegrityError] = None

    # -- persistence -----------------------------------------------------

    @classmethod
    def load(cls, directory: Path, strict: bool = False) -> "Manifest":
        """Read a scope's manifest; a missing file is an empty ledger.

        With ``strict=False`` (runtime reads) a damaged manifest
        degrades to an empty ledger with ``load_error`` set, so stores
        stay writable and fsck can still report and repair the damage.
        With ``strict=True`` the :class:`IntegrityError` propagates.
        """
        manifest = cls(directory)
        try:
            data = with_fs_retries(
                lambda: active_fs().read_bytes(manifest.path),
                label="manifest:read")
        except FileNotFoundError:
            return manifest
        try:
            payload, _digest, _self = decode_artefact(
                data, kind="manifest", gz=False, path=manifest.path)
            entries = payload.get("entries")
            if not isinstance(entries, dict):
                raise IntegrityError("manifest entries is not an object",
                                     manifest.path)
        except IntegrityError as error:
            if strict:
                raise
            manifest.load_error = error
            return manifest
        manifest.entries = {str(k): dict(v) for k, v in entries.items()
                            if isinstance(v, dict)}
        return manifest

    def save(self, crash: Optional[CrashHook] = None,
             durable: bool = True) -> int:
        """Atomically publish the ledger; returns the fsync count."""
        payload = {"version": MANIFEST_VERSION, "entries": self.entries}
        data, _digest = encode_artefact(payload, "manifest", gz=False)
        return atomic_write(self.path, data, kind="manifest",
                            crash=crash, durable=durable)

    # -- entry bookkeeping ----------------------------------------------

    def record(self, rel: str, sha256: str, size: int,
               kind: str) -> None:
        self.entries[rel] = {
            "sha256": sha256,
            "size": size,
            "kind": kind,
            "updated": _utcnow(),
        }

    def remove(self, rel: str) -> bool:
        return self.entries.pop(rel, None) is not None

    def get(self, rel: str) -> Optional[Dict[str, Any]]:
        return self.entries.get(rel)

    def __contains__(self, rel: str) -> bool:
        return rel in self.entries

    def __len__(self) -> int:
        return len(self.entries)
