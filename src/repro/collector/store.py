"""On-disk dataset store — durable and self-healing.

The paper releases "a twelve-week dataset containing daily snapshots …
and a dictionary containing more than 3000 communities". This store
keeps the same two artefacts:

* one gzipped JSON file per snapshot under
  ``<root>/<ixp>/v<family>/<date>.json.gz``, and
* one JSON dictionary file per IXP under
  ``<root>/<ixp>/dictionary.json``,

plus campaign checkpoints (``<date>.ckpt.json.gz``), observability run
reports (``reports/*.json``), content-addressed aggregate-cache
artefacts (``<ixp>/cache/<key>.agg.json.gz`` — see
:mod:`repro.core.engine`), and a ``MANIFEST.json`` per IXP (and one
for ``reports/``) recording every artefact's SHA-256.

Durability contract (see :mod:`repro.collector.integrity`):

* **atomic writes** — temp file in the same directory + fsync +
  rename; a reader can never observe a partially written artefact and
  a crash at any instant leaves at most invisible ``*.tmp`` debris;
* **verified reads** — every load checks the gzip framing, the JSON,
  the envelope's embedded SHA-256, the payload schema, and the
  manifest, raising the typed :class:`IntegrityError` taxonomy
  instead of raw tracebacks;
* **self-healing** — a damaged artefact is moved (never deleted) to
  ``<root>/quarantine/`` with a machine-readable sidecar record;
  iterators and ``latest_snapshot`` skip it, campaign resume falls
  back to a from-scratch collection when its checkpoint is damaged,
  and ``repro-study fsck`` (:mod:`repro.collector.fsck`) audits and
  repairs whole stores.

The layout stays boring: everything is introspectable with ``zcat``
and ``jq``.
"""

from __future__ import annotations

import contextlib
import datetime as _dt
import json
import os
import re
import threading
import types
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

try:  # POSIX-only; manifest updates fall back to thread-safety elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from .. import obs
from ..io.faultfs import StorageUnavailable, active_fs, with_fs_retries
from ..ixp.dictionary import CommunityDictionary
from .integrity import (
    ChecksumMismatchError,
    CrashSchedule,
    IntegrityError,
    QuarantineRecord,
    SchemaDriftError,
    atomic_publish,
    atomic_write,
    decode_artefact,
    encode_artefact,
)
from .manifest import MANIFEST_NAME, Manifest, _utcnow
from .snapshot import Snapshot

#: suffix distinguishing in-progress campaign checkpoints from
#: finished snapshots in the same directory.
CHECKPOINT_SUFFIX = ".ckpt.json.gz"

#: suffix of content-addressed aggregate-cache artefacts, stored under
#: ``<root>/<ixp>/cache/<key>.agg.json.gz``.
AGGREGATE_SUFFIX = ".agg.json.gz"

#: per-IXP subdirectory holding aggregate-cache artefacts.
CACHE_DIR = "cache"

#: top-level directory holding JSON run reports (metrics + traces),
#: kept apart from the per-IXP snapshot tree.
REPORTS_DIR = "reports"

#: top-level directory damaged artefacts are moved to — never deleted.
QUARANTINE_DIR = "quarantine"

#: top-level directory holding per-unit dispatch lease files
#: (see :mod:`repro.collector.dispatch`).
LEASES_DIR = "leases"

#: top-level directory holding per-(unit, fencing-token) worker staging
#: stores; shard output lives here until a lease-checked commit merges
#: it into the main tree.
STAGING_DIR = "staging"

#: directory names that can never be IXP keys.
RESERVED_DIRS = (REPORTS_DIR, QUARANTINE_DIR, LEASES_DIR, STAGING_DIR)

#: per-scope lock file serialising manifest read-modify-write cycles
#: across worker *processes* (``flock``; released automatically if the
#: holder is killed). Invisible to fsck and artefact globs.
MANIFEST_LOCK_NAME = ".manifest.lock"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    writes=reg.counter(
        "repro_store_writes_total",
        "Artefacts atomically published, by kind", ("kind",)),
    write_bytes=reg.counter(
        "repro_store_written_bytes_total",
        "Bytes atomically published, by artefact kind", ("kind",)),
    fsyncs=reg.counter(
        "repro_store_fsyncs_total",
        "fsync calls issued by atomic writes "
        "(files + directories)").labels(),
    verifications=reg.counter(
        "repro_store_verifications_total",
        "Artefact read verifications, by kind and outcome",
        ("kind", "outcome")),
    integrity_errors=reg.counter(
        "repro_store_integrity_errors_total",
        "Verification failures by damage class", ("class",)),
    quarantines=reg.counter(
        "repro_store_quarantines_total",
        "Artefacts moved to quarantine, by damage class", ("class",)),
))


class DatasetStore:
    """Filesystem-backed store of snapshots and dictionaries."""

    def __init__(self, root: os.PathLike,
                 crash_schedule: Optional[CrashSchedule] = None,
                 snapshot_codec: str = "json") -> None:
        from ..io.columnar import SNAPSHOT_CODECS
        if snapshot_codec not in SNAPSHOT_CODECS:
            raise ValueError(
                f"unknown snapshot codec: {snapshot_codec!r} "
                f"(expected one of {SNAPSHOT_CODECS})")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: fault-injection hook consulted at every write boundary
        #: (None in production — see tests/chaos).
        self.crash_schedule = crash_schedule
        #: payload codec for *newly written* snapshots; reads always
        #: dispatch on each payload's self-described codec, so stores
        #: with mixed formats are fully readable regardless.
        self.snapshot_codec = snapshot_codec
        self._manifest_lock = threading.RLock()

    # -- naming and validation -------------------------------------------

    @staticmethod
    def _validate_name(name: str, what: str = "ixp") -> str:
        """Reject names that could escape the store root (``..``,
        separators, hidden/temp prefixes) before they reach a path."""
        if (not isinstance(name, str) or not _NAME_RE.match(name)
                or ".." in name):
            raise ValueError(f"invalid {what} name: {name!r}")
        if what == "ixp" and name in RESERVED_DIRS:
            raise ValueError(f"{name!r} is a reserved store directory")
        return name

    @staticmethod
    def _validate_family(family: int) -> int:
        if family not in (4, 6):
            raise ValueError(f"family must be 4 or 6, got {family!r}")
        return family

    @staticmethod
    def _validate_date(date: str) -> str:
        try:
            _dt.date.fromisoformat(date)
        except (TypeError, ValueError) as error:
            raise ValueError(f"invalid snapshot date: {date!r}") \
                from error
        return date

    # -- crash / write plumbing ------------------------------------------

    def _crash(self, label: str) -> None:
        if self.crash_schedule is not None:
            self.crash_schedule.check(label)

    def _scope_dir(self, path: Path) -> Path:
        """The manifest scope (first directory under the root) a path
        belongs to."""
        rel = path.relative_to(self.root)
        return self.root / rel.parts[0]

    @contextlib.contextmanager
    def _manifest_guard(self, scope: Path) -> Iterator[None]:
        """Critical section for one scope's manifest read-modify-write.

        Threads serialise on the store's RLock as before; on POSIX an
        ``flock`` on ``<scope>/.manifest.lock`` additionally serialises
        concurrent *processes* (dispatch workers committing shards into
        the same IXP scope), so no manifest update is ever lost to a
        read-modify-write race. The OS drops the flock automatically
        when a worker dies, SIGKILL included — a crashed holder can
        never wedge the store.
        """
        with self._manifest_lock:
            handle = None
            if fcntl is not None:
                try:
                    scope.mkdir(parents=True, exist_ok=True)
                    handle = open(scope / MANIFEST_LOCK_NAME, "a+b")
                    fd = handle.fileno()
                    with_fs_retries(
                        lambda: active_fs().flock(fd, fcntl.LOCK_EX),
                        label="manifest:flock")
                except (OSError, StorageUnavailable):
                    # degraded lock: thread-safety still holds; only
                    # cross-process serialisation is lost.
                    if handle is not None:
                        handle.close()
                    handle = None
            try:
                yield
            finally:
                if handle is not None:
                    handle.close()  # closing the fd releases the flock

    def _write_artefact(self, path: Path, payload: Any, kind: str, *,
                        gz: bool, compresslevel: int = 9) -> Path:
        data, digest = encode_artefact(payload, kind, gz=gz,
                                       compresslevel=compresslevel)
        fsyncs = atomic_write(path, data, kind=kind, crash=self._crash)
        rel = path.relative_to(self._scope_dir(path)).as_posix()
        with self._manifest_guard(self._scope_dir(path)):
            manifest = Manifest.load(self._scope_dir(path))
            manifest.record(rel, digest, len(data), kind)
            fsyncs += manifest.save(crash=self._crash)
        metrics = _METRICS()
        metrics.writes.labels(kind).inc()
        metrics.write_bytes.labels(kind).inc(len(data))
        metrics.fsyncs.inc(fsyncs)
        return path

    def _forget_manifest_entry(self, path: Path) -> None:
        scope = self._scope_dir(path)
        rel = path.relative_to(scope).as_posix()
        with self._manifest_guard(scope):
            manifest = Manifest.load(scope)
            if manifest.remove(rel):
                fsyncs = manifest.save(crash=self._crash)
                _METRICS().fsyncs.inc(fsyncs)

    # -- verified reads --------------------------------------------------

    def _read_verified(self, path: Path, kind: str, *,
                       gz: bool) -> Tuple[Any, str]:
        """Read + fully verify one artefact; returns ``(payload,
        sha256)``. Raises the :class:`IntegrityError` taxonomy (after
        metering) on damage."""
        data = with_fs_retries(lambda: active_fs().read_bytes(path),
                               label="artefact:read")
        try:
            payload, digest, self_verified = decode_artefact(
                data, kind=kind, gz=gz, path=path)
            entry = None
            scope = self._scope_dir(path)
            rel = path.relative_to(scope).as_posix()
            with self._manifest_lock:
                entry = Manifest.load(scope).get(rel)
            if (entry is not None and entry.get("sha256") != digest
                    and not self_verified):
                # a legacy (un-enveloped) file cannot vouch for itself;
                # the manifest is the only witness and it disagrees.
                raise ChecksumMismatchError(
                    f"manifest records sha256 "
                    f"{str(entry.get('sha256'))[:12]}… but file "
                    f"digests to {digest[:12]}…", path)
        except IntegrityError as error:
            metrics = _METRICS()
            metrics.verifications.labels(kind, "failed").inc()
            metrics.integrity_errors.labels(error.damage_class).inc()
            raise
        _METRICS().verifications.labels(kind, "ok").inc()
        return payload, digest

    def _load_self_healing(self, path: Path, kind: str, *,
                           gz: bool) -> Tuple[Any, str]:
        """A verified read that quarantines on damage before
        re-raising (the raised error carries ``.record``)."""
        try:
            return self._read_verified(path, kind, gz=gz)
        except IntegrityError as error:
            error.record = self.quarantine(path, error)
            raise

    # -- quarantine ------------------------------------------------------

    def quarantine(self, path: os.PathLike,
                   error: IntegrityError) -> QuarantineRecord:
        """Move a damaged file (never delete) under ``quarantine/``,
        write a machine-readable sidecar record, and drop the file's
        manifest entry."""
        path = Path(path)
        rel = path.relative_to(self.root)
        destination = self.root / QUARANTINE_DIR / rel
        destination.parent.mkdir(parents=True, exist_ok=True)
        final = destination
        suffix = 0
        while final.exists():
            suffix += 1
            final = destination.with_name(f"{destination.name}.{suffix}")
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        os.replace(path, final)
        record = QuarantineRecord(
            original=rel.as_posix(),
            moved_to=final.relative_to(self.root).as_posix(),
            damage_class=error.damage_class,
            detail=str(error),
            quarantined_at=_utcnow(),
            size=size,
        )
        sidecar = final.parent / (final.name + ".quarantine.json")
        atomic_write(
            sidecar,
            (json.dumps(record.to_dict(), indent=1, sort_keys=True)
             + "\n").encode("utf-8"),
            kind="quarantine", crash=self._crash)
        self._forget_manifest_entry(path)
        _METRICS().quarantines.labels(error.damage_class).inc()
        return record

    def quarantine_records(self) -> List[QuarantineRecord]:
        """Every quarantine sidecar record in the store, sorted by the
        original artefact path."""
        directory = self.root / QUARANTINE_DIR
        if not directory.is_dir():
            return []
        records = []
        for sidecar in sorted(directory.rglob("*.quarantine.json")):
            try:
                with open(sidecar, encoding="utf-8") as handle:
                    records.append(QuarantineRecord.from_dict(
                        json.load(handle)))
            except (OSError, ValueError, KeyError):
                continue  # a torn sidecar must not break the listing
        return sorted(records, key=lambda r: r.original)

    # -- snapshots -----------------------------------------------------

    def _snapshot_path(self, ixp: str, family: int, date: str) -> Path:
        self._validate_name(ixp)
        self._validate_family(family)
        self._validate_date(date)
        return self.root / ixp / f"v{family}" / f"{date}.json.gz"

    def save_snapshot(self, snapshot: Snapshot) -> Path:
        from ..io.columnar import encode_snapshot_payload
        path = self._snapshot_path(
            snapshot.ixp, snapshot.family, snapshot.captured_on)
        payload = encode_snapshot_payload(snapshot, self.snapshot_codec)
        return self._write_artefact(path, payload, "snapshot", gz=True)

    def publish_snapshot_file(self, ixp: str, family: int, date: str,
                              source: Path) -> Optional[Path]:
        """Merge a staged snapshot file into the tree, exclusively.

        The dispatch commit path: *source* (a fully written snapshot
        artefact in a worker's staging store) is verified, then
        hard-linked into place with create-exclusive semantics — if the
        date is already published *with different content*, nothing is
        written and ``None`` comes back, so a late writer can never
        clobber a committed shard. When the published content is
        byte-equivalent to ours (same payload digest) the publish is
        treated as an idempotent success: this is how an ambiguous
        ``link()`` — the NFS retransmit that performed the operation
        but reported an error — is resolved, and it also makes the
        manifest entry converge when the ambiguous attempt died before
        recording it. The manifest entry is recorded under the
        cross-process guard, exactly like any other write.

        Raises :class:`IntegrityError` if *source* itself is damaged —
        damaged bytes are never merged.
        """
        data = with_fs_retries(
            lambda: active_fs().read_bytes(Path(source)),
            label="staging:read")
        _payload, digest, _self_verified = decode_artefact(
            data, kind="snapshot", gz=True, path=Path(source))
        path = self._snapshot_path(ixp, family, date)
        fsyncs = atomic_publish(path, data, kind="snapshot",
                                crash=self._crash)
        if fsyncs is None:
            # Someone already published. Us (ambiguous link) or a
            # racing winner with identical bytes → idempotent success;
            # different content → genuine refusal.
            try:
                published = with_fs_retries(
                    lambda: active_fs().read_bytes(path),
                    label="publish:verify")
                _p, published_digest, _v = decode_artefact(
                    published, kind="snapshot", gz=True, path=path)
            except (OSError, StorageUnavailable, IntegrityError):
                return None
            if published_digest != digest:
                return None
            fsyncs = 0
        rel = path.relative_to(self._scope_dir(path)).as_posix()
        with self._manifest_guard(self._scope_dir(path)):
            manifest = Manifest.load(self._scope_dir(path))
            manifest.record(rel, digest, len(data), "snapshot")
            fsyncs += manifest.save(crash=self._crash)
        metrics = _METRICS()
        metrics.writes.labels("snapshot").inc()
        metrics.write_bytes.labels("snapshot").inc(len(data))
        metrics.fsyncs.inc(fsyncs)
        return path

    def read_snapshot(self, ixp: str, family: int, date: str, *,
                      heal: bool = True) -> Tuple[Snapshot, str]:
        """Load + verify one snapshot; returns ``(snapshot, sha256)``
        — the digest is the envelope/manifest payload digest the
        aggregate cache keys on.

        With ``heal=True`` (the default) damaged files raise
        :class:`IntegrityError` *after* being moved to quarantine (the
        error's ``record`` says where). ``heal=False`` verifies but
        never mutates the store — the mode parallel analysis workers
        use, so quarantine and manifest writes stay in one process.
        """
        path = self._snapshot_path(ixp, family, date)
        if heal:
            payload, digest = self._load_self_healing(
                path, "snapshot", gz=True)
        else:
            payload, digest = self._read_verified(path, "snapshot",
                                                  gz=True)
        from ..io.columnar import decode_snapshot_payload
        try:
            return decode_snapshot_payload(payload), digest
        except (KeyError, TypeError, ValueError) as error:
            drift = SchemaDriftError(
                f"snapshot payload does not deserialise: {error}", path)
            if heal:
                drift.record = self.quarantine(path, drift) \
                    if path.exists() else None
            raise drift from error

    def load_snapshot(self, ixp: str, family: int, date: str) -> Snapshot:
        """Load + verify one snapshot.

        Damaged files raise :class:`IntegrityError` *after* being
        moved to quarantine (the error's ``record`` says where).
        """
        return self.read_snapshot(ixp, family, date)[0]

    def convert_snapshot(self, ixp: str, family: int, date: str,
                         codec: str) -> Tuple[Path, bool]:
        """Re-encode one stored snapshot in place with *codec*.

        Returns ``(path, converted)`` — ``converted`` is False when
        the file already used the requested codec. The rewrite is
        verified *before* the original is touched: the re-encoded
        payload must decode back to the identical snapshot value
        (``to_dict()`` equality, which is exactly the JSON payload the
        aggregation pipeline consumes), so a conversion can change
        bytes and digests but never analysis output. The manifest
        entry is refreshed with the new payload digest; the aggregate
        cache keys on that digest, so converted snapshots re-aggregate
        to byte-identical results instead of serving stale entries.
        """
        from ..io.columnar import (
            SNAPSHOT_CODECS,
            decode_snapshot_payload,
            encode_snapshot_payload,
            payload_codec,
        )
        if codec not in SNAPSHOT_CODECS:
            raise ValueError(f"unknown snapshot codec: {codec!r}")
        path = self._snapshot_path(ixp, family, date)
        payload, _digest = self._load_self_healing(path, "snapshot",
                                                   gz=True)
        if payload_codec(payload) == codec:
            return path, False
        snapshot = decode_snapshot_payload(payload)
        converted = encode_snapshot_payload(snapshot, codec)
        if decode_snapshot_payload(converted).to_dict() \
                != snapshot.to_dict():
            raise RuntimeError(
                f"snapshot codec round-trip mismatch for "
                f"{ixp}/v{family}/{date}; refusing to rewrite")
        self._write_artefact(path, converted, "snapshot", gz=True)
        return path, True

    def delete_snapshot(self, ixp: str, family: int, date: str) -> bool:
        path = self._snapshot_path(ixp, family, date)
        if path.exists():
            path.unlink()
            self._forget_manifest_entry(path)
            return True
        return False

    def snapshot_dates(self, ixp: str, family: int) -> List[str]:
        directory = self.root / self._validate_name(ixp) / f"v{family}"
        if not directory.is_dir():
            return []
        return sorted(p.name[:-len(".json.gz")]
                      for p in directory.glob("*.json.gz")
                      if not p.name.endswith(CHECKPOINT_SUFFIX))

    def iter_snapshots(self, ixp: str, family: int,
                       damaged: Optional[List[QuarantineRecord]] = None,
                       ) -> Iterator[Snapshot]:
        """Yield verified snapshots in date order.

        Damaged dates are quarantined and skipped — the series simply
        has a missing day, exactly like a failed collection. Pass a
        list as ``damaged`` to receive their quarantine records.
        """
        for date in self.snapshot_dates(ixp, family):
            try:
                yield self.load_snapshot(ixp, family, date)
            except FileNotFoundError:
                continue  # raced with a concurrent delete/quarantine
            except IntegrityError as error:
                if damaged is not None and error.record is not None:
                    damaged.append(error.record)

    def latest_verified(self, ixp: str, family: int,
                        damaged: Optional[List[QuarantineRecord]] = None,
                        ) -> Optional[Tuple[Snapshot, str]]:
        """The newest loadable snapshot with its payload digest, or
        None. Damaged newer dates are quarantined and skipped."""
        for date in reversed(self.snapshot_dates(ixp, family)):
            try:
                return self.read_snapshot(ixp, family, date)
            except FileNotFoundError:
                continue
            except IntegrityError as error:
                if damaged is not None and error.record is not None:
                    damaged.append(error.record)
        return None

    def latest_snapshot(self, ixp: str, family: int,
                        damaged: Optional[List[QuarantineRecord]] = None,
                        ) -> Optional[Snapshot]:
        """The newest *loadable* snapshot: a damaged latest file is
        quarantined and the next-newest date is used instead."""
        loaded = self.latest_verified(ixp, family, damaged=damaged)
        return loaded[0] if loaded is not None else None

    def snapshot_digest(self, ixp: str, family: int,
                        date: str) -> Optional[str]:
        """The manifest-recorded payload digest of one snapshot, or
        None when the manifest cannot vouch for the file (no entry, or
        a size mismatch betraying an unrecorded rewrite). Reads only
        the manifest — never the route data — so cache probes stay
        O(entries), not O(routes)."""
        path = self._snapshot_path(ixp, family, date)
        scope = self._scope_dir(path)
        rel = path.relative_to(scope).as_posix()
        with self._manifest_lock:
            entry = Manifest.load(scope).get(rel)
        if entry is None:
            return None
        try:
            size = path.stat().st_size
        except OSError:
            return None
        if entry.get("size") != size:
            return None
        digest = entry.get("sha256")
        return str(digest) if digest else None

    def ixps(self) -> List[str]:
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and p.name not in RESERVED_DIRS)

    # -- aggregate cache ---------------------------------------------------

    def _aggregate_path(self, ixp: str, key: str) -> Path:
        self._validate_name(ixp)
        self._validate_name(key, what="cache key")
        return (self.root / ixp / CACHE_DIR
                / f"{key}{AGGREGATE_SUFFIX}")

    def save_aggregate(self, ixp: str, key: str,
                       payload: Dict) -> Path:
        """Persist one content-addressed aggregate-cache artefact
        (atomic write, manifest-recorded like any other artefact)."""
        return self._write_artefact(self._aggregate_path(ixp, key),
                                    payload, "aggregate", gz=True)

    def load_aggregate(self, ixp: str, key: str) -> Dict:
        """A verified aggregate-cache payload; damaged entries are
        quarantined before the :class:`IntegrityError` re-raises — the
        caller recomputes, it never trusts damaged bytes."""
        payload, _digest = self._load_self_healing(
            self._aggregate_path(ixp, key), "aggregate", gz=True)
        return payload

    def has_aggregate(self, ixp: str, key: str) -> bool:
        return self._aggregate_path(ixp, key).exists()

    def quarantine_aggregate(self, ixp: str, key: str,
                             error: IntegrityError
                             ) -> Optional[QuarantineRecord]:
        """Quarantine one cache entry whose *payload* failed to
        deserialise after envelope verification (schema drift)."""
        path = self._aggregate_path(ixp, key)
        return self.quarantine(path, error) if path.exists() else None

    def aggregate_keys(self, ixp: str) -> List[str]:
        directory = self.root / self._validate_name(ixp) / CACHE_DIR
        if not directory.is_dir():
            return []
        return sorted(p.name[:-len(AGGREGATE_SUFFIX)]
                      for p in directory.glob(f"*{AGGREGATE_SUFFIX}"))

    # -- campaign checkpoints ----------------------------------------------

    def _checkpoint_path(self, ixp: str, family: int, date: str) -> Path:
        self._validate_name(ixp)
        self._validate_family(family)
        self._validate_date(date)
        return self.root / ixp / f"v{family}" / f"{date}{CHECKPOINT_SUFFIX}"

    def save_checkpoint(self, ixp: str, family: int, date: str,
                        payload: Dict) -> Path:
        """Persist partial campaign progress (atomic write + fsync +
        rename), so a crashed collection resumes at the last completed
        peer."""
        path = self._checkpoint_path(ixp, family, date)
        # checkpoints are rewritten after every few peers and deleted on
        # completion — favour write speed over compression ratio.
        return self._write_artefact(path, payload, "checkpoint",
                                    gz=True, compresslevel=1)

    def load_checkpoint(self, ixp: str, family: int,
                        date: str) -> Optional[Dict]:
        """A verified checkpoint payload, or None when there is none
        *or it is damaged* — a corrupt checkpoint is quarantined and
        the campaign target restarts from scratch instead of dying."""
        path = self._checkpoint_path(ixp, family, date)
        if not path.exists():
            return None
        try:
            return self._load_self_healing(path, "checkpoint",
                                           gz=True)[0]
        except IntegrityError:
            return None

    def delete_checkpoint(self, ixp: str, family: int, date: str) -> bool:
        path = self._checkpoint_path(ixp, family, date)
        if path.exists():
            path.unlink()
            self._forget_manifest_entry(path)
            return True
        return False

    def has_checkpoint(self, ixp: str, family: int, date: str) -> bool:
        return self._checkpoint_path(ixp, family, date).exists()

    def has_snapshot(self, ixp: str, family: int, date: str) -> bool:
        # routed through the active filesystem so delayed-visibility
        # faults can hide a freshly published date from another "host".
        return active_fs().exists(self._snapshot_path(ixp, family, date))

    # -- run reports -------------------------------------------------------

    def _report_path(self, name: str) -> Path:
        self._validate_name(name, what="report")
        return self.root / REPORTS_DIR / f"{name}.json"

    def save_run_report(self, name: str, report: Dict) -> Path:
        """Persist one observability run report (metrics snapshot +
        traces; see :mod:`repro.obs.report`) next to the dataset it
        describes."""
        return self._write_artefact(self._report_path(name), report,
                                    "report", gz=False)

    def load_run_report(self, name: str) -> Dict:
        return self._load_self_healing(self._report_path(name),
                                       "report", gz=False)[0]

    def has_run_report(self, name: str) -> bool:
        return self._report_path(name).exists()

    def run_report_names(self) -> List[str]:
        directory = self.root / REPORTS_DIR
        if not directory.is_dir():
            return []
        return sorted(p.stem for p in directory.glob("*.json")
                      if p.name != MANIFEST_NAME)

    # -- dictionaries ----------------------------------------------------

    def _dictionary_path(self, ixp: str) -> Path:
        return self.root / self._validate_name(ixp) / "dictionary.json"

    def save_dictionary(self, ixp: str,
                        dictionary: CommunityDictionary) -> Path:
        return self._write_artefact(self._dictionary_path(ixp),
                                    dictionary.to_dict(),
                                    "dictionary", gz=False)

    def load_dictionary(self, ixp: str) -> CommunityDictionary:
        path = self._dictionary_path(ixp)
        payload, _digest = self._load_self_healing(path, "dictionary",
                                                   gz=False)
        try:
            return CommunityDictionary.from_dict(payload)
        except (KeyError, TypeError, ValueError) as error:
            drift = SchemaDriftError(
                f"dictionary payload does not deserialise: {error}",
                path)
            drift.record = self.quarantine(path, drift) \
                if path.exists() else None
            raise drift from error

    def has_dictionary(self, ixp: str) -> bool:
        return self._dictionary_path(ixp).exists()

    # -- bulk helpers ------------------------------------------------------

    def summary_table(self, ixp: str, family: int) -> List[Dict[str, int]]:
        """Per-date summary counters — the inputs to Tables 3 and 4."""
        rows = []
        for snapshot in self.iter_snapshots(ixp, family):
            row: Dict[str, int] = {"date": snapshot.captured_on}  # type: ignore[dict-item]
            row.update(snapshot.summary())
            rows.append(row)
        return rows
