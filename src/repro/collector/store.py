"""On-disk dataset store.

The paper releases "a twelve-week dataset containing daily snapshots …
and a dictionary containing more than 3000 communities". This store
keeps the same two artefacts:

* one gzipped JSON file per snapshot under
  ``<root>/<ixp>/v<family>/<date>.json.gz``, and
* one JSON dictionary file per IXP under
  ``<root>/<ixp>/dictionary.json``.

The layout is intentionally boring: everything is introspectable with
``zcat`` and ``jq``.
"""

from __future__ import annotations

import gzip
import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from ..ixp.dictionary import CommunityDictionary
from .snapshot import Snapshot

#: suffix distinguishing in-progress campaign checkpoints from
#: finished snapshots in the same directory.
CHECKPOINT_SUFFIX = ".ckpt.json.gz"

#: top-level directory holding JSON run reports (metrics + traces),
#: kept apart from the per-IXP snapshot tree.
REPORTS_DIR = "reports"


class DatasetStore:
    """Filesystem-backed store of snapshots and dictionaries."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- snapshots -----------------------------------------------------

    def _snapshot_path(self, ixp: str, family: int, date: str) -> Path:
        return self.root / ixp / f"v{family}" / f"{date}.json.gz"

    def save_snapshot(self, snapshot: Snapshot) -> Path:
        path = self._snapshot_path(
            snapshot.ixp, snapshot.family, snapshot.captured_on)
        path.parent.mkdir(parents=True, exist_ok=True)
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            json.dump(snapshot.to_dict(), handle, separators=(",", ":"))
        return path

    def load_snapshot(self, ixp: str, family: int, date: str) -> Snapshot:
        path = self._snapshot_path(ixp, family, date)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return Snapshot.from_dict(json.load(handle))

    def delete_snapshot(self, ixp: str, family: int, date: str) -> bool:
        path = self._snapshot_path(ixp, family, date)
        if path.exists():
            path.unlink()
            return True
        return False

    def snapshot_dates(self, ixp: str, family: int) -> List[str]:
        directory = self.root / ixp / f"v{family}"
        if not directory.is_dir():
            return []
        return sorted(p.name[:-len(".json.gz")]
                      for p in directory.glob("*.json.gz")
                      if not p.name.endswith(CHECKPOINT_SUFFIX))

    def iter_snapshots(self, ixp: str, family: int) -> Iterator[Snapshot]:
        for date in self.snapshot_dates(ixp, family):
            yield self.load_snapshot(ixp, family, date)

    def latest_snapshot(self, ixp: str, family: int) -> Optional[Snapshot]:
        dates = self.snapshot_dates(ixp, family)
        if not dates:
            return None
        return self.load_snapshot(ixp, family, dates[-1])

    def ixps(self) -> List[str]:
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and p.name != REPORTS_DIR)

    # -- campaign checkpoints ----------------------------------------------

    def _checkpoint_path(self, ixp: str, family: int, date: str) -> Path:
        return self.root / ixp / f"v{family}" / f"{date}{CHECKPOINT_SUFFIX}"

    def save_checkpoint(self, ixp: str, family: int, date: str,
                        payload: Dict) -> Path:
        """Persist partial campaign progress (atomic: write + rename),
        so a crashed collection resumes at the last completed peer."""
        path = self._checkpoint_path(ixp, family, date)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_suffix(".tmp")
        # checkpoints are rewritten after every few peers and deleted on
        # completion — favour write speed over compression ratio.
        with gzip.open(temporary, "wt", encoding="utf-8",
                       compresslevel=1) as handle:
            json.dump(payload, handle, separators=(",", ":"))
        temporary.replace(path)
        return path

    def load_checkpoint(self, ixp: str, family: int,
                        date: str) -> Optional[Dict]:
        path = self._checkpoint_path(ixp, family, date)
        if not path.exists():
            return None
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return json.load(handle)

    def delete_checkpoint(self, ixp: str, family: int, date: str) -> bool:
        path = self._checkpoint_path(ixp, family, date)
        if path.exists():
            path.unlink()
            return True
        return False

    def has_checkpoint(self, ixp: str, family: int, date: str) -> bool:
        return self._checkpoint_path(ixp, family, date).exists()

    def has_snapshot(self, ixp: str, family: int, date: str) -> bool:
        return self._snapshot_path(ixp, family, date).exists()

    # -- run reports -------------------------------------------------------

    def _report_path(self, name: str) -> Path:
        return self.root / REPORTS_DIR / f"{name}.json"

    def save_run_report(self, name: str, report: Dict) -> Path:
        """Persist one observability run report (metrics snapshot +
        traces; see :mod:`repro.obs.report`) next to the dataset it
        describes."""
        from ..obs.report import write_run_report
        return write_run_report(self._report_path(name), report)

    def load_run_report(self, name: str) -> Dict:
        with open(self._report_path(name), encoding="utf-8") as handle:
            return json.load(handle)

    def has_run_report(self, name: str) -> bool:
        return self._report_path(name).exists()

    def run_report_names(self) -> List[str]:
        directory = self.root / REPORTS_DIR
        if not directory.is_dir():
            return []
        return sorted(p.stem for p in directory.glob("*.json"))

    # -- dictionaries ----------------------------------------------------

    def save_dictionary(self, ixp: str,
                        dictionary: CommunityDictionary) -> Path:
        path = self.root / ixp / "dictionary.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(dictionary.to_dict(), handle, indent=1)
        return path

    def load_dictionary(self, ixp: str) -> CommunityDictionary:
        path = self.root / ixp / "dictionary.json"
        with open(path, encoding="utf-8") as handle:
            return CommunityDictionary.from_dict(json.load(handle))

    def has_dictionary(self, ixp: str) -> bool:
        return (self.root / ixp / "dictionary.json").exists()

    # -- bulk helpers ------------------------------------------------------

    def summary_table(self, ixp: str, family: int) -> List[Dict[str, int]]:
        """Per-date summary counters — the inputs to Tables 3 and 4."""
        rows = []
        for snapshot in self.iter_snapshots(ixp, family):
            row: Dict[str, int] = {"date": snapshot.captured_on}  # type: ignore[dict-item]
            row.update(snapshot.summary())
            rows.append(row)
        return rows
