"""Dataset sanitation (§3).

The paper: "We inspect all downloaded data and remove from our dataset
the snapshots where we found clear 'valleys' in the number of members
and/or prefixes, i.e. dropped at least 30% from the previous day and
returned to previous values in subsequent days." The sanitation removed
169 (13.5%) snapshots.

This module implements exactly that valley rule over a chronological
snapshot series, plus summary reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .snapshot import Snapshot, snapshots_sorted

#: a valley is a drop of at least this fraction from the previous value.
DEFAULT_DROP_THRESHOLD = 0.30
#: "returned to previous values": within this fraction of the pre-drop
#: level on a subsequent day.
DEFAULT_RECOVERY_TOLERANCE = 0.10
#: metrics inspected for valleys ("members and/or prefixes").
VALLEY_METRICS = ("members", "prefixes")


@dataclass
class SanitationReport:
    """Outcome of one sanitation pass."""

    kept: List[Snapshot] = field(default_factory=list)
    removed: List[Snapshot] = field(default_factory=list)
    #: snapshot key → metric that triggered removal.
    reasons: Dict[str, str] = field(default_factory=dict)
    #: store-relative paths of snapshots that were quarantined while
    #: loading the series (see :func:`sanitise_store`) — they never
    #: reach the valley rule; the series simply has missing days,
    #: exactly like the paper's discarded collection failures.
    quarantined: List[str] = field(default_factory=list)

    @property
    def removed_fraction(self) -> float:
        total = len(self.kept) + len(self.removed)
        return len(self.removed) / total if total else 0.0


def _is_valley(previous: int, current: int, following: Sequence[int],
               drop_threshold: float,
               recovery_tolerance: float) -> bool:
    """Did *current* drop ≥threshold from *previous* and recover later?"""
    if previous <= 0:
        return False
    if current > previous * (1.0 - drop_threshold):
        return False
    floor = previous * (1.0 - recovery_tolerance)
    return any(value >= floor for value in following)


def sanitise(snapshots: Sequence[Snapshot],
             drop_threshold: float = DEFAULT_DROP_THRESHOLD,
             recovery_tolerance: float = DEFAULT_RECOVERY_TOLERANCE,
             ) -> SanitationReport:
    """Apply the §3 valley rule to one (IXP, family) series.

    Snapshots are processed in chronological order; a snapshot is
    removed when members or prefixes dropped ≥ ``drop_threshold`` from
    the previous *kept* snapshot and a subsequent snapshot returns to
    (near) the pre-drop level — the signature of a collection failure
    rather than a real event.
    """
    ordered = snapshots_sorted(snapshots)
    ixps = {(s.ixp, s.family) for s in ordered}
    if len(ixps) > 1:
        raise ValueError(
            f"sanitise expects a single (IXP, family) series, got {ixps}")
    report = SanitationReport()
    summaries = [s.summary() for s in ordered]
    previous_kept: Dict[str, int] = {}
    for index, snapshot in enumerate(ordered):
        summary = summaries[index]
        removed_reason = None
        for metric in VALLEY_METRICS:
            previous = previous_kept.get(metric)
            if previous is None:
                continue
            following = [summaries[j][metric]
                         for j in range(index + 1, len(summaries))]
            if _is_valley(previous, summary[metric], following,
                          drop_threshold, recovery_tolerance):
                removed_reason = metric
                break
        if removed_reason is not None:
            report.removed.append(snapshot)
            report.reasons[snapshot.key] = removed_reason
        else:
            report.kept.append(snapshot)
            for metric in VALLEY_METRICS:
                previous_kept[metric] = summary[metric]
    return report


def sanitise_store(store, ixp: str, family: int,
                   drop_threshold: float = DEFAULT_DROP_THRESHOLD,
                   recovery_tolerance: float = DEFAULT_RECOVERY_TOLERANCE,
                   ) -> SanitationReport:
    """Sanitise one (IXP, family) series straight off a
    :class:`~repro.collector.store.DatasetStore`.

    Damaged snapshot files are quarantined by the store while
    iterating and surface in ``report.quarantined`` — to the valley
    rule they are simply missing days, the same way the paper treats
    snapshots its sanitation discarded.
    """
    damaged: List = []
    snapshots = list(store.iter_snapshots(ixp, family, damaged=damaged))
    report = sanitise(snapshots, drop_threshold=drop_threshold,
                      recovery_tolerance=recovery_tolerance)
    report.quarantined = [record.original for record in damaged]
    return report


def sanitise_many(series: Dict[Tuple[str, int], Sequence[Snapshot]],
                  drop_threshold: float = DEFAULT_DROP_THRESHOLD,
                  recovery_tolerance: float = DEFAULT_RECOVERY_TOLERANCE,
                  ) -> Dict[Tuple[str, int], SanitationReport]:
    """Sanitise several (IXP, family) series independently."""
    return {key: sanitise(snapshots, drop_threshold=drop_threshold,
                          recovery_tolerance=recovery_tolerance)
            for key, snapshots in series.items()}
