"""Crash-tolerant distributed campaign dispatch.

The paper's twelve-week, eight-IXP collection is exactly the shape of
campaign that outlives any single process: collectors crash, looking
glasses stall, machines reboot. This module shards a campaign's
``(IXP, family, day)`` work units across worker **processes** such
that any worker — or the coordinator itself — can be SIGKILLed at any
instant and a re-run converges to the same merged store a fault-free
serial run produces. The moving pieces:

* **lease-based claims** — one lease file per work unit under
  ``<store>/leases/``, written through the integrity-envelope
  machinery (kind ``lease``). A claim is an ``os.link`` of a fully
  written temp file onto a *token-numbered* path: creation is
  atomic-exclusive, so exactly one of two racing claimants wins, and
  the token — monotone per unit by construction, because token *n+1*
  can only ever be linked once — doubles as the **fencing token**;

* **heartbeat renewal and expiry** — the holder renews its lease on a
  heartbeat thread; other workers treat a lease whose ``renewed_at``
  is more than one TTL stale as expired and reclaim it. Expiry is a
  *wall-clock* judgement (monotonic clocks are meaningless across
  processes), which makes it a **liveness** mechanism only: clock skew
  can at worst delay or hasten a steal. **Safety** never depends on
  clocks — a worker's output is staged privately and only merged by a
  commit that re-checks the fencing token, and the merge itself is a
  create-exclusive publish, so a zombie's late write is quarantined
  (never merged) no matter what its clock thinks;

* **work-stealing** — idle workers scan the unit list (rotated by
  worker index to spread contention) for unclaimed or expired units;
  when nothing is claimable they back off with full jitter, the same
  discipline the LG client uses against rate limits;

* **staged shards, lease-checked merge** — each claim collects into a
  private staging store ``<store>/staging/<unit>.t<token>/`` (a full
  :class:`~repro.collector.store.DatasetStore`: atomic writes,
  checkpoints, fsck-able). A successor claim adopts the predecessor's
  checkpoint, so work survives worker death at per-peer granularity.
  Commit = fencing-token check, exclusive publish into the main tree,
  manifest record under a cross-process flock, lease release;

* **deterministic worker fault injection** —
  :class:`WorkerCrashSchedule` mirrors ``FaultSchedule`` /
  ``CrashSchedule``: a per-worker-index plan of ``os._exit`` points
  (mid-unit, mid-checkpoint, mid-lease-renewal, pre-commit), shipped
  to worker processes through the environment — the substrate of the
  ``tests/chaos`` dispatch harness.

The coordinator spawns workers as subprocesses, restarts unexpected
exits (bounded), aggregates worker reports into ``repro_dispatch_*``
metrics, and audits the merged store with fsck. All campaign state
lives in the store, so a killed coordinator is recovered by simply
re-running ``repro-study campaign --dispatch N``.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import subprocess
import sys
import threading
import time
import types
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from .. import obs
from ..io.faultfs import (
    FAULT_PLAN_ENV,
    StorageUnavailable,
    active_fs,
    host_identity,
    install_from_env,
    record_fault_counts,
    with_fs_retries,
)
from ..net.backoff import FullJitterBackoff
from .campaign import (
    STATUS_COMPLETE,
    STATUS_DEGRADED,
    CampaignConfig,
    CampaignTarget,
    CollectionCampaign,
)
from .fsck import fsck_store
from .integrity import (
    CrashSchedule,
    IntegrityError,
    atomic_write,
    decode_artefact,
    encode_artefact,
)
from .manifest import _utcnow
from .scraper import utc_today
from .store import LEASES_DIR, QUARANTINE_DIR, STAGING_DIR, DatasetStore

LEASE_VERSION = 1
LEASE_SUFFIX = ".lease.json"

#: exit code a :class:`WorkerCrashSchedule` kill uses (distinct from
#: the store-level CrashSchedule's 86, so chaos tests can tell a
#: worker kill from a write-boundary kill).
WORKER_CRASH_EXIT = 87

#: environment variable carrying a serialized WorkerCrashSchedule into
#: worker subprocesses.
CRASH_PLAN_ENV = "REPRO_DISPATCH_CRASH_PLAN"

#: exit code of a worker that parked because the shared store became
#: unusable (ENOSPC / persistent EIO) — resumable once storage heals,
#: and distinct from a crash so the coordinator does not restart it
#: into the same full disk.
WORKER_STORAGE_EXIT = 2

#: prefix of the single JSON report line a worker prints on exit.
WORKER_REPORT_PREFIX = "REPRO-WORKER-REPORT "

#: unit terminal states as the coordinator sees them.
UNIT_COMPLETE = "complete"      # snapshot published in the main tree
UNIT_PENDING = "pending"        # claimable (or currently leased)
UNIT_ABANDONED = "abandoned"    # claim budget exhausted, no snapshot

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    leases=reg.counter(
        "repro_dispatch_leases_total",
        "Lease events across dispatch workers "
        "(claimed / stolen / renewed / released)", ("event",)),
    zombies=reg.counter(
        "repro_dispatch_zombie_writes_total",
        "Staged shard outputs quarantined because the writer's "
        "lease was lost — fencing denials, never merged").labels(),
    restarts=reg.counter(
        "repro_dispatch_worker_restarts_total",
        "Worker processes restarted after an unexpected exit").labels(),
    units=reg.counter(
        "repro_dispatch_units_total",
        "Dispatch work units, by terminal status", ("status",)),
    retries=reg.counter(
        "repro_dispatch_unit_retries_total",
        "Unit claims beyond each unit's first — retries after a "
        "park, an expiry, or a steal").labels(),
    workers=reg.gauge(
        "repro_dispatch_workers_alive",
        "Dispatch worker processes currently alive").labels(),
    ambiguity=reg.counter(
        "repro_dispatch_lease_ambiguity_resolved_total",
        "Ambiguous lease link() results resolved by post-checking "
        "ownership — NFS retransmit hazards recovered, not lost"
    ).labels(),
    skew=reg.counter(
        "repro_dispatch_clock_skew_observed_total",
        "Lease expiry judgements that found a holder's renewed_at "
        "future-dated beyond the skew budget and fell back to "
        "monotonic observation").labels(),
    parked_workers=reg.counter(
        "repro_dispatch_workers_parked_total",
        "Workers that parked (exit 2) because the shared store "
        "became unusable — ENOSPC or persistent I/O errors").labels(),
))


# -- work units ----------------------------------------------------------

@dataclass(frozen=True)
class WorkUnit:
    """One (IXP, family, day) shard of a campaign."""

    ixp: str
    family: int
    date: str
    dialect: str = "alice"

    @property
    def key(self) -> str:
        """Filesystem-safe unit name (lease dir / staging dir stem)."""
        return f"{self.ixp}__v{self.family}__{self.date}"

    def to_dict(self) -> Dict[str, Any]:
        return {"ixp": self.ixp, "family": self.family,
                "date": self.date, "dialect": self.dialect}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WorkUnit":
        return cls(ixp=str(payload["ixp"]), family=int(payload["family"]),
                   date=str(payload["date"]),
                   dialect=str(payload.get("dialect", "alice")))


# -- leases --------------------------------------------------------------

@dataclass
class Lease:
    """One unit's current claim, as read from (or written to) disk."""

    unit: str
    owner: str
    token: int
    acquired_at: float
    renewed_at: float
    ttl: float
    released: bool = False
    #: host identity of the holder — ``hostname:pid:boot-nonce`` (see
    #: :func:`repro.io.faultfs.host_identity`). Worker *names* repeat
    #: across coordinators ("w0" on host A and host B); the host
    #: string is what makes ownership checks unique across machines
    #: and across pid reuse. Empty for pre-multi-host lease files.
    host: str = ""
    #: transient — this claim displaced an expired, unreleased holder.
    stolen: bool = False
    #: transient — the on-disk lease failed verification (treated as
    #: expired; fencing keeps the damaged holder's writes out).
    damaged: bool = False

    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": LEASE_VERSION,
            "unit": self.unit,
            "owner": self.owner,
            "token": self.token,
            "acquired_at": self.acquired_at,
            "renewed_at": self.renewed_at,
            "ttl": self.ttl,
            "released": self.released,
            "host": self.host,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Lease":
        return cls(
            unit=str(payload["unit"]),
            owner=str(payload["owner"]),
            token=int(payload["token"]),
            acquired_at=float(payload.get("acquired_at", 0.0)),
            renewed_at=float(payload["renewed_at"]),
            ttl=float(payload["ttl"]),
            released=bool(payload.get("released", False)),
            host=str(payload.get("host", "")),
        )

    def same_holder(self, owner: str, host: str) -> bool:
        """True when this lease belongs to (*owner*, *host*). Leases
        written before host identities existed (empty ``host``) match
        on owner alone — the single-host behaviour."""
        if self.owner != owner:
            return False
        if not self.host or not host:
            return True
        return self.host == host


class LeaseManager:
    """Lease files for one store: claim → renew → release/expire.

    Claims are atomic-exclusive (``os.link`` of a complete temp file
    onto the token-numbered path); the token is the fencing token.
    The injectable ``clock`` must be a *shared* clock (wall time) —
    expiry decisions cross process boundaries. See the module
    docstring for why that is safe.
    """

    def __init__(self, root: os.PathLike, ttl: float,
                 clock: Callable[[], float] = time.time,
                 crash: Optional[Callable[[str], None]] = None,
                 max_claims: int = 25, host: str = "",
                 skew_budget: float = 0.0,
                 mono: Callable[[], float] = time.monotonic) -> None:
        self.root = Path(root)
        self.ttl = ttl
        self.clock = clock
        self.crash = crash or (lambda label: None)
        self.max_claims = max_claims
        #: this manager's host identity string — written into every
        #: lease it claims and compared on renew/release/commit.
        self.host = host
        #: how far another host's wall clock may run *ahead* of ours
        #: before we stop trusting its renewed_at stamps (seconds).
        self.skew_budget = skew_budget
        self.mono = mono
        #: ambiguous link() results resolved as our own successful claim.
        self.ambiguity_resolved = 0
        #: expiry judgements that found renewed_at future-dated beyond
        #: the budget and fell back to monotonic observation.
        self.skew_observations = 0
        self._counter = 0
        #: (unit, token) → (renewed_at seen, mono() when first seen) —
        #: the monotonic-observation ledger for skewed holders.
        self._skewed: Dict[Any, Any] = {}

    def _unit_dir(self, unit_key: str) -> Path:
        return self.root / LEASES_DIR / unit_key

    def _lease_path(self, unit_key: str, token: int) -> Path:
        return self._unit_dir(unit_key) / f"{token:06d}{LEASE_SUFFIX}"

    def _read_lease_at(self, unit_key: str,
                       token: int) -> Optional[Lease]:
        """Read one specific token's lease file; None when missing or
        undecodable."""
        path = self._lease_path(unit_key, token)
        try:
            data = with_fs_retries(
                lambda: active_fs().read_bytes(path),
                label="lease:read")
            payload, _digest, _self = decode_artefact(
                data, kind="lease", gz=False, path=path)
            return Lease.from_payload(payload)
        except (OSError, StorageUnavailable, IntegrityError,
                KeyError, TypeError, ValueError):
            return None

    def current(self, unit_key: str) -> Optional[Lease]:
        """The highest-token lease of a unit, or None. A lease file
        that fails verification comes back with ``damaged=True`` (it
        counts as expired — see :meth:`expired`)."""
        directory = self._unit_dir(unit_key)
        try:
            names = active_fs().listdir(directory)
        except FileNotFoundError:
            return None
        except OSError:
            names = sorted(p.name for p in directory.glob("*")) \
                if directory.is_dir() else []
        latest: Optional[Path] = None
        token = 0
        for name in names:
            if not name.endswith(LEASE_SUFFIX):
                continue
            try:
                candidate = int(name[:-len(LEASE_SUFFIX)])
            except ValueError:
                continue
            if candidate > token:
                token, latest = candidate, directory / name
        if latest is None:
            return None
        try:
            data = with_fs_retries(
                lambda: active_fs().read_bytes(latest),
                label="lease:read")
            payload, _digest, _self = decode_artefact(
                data, kind="lease", gz=False, path=latest)
            lease = Lease.from_payload(payload)
        except (IntegrityError, KeyError, TypeError, ValueError,
                FileNotFoundError):
            # undecodable or vanished-from-view: treat as a damaged
            # holder — expired for liveness, fenced out for safety.
            return Lease(unit=unit_key, owner="", token=token,
                         acquired_at=0.0, renewed_at=0.0, ttl=self.ttl,
                         damaged=True)
        if lease.token != token:
            lease = replace(lease, token=token)
        return lease

    def expired(self, lease: Lease) -> bool:
        """Liveness judgement only — safety comes from the token.

        Hybrid wall/monotonic discipline: expiry is primarily a wall
        clock comparison with an explicit ``skew_budget`` of grace.
        When a holder's ``renewed_at`` is *future-dated* beyond the
        budget (its wall clock runs ahead of ours), its stamps are
        meaningless to us — instead of believing them we observe the
        lease with our own monotonic clock and declare it expired only
        after a full TTL passes without ``renewed_at`` changing. Skew
        can therefore delay a steal, never corrupt data.
        """
        if lease.damaged:
            return True
        if lease.released:
            return False
        elapsed = self.clock() - lease.renewed_at
        if elapsed > lease.ttl + self.skew_budget:
            return True
        if elapsed < -self.skew_budget:
            self.skew_observations += 1
            key = (lease.unit, lease.token)
            seen = self._skewed.get(key)
            if seen is None or seen[0] != lease.renewed_at:
                # first sighting of this stamp: start the stopwatch.
                self._skewed[key] = (lease.renewed_at, self.mono())
                return False
            return self.mono() - seen[1] > lease.ttl
        return False

    def claimable(self, unit_key: str) -> bool:
        current = self.current(unit_key)
        if current is None:
            return True
        if current.token >= self.max_claims:
            return False
        return current.released or self.expired(current)

    def abandoned(self, unit_key: str) -> bool:
        """The claim budget is exhausted and the last holder is gone —
        no worker may ever claim this unit again."""
        current = self.current(unit_key)
        return (current is not None
                and current.token >= self.max_claims
                and (current.released or self.expired(current)))

    def claims(self, unit_key: str) -> int:
        current = self.current(unit_key)
        return current.token if current is not None else 0

    def claim(self, unit_key: str, owner: str) -> Optional[Lease]:
        """Try to claim a unit; None on contention, an active holder,
        or an exhausted claim budget.

        An ambiguous ``link()`` (the NFS retransmit hazard: the link
        was created on the server but an error came back) is resolved
        by *post-checking ownership*: when the retry sees ``EEXIST``,
        the lease file at that token is read back — if it names this
        (owner, host), the earlier attempt succeeded and the claim is
        ours; only a different holder's name means we lost.
        """
        current = self.current(unit_key)
        if current is not None and not current.released \
                and not self.expired(current):
            return None
        token = 1 if current is None else current.token + 1
        if token > self.max_claims:
            return None
        now = self.clock()
        lease = Lease(unit=unit_key, owner=owner, token=token,
                      acquired_at=now, renewed_at=now, ttl=self.ttl,
                      host=self.host)
        data, _digest = encode_artefact(lease.to_payload(), "lease",
                                        gz=False)
        directory = self._unit_dir(unit_key)
        directory.mkdir(parents=True, exist_ok=True)
        self._counter += 1
        temporary = directory / (
            f".{token:06d}.{os.getpid()}.{self._counter}.tmp")
        path = self._lease_path(unit_key, token)
        fs = active_fs()
        self.crash("lease-claim:begin")
        try:
            with_fs_retries(lambda: fs.write_bytes(temporary, data),
                            label="lease:write")
            self.crash("lease-claim:temp")
            try:
                with_fs_retries(lambda: fs.link(temporary, path),
                                label="lease:link")
            except FileExistsError:
                claimed = self._read_lease_at(unit_key, token)
                if claimed is not None \
                        and claimed.same_holder(owner, self.host):
                    # our ambiguously-failed link actually succeeded
                    self.ambiguity_resolved += 1
                    self.crash("lease-claim:linked")
                    lease.stolen = (current is not None
                                    and not current.released
                                    and not current.damaged)
                    return lease
                return None  # a racing claimant linked token first
        finally:
            try:
                temporary.unlink()
            except OSError:
                pass
        self.crash("lease-claim:linked")
        lease.stolen = (current is not None and not current.released
                        and not current.damaged)
        return lease

    def renew(self, lease: Lease) -> bool:
        """Refresh the holder's deadline; False when the lease was
        lost (stolen or superseded) — the holder must stop working."""
        current = self.current(lease.unit)
        if (current is None or current.token != lease.token
                or not current.same_holder(lease.owner, lease.host)
                or current.released):
            return False
        lease.renewed_at = self.clock()
        data, _digest = encode_artefact(lease.to_payload(), "lease",
                                        gz=False)
        atomic_write(self._lease_path(lease.unit, lease.token), data,
                     kind="lease", crash=self.crash)
        return True

    def release(self, lease: Lease) -> bool:
        """Mark the lease released (the unit is immediately claimable
        without waiting out the TTL); False when already lost."""
        current = self.current(lease.unit)
        if (current is None or current.token != lease.token
                or not current.same_holder(lease.owner, lease.host)):
            return False
        lease.released = True
        data, _digest = encode_artefact(lease.to_payload(), "lease",
                                        gz=False)
        atomic_write(self._lease_path(lease.unit, lease.token), data,
                     kind="lease", crash=self.crash)
        return True


# -- worker fault injection ----------------------------------------------

@dataclass
class WorkerCrashSchedule:
    """Deterministic worker-kill plan, mirroring ``FaultSchedule`` /
    ``CrashSchedule``.

    Maps a worker index to one boundary spec
    ``{"label": ..., "occurrence": ...}``; the worker hydrates its
    spec into a :class:`CrashSchedule` in ``exit`` mode (``os._exit``
    — no ``finally``, no ``atexit``, exactly a kill -9) and threads it
    through every boundary it crosses: staging-store writes
    (``checkpoint:temp`` …), lease writes (``lease:temp``,
    ``lease-claim:temp`` …), and the explicit unit boundaries
    ``unit:claimed`` / ``unit:collected``. Serialises through the
    :data:`CRASH_PLAN_ENV` environment variable, so subprocess workers
    crash exactly where the test says.
    """

    plans: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    exit_code: int = WORKER_CRASH_EXIT

    def kill(self, worker_index: int, label: str,
             occurrence: int = 1) -> "WorkerCrashSchedule":
        self.plans[worker_index] = {"label": label,
                                    "occurrence": occurrence}
        return self

    def for_worker(self, worker_index: int) -> Optional[CrashSchedule]:
        plan = self.plans.get(worker_index)
        if plan is None:
            return None
        return CrashSchedule(label=str(plan["label"]),
                             occurrence=int(plan.get("occurrence", 1)),
                             action="exit", exit_code=self.exit_code)

    def to_json(self) -> str:
        return json.dumps({"plans": {str(index): plan for index, plan
                                     in self.plans.items()},
                           "exit_code": self.exit_code})

    @classmethod
    def from_json(cls, raw: str) -> "WorkerCrashSchedule":
        payload = json.loads(raw)
        return cls(plans={int(index): dict(plan) for index, plan
                          in payload.get("plans", {}).items()},
                   exit_code=int(payload.get("exit_code",
                                             WORKER_CRASH_EXIT)))


# -- configuration -------------------------------------------------------

@dataclass
class DispatchConfig:
    """Knobs of one distributed campaign."""

    base_url: str
    units: Sequence[WorkUnit]
    #: worker processes to spawn.
    workers: int = 2
    #: lease TTL, seconds; an unrenewed lease older than this is
    #: stealable. Must comfortably exceed the heartbeat interval.
    lease_ttl: float = 15.0
    #: heartbeat renewal cadence (None = ttl / 3).
    heartbeat_interval: Optional[float] = None
    #: claim budget per unit: a unit claimed this many times without a
    #: published snapshot is abandoned (reported failed, never spun on).
    max_unit_claims: int = 25
    #: worker processes the coordinator may restart after unexpected
    #: exits (None = same as ``workers``).
    worker_restarts: Optional[int] = None
    #: full-jitter backoff for idle workers finding nothing claimable.
    steal_backoff_base: float = 0.05
    steal_backoff_cap: float = 1.0
    #: coordinator monitor cadence, seconds.
    poll_interval: float = 0.05
    #: seconds the coordinator waits for workers to drain on shutdown.
    worker_grace: float = 60.0
    #: run a final fsck audit over the merged store.
    verify: bool = True
    #: per-worker campaign knobs (see CampaignConfig).
    peer_attempts: int = 2
    snapshot_deadline: Optional[float] = None
    checkpoint_every: int = 1
    fetch_workers: int = 1
    #: per-peer fetch engine inside each worker (``--io``): "threads"
    #: fans peers over ``fetch_workers`` pool threads, "async" fans
    #: route *pages* over one selectors loop per mount.
    io: str = "threads"
    #: concurrent page-fetch bound of the async engine
    #: (``--max-inflight``); ignored under ``io="threads"``.
    max_inflight: int = 32
    breaker_threshold: int = 3
    breaker_reset: float = 5.0
    max_retries: int = 3
    request_timeout: float = 30.0
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: payload codec for snapshots written by workers
    #: (``--snapshot-format``): "json" or "columnar". Reads always
    #: dispatch on the stored payload, so mixed stores stay valid.
    snapshot_codec: str = "json"
    #: host identity override (``--host-id``). None = hostname. The
    #: full identity written into leases is ``<host>:<pid>:<nonce>``.
    host_id: Optional[str] = None
    #: seconds another host's wall clock may run ahead of ours before
    #: its lease renewal stamps are distrusted (``--clock-skew-budget``;
    #: see LeaseManager.expired).
    clock_skew_budget: float = 0.0
    #: serialised FsFaultPlan dict shipped to worker subprocesses via
    #: the environment (chaos harness only — never set in production).
    fs_fault_plan: Optional[Dict[str, Any]] = None
    #: chaos-harness worker-kill plan (never set in production).
    crash_plan: Optional[WorkerCrashSchedule] = None

    def resolved_heartbeat(self) -> float:
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return max(self.lease_ttl / 3.0, 0.01)

    def resolved_restarts(self) -> int:
        if self.worker_restarts is not None:
            return self.worker_restarts
        return max(1, self.workers)

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "base_url": self.base_url,
            "units": [unit.to_dict() for unit in self.units],
        }
        for name in ("workers", "lease_ttl", "heartbeat_interval",
                     "max_unit_claims", "worker_restarts",
                     "steal_backoff_base", "steal_backoff_cap",
                     "poll_interval", "worker_grace", "verify",
                     "peer_attempts", "snapshot_deadline",
                     "checkpoint_every", "fetch_workers",
                     "io", "max_inflight",
                     "breaker_threshold", "breaker_reset",
                     "max_retries", "request_timeout",
                     "backoff_base", "backoff_cap", "snapshot_codec",
                     "host_id", "clock_skew_budget", "fs_fault_plan"):
            payload[name] = getattr(self, name)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DispatchConfig":
        kwargs = dict(payload)
        kwargs["units"] = [WorkUnit.from_dict(unit)
                           for unit in kwargs.get("units", [])]
        return cls(**kwargs)


# -- worker --------------------------------------------------------------

class _Heartbeat(threading.Thread):
    """Renews one lease on a cadence; fires ``on_lost`` (and stops)
    the moment a renewal discovers the lease is gone."""

    def __init__(self, leases: LeaseManager, lease: Lease,
                 interval: float, on_lost: Callable[[], None]) -> None:
        super().__init__(name=f"heartbeat-{lease.unit}", daemon=True)
        self.leases = leases
        self.lease = lease
        self.interval = interval
        self.on_lost = on_lost
        self.renewals = 0
        self._stopped = threading.Event()

    def run(self) -> None:
        while not self._stopped.wait(self.interval):
            try:
                alive = self.leases.renew(self.lease)
            except OSError:
                alive = False  # cannot prove ownership → assume lost
            if not alive:
                self.on_lost()
                return
            self.renewals += 1

    def stop(self) -> None:
        self._stopped.set()
        self.join(timeout=10.0)


#: counters a worker accumulates and reports to the coordinator.
_WORKER_STAT_KEYS = (
    "leases_claimed", "leases_stolen", "leases_renewed",
    "leases_released", "leases_lost", "claim_contention",
    "units_completed", "units_parked", "checkpoints_adopted",
    "zombie_quarantines", "lease_ambiguity_resolved",
    "clock_skew_observed", "storage_parked",
)


class DispatchWorker:
    """One dispatch worker: claim → collect (staged) → commit, in a
    work-stealing loop until every unit is resolved.

    Runs as a subprocess in production (:func:`worker_main`); tests
    drive it in-process with an injected clock/sleep to exercise the
    lease and fencing paths deterministically.
    """

    def __init__(self, store_root: os.PathLike, config: DispatchConfig,
                 worker_index: int, owner: Optional[str] = None,
                 crash: Optional[CrashSchedule] = None,
                 clock: Callable[[], float] = time.time,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.store = DatasetStore(store_root)
        self.config = config
        self.worker_index = worker_index
        self.owner = owner or f"w{worker_index}-{os.getpid()}"
        #: full host identity string written into this worker's leases
        #: — survives pid reuse across machines (boot nonce).
        self.host = str(host_identity(config.host_id))
        self.crash = crash
        self.clock = clock
        self.sleep = sleep
        self.leases = LeaseManager(
            self.store.root, ttl=config.lease_ttl, clock=clock,
            crash=crash.check if crash is not None else None,
            max_claims=config.max_unit_claims, host=self.host,
            skew_budget=config.clock_skew_budget)
        self.stats: Dict[str, int] = {key: 0 for key in _WORKER_STAT_KEYS}
        #: set when the shared store became unusable and the worker
        #: parked — worker_main turns it into exit 2.
        self.storage_parked = False
        self._rng = random.Random(self.owner)

    # -- unit bookkeeping -------------------------------------------------

    def _resolved(self, unit: WorkUnit) -> bool:
        return (self.store.has_snapshot(unit.ixp, unit.family, unit.date)
                or self.leases.abandoned(unit.key))

    def _pending_units(self) -> List[WorkUnit]:
        return [unit for unit in self.config.units
                if not self._resolved(unit)]

    def _staging_root(self, unit: WorkUnit, token: int) -> Path:
        return self.store.root / STAGING_DIR / f"{unit.key}.t{token}"

    # -- main loop --------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Work until every unit is resolved; returns the worker
        report the coordinator aggregates.

        A :class:`~repro.io.faultfs.StorageUnavailable` (full disk,
        persistent I/O errors) parks the worker instead of spinning:
        the loop stops, ``storage_parked`` is set, and
        :func:`worker_main` exits 2 — resumable once storage heals.
        """
        backoff = FullJitterBackoff(
            base=self.config.steal_backoff_base,
            cap=self.config.steal_backoff_cap,
            rng=self._rng, sleep=self.sleep)
        try:
            while True:
                pending = self._pending_units()
                if not pending:
                    break
                progress = False
                offset = self.worker_index % len(pending)
                for unit in pending[offset:] + pending[:offset]:
                    if self._resolved(unit):
                        continue
                    lease = self.leases.claim(unit.key, self.owner)
                    if lease is None:
                        self.stats["claim_contention"] += 1
                        continue
                    self.stats["leases_claimed"] += 1
                    if lease.stolen:
                        self.stats["leases_stolen"] += 1
                    progress = True
                    backoff.reset()
                    self._work_unit(unit, lease)
                if not progress:
                    # full-jitter backoff, the client's discipline
                    # against thundering-herd rescans of a fully
                    # leased unit list.
                    backoff.pause()
        except StorageUnavailable:
            self.stats["storage_parked"] += 1
            self.storage_parked = True
        return self.report()

    def report(self) -> Dict[str, Any]:
        self.stats["lease_ambiguity_resolved"] = \
            self.leases.ambiguity_resolved
        self.stats["clock_skew_observed"] = self.leases.skew_observations
        payload = {"owner": self.owner, "host": self.host,
                   "worker_index": self.worker_index,
                   "stats": dict(self.stats)}
        fault_counts = getattr(active_fs(), "fault_counts", None)
        if fault_counts:
            payload["fs_faults"] = dict(fault_counts)
        return payload

    # -- one unit ---------------------------------------------------------

    def _campaign_config(self, unit: WorkUnit) -> CampaignConfig:
        config = self.config
        return CampaignConfig(
            base_url=config.base_url,
            targets=[CampaignTarget(ixp=unit.ixp, family=unit.family,
                                    dialect=unit.dialect)],
            captured_on=unit.date,
            peer_attempts=config.peer_attempts,
            snapshot_deadline=config.snapshot_deadline,
            checkpoint_every=config.checkpoint_every,
            workers=config.fetch_workers,
            io=config.io,
            max_inflight=config.max_inflight,
            breaker_threshold=config.breaker_threshold,
            breaker_reset=config.breaker_reset,
            max_retries=config.max_retries,
            request_timeout=config.request_timeout,
            backoff_base=config.backoff_base,
            backoff_cap=config.backoff_cap,
        )

    def _work_unit(self, unit: WorkUnit, lease: Lease) -> None:
        if self.crash is not None:
            self.crash.check("unit:claimed")
        staging_store = DatasetStore(
            self._staging_root(unit, lease.token),
            crash_schedule=self.crash,
            snapshot_codec=self.config.snapshot_codec)
        self._adopt_checkpoint(unit, lease, staging_store)

        campaign = CollectionCampaign(staging_store,
                                      self._campaign_config(unit))
        lost = threading.Event()

        def on_lost() -> None:
            # the lease is gone: park at the next safe boundary; the
            # commit fence below keeps whatever we staged out of the
            # merged tree.
            lost.set()
            campaign.request_shutdown()

        heartbeat = _Heartbeat(self.leases, lease,
                               self.config.resolved_heartbeat(), on_lost)
        heartbeat.start()
        try:
            report = campaign.run(resume=True)
        finally:
            heartbeat.stop()
        self.stats["leases_renewed"] += heartbeat.renewals

        target = report.targets[0] if report.targets else None
        collected = (target is not None
                     and target.status in (STATUS_COMPLETE,
                                           STATUS_DEGRADED)
                     and staging_store.has_snapshot(
                         unit.ixp, unit.family, unit.date))
        if collected:
            if self.crash is not None:
                self.crash.check("unit:collected")
            self.commit(unit, lease, staging_store)
        else:
            # parked (deadline / lost lease / LG failure): the staging
            # checkpoint stays for the next claimant to adopt.
            self.stats["units_parked"] += 1
            if lost.is_set():
                self.stats["leases_lost"] += 1
            elif self.leases.release(lease):
                self.stats["leases_released"] += 1

    def _adopt_checkpoint(self, unit: WorkUnit, lease: Lease,
                          staging_store: DatasetStore) -> bool:
        """Carry a dead predecessor's progress forward: the newest
        verified checkpoint among lower-token staging dirs seeds this
        claim's store, so re-collection resumes at the first
        un-collected peer instead of from scratch."""
        for token in range(lease.token - 1, 0, -1):
            old_root = self._staging_root(unit, token)
            if not old_root.is_dir():
                continue
            payload = DatasetStore(old_root).load_checkpoint(
                unit.ixp, unit.family, unit.date)
            if payload:
                staging_store.save_checkpoint(
                    unit.ixp, unit.family, unit.date, payload)
                self.stats["checkpoints_adopted"] += 1
                return True
        return False

    # -- commit (the fencing check) ---------------------------------------

    def commit(self, unit: WorkUnit, lease: Lease,
               staging_store: DatasetStore) -> bool:
        """Merge a staged shard into the main tree — only if this
        worker still holds the unit's current lease.

        The check-and-publish is belt and braces: the token check
        catches a zombie whose lease was stolen, and the publish
        itself is create-exclusive, so even a zombie that races past
        the check cannot clobber a committed snapshot. A denied commit
        moves the whole staging store to ``quarantine/zombie/`` with a
        sidecar record — late writes are quarantined, never merged.
        """
        current = self.leases.current(unit.key)
        if (current is None or current.token != lease.token
                or not current.same_holder(self.owner, self.host)
                or current.released):
            self._quarantine_zombie(unit, lease, staging_store,
                                    "lease lost before commit "
                                    "(fencing token mismatch)")
            return False
        source = staging_store._snapshot_path(unit.ixp, unit.family,
                                              unit.date)
        try:
            published = self.store.publish_snapshot_file(
                unit.ixp, unit.family, unit.date, source)
        except IntegrityError:
            # the staged bytes are damaged — never merge them
            self._quarantine_zombie(unit, lease, staging_store,
                                    "staged snapshot failed "
                                    "verification")
            return False
        if published is None:
            self._quarantine_zombie(unit, lease, staging_store,
                                    "unit already published by "
                                    "another worker")
            return False
        if self.leases.release(lease):
            self.stats["leases_released"] += 1
        self.stats["units_completed"] += 1
        self._cleanup_staging(unit, up_to_token=lease.token)
        return True

    def _quarantine_zombie(self, unit: WorkUnit, lease: Lease,
                           staging_store: DatasetStore,
                           reason: str) -> None:
        self.stats["zombie_quarantines"] += 1
        source = Path(staging_store.root)
        destination = (self.store.root / QUARANTINE_DIR / "zombie"
                       / source.name)
        suffix = 0
        final = destination
        while final.exists():
            suffix += 1
            final = destination.with_name(f"{destination.name}.{suffix}")
        final.parent.mkdir(parents=True, exist_ok=True)
        if source.is_dir():
            os.replace(source, final)
        record = {
            "version": 1,
            "unit": unit.key,
            "owner": self.owner,
            "host": self.host,
            "token": lease.token,
            "reason": reason,
            "moved_to": final.relative_to(self.store.root).as_posix(),
            "quarantined_at": _utcnow(),
        }
        atomic_write(
            final.parent / (final.name + ".zombie.json"),
            (json.dumps(record, indent=1, sort_keys=True)
             + "\n").encode("utf-8"),
            kind="zombie")

    def _cleanup_staging(self, unit: WorkUnit,
                         up_to_token: int) -> None:
        """Drop staging dirs this commit superseded (their content was
        merged or re-collected; damaged artefacts inside were already
        quarantined by their own stores)."""
        for token in range(1, up_to_token + 1):
            root = self._staging_root(unit, token)
            if root.is_dir():
                shutil.rmtree(root, ignore_errors=True)


# -- worker subprocess entry ---------------------------------------------

def worker_main(argv: Sequence[str]) -> int:
    """``python -m repro.collector.dispatch <spec-json>`` — the worker
    subprocess entry. The spec carries the store root, the worker's
    index/owner id, and the full DispatchConfig; a crash plan (chaos
    harness only) arrives through :data:`CRASH_PLAN_ENV`."""
    spec = json.loads(argv[0])
    config = DispatchConfig.from_dict(spec["config"])
    worker_index = int(spec["worker_index"])
    crash: Optional[CrashSchedule] = None
    raw_plan = os.environ.get(CRASH_PLAN_ENV)
    if raw_plan:
        crash = WorkerCrashSchedule.from_json(raw_plan).for_worker(
            worker_index)
    # chaos harness: a seeded filesystem fault plan shipped through the
    # environment turns this worker's store I/O adversarial.
    install_from_env()
    worker = DispatchWorker(spec["store"], config, worker_index,
                            owner=spec.get("owner"), crash=crash)
    report = worker.run()
    print(WORKER_REPORT_PREFIX + json.dumps(report), flush=True)
    return WORKER_STORAGE_EXIT if worker.storage_parked else 0


# -- coordinator ---------------------------------------------------------

@dataclass
class UnitOutcome:
    """Terminal view of one work unit after a dispatch run."""

    ixp: str
    family: int
    date: str
    status: str = UNIT_PENDING
    #: fencing tokens burned — claims across all workers and runs.
    claims: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"ixp": self.ixp, "family": self.family,
                "date": self.date, "status": self.status,
                "claims": self.claims}


@dataclass
class DispatchReport:
    """Outcome of one coordinator run."""

    units: List[UnitOutcome] = field(default_factory=list)
    workers_spawned: int = 0
    worker_restarts: int = 0
    worker_crashes: int = 0
    #: workers that exited 2 — parked on unusable storage, resumable.
    worker_parks: int = 0
    worker_reports: List[Dict[str, Any]] = field(default_factory=list)
    totals: Dict[str, int] = field(default_factory=dict)
    #: injected filesystem fault counts aggregated across workers
    #: (``op:kind`` → count; empty outside the chaos harness).
    fs_faults: Dict[str, int] = field(default_factory=dict)
    #: final fsck audit over the merged store (None = verify off).
    fsck_clean: Optional[bool] = None
    run_report_path: Optional[str] = None

    @property
    def complete(self) -> bool:
        return bool(self.units) and all(
            unit.status == UNIT_COMPLETE for unit in self.units)

    @property
    def resumable(self) -> bool:
        """Units remain claimable — re-run with ``--dispatch`` to
        converge (abandoned units are terminal, not resumable)."""
        return any(unit.status == UNIT_PENDING for unit in self.units)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "units": [unit.to_dict() for unit in self.units],
            "workers_spawned": self.workers_spawned,
            "worker_restarts": self.worker_restarts,
            "worker_crashes": self.worker_crashes,
            "worker_parks": self.worker_parks,
            "worker_reports": list(self.worker_reports),
            "totals": dict(self.totals),
            "fs_faults": dict(self.fs_faults),
            "complete": self.complete,
            "resumable": self.resumable,
            "fsck_clean": self.fsck_clean,
            "run_report_path": self.run_report_path,
        }

    def format_summary(self) -> str:
        by_status: Dict[str, int] = {}
        for unit in self.units:
            by_status[unit.status] = by_status.get(unit.status, 0) + 1
        headline = ("dispatch: "
                    + ", ".join(f"{count} {status}" for status, count
                                in sorted(by_status.items()))
                    + f" — {self.workers_spawned} workers"
                    + (f", {self.worker_restarts} restarted"
                       if self.worker_restarts else "")
                    + (f", {self.worker_crashes} crashed"
                       if self.worker_crashes else "")
                    + (f", {self.worker_parks} parked on storage"
                       if self.worker_parks else ""))
        lines = [headline]
        for unit in self.units:
            retried = (f" ({unit.claims} claims)"
                       if unit.claims > 1 else "")
            lines.append(f"  {unit.ixp}/v{unit.family}/{unit.date}: "
                         f"{unit.status}{retried}")
        interesting = {key: value for key, value in
                       sorted(self.totals.items()) if value}
        if interesting:
            lines.append("  workers: " + ", ".join(
                f"{value} {key}" for key, value in interesting.items()))
        if self.fsck_clean is not None:
            lines.append("  merged store fsck: "
                         + ("clean" if self.fsck_clean else "DAMAGED"))
        if self.resumable:
            lines.append("  incomplete units parked — re-run with "
                         "--dispatch to continue")
        return "\n".join(lines)


class _WorkerProc:
    """One spawned worker subprocess plus its collected output."""

    def __init__(self, index: int, process: subprocess.Popen) -> None:
        self.index = index
        self.process = process
        self.report: Optional[Dict[str, Any]] = None
        self.returncode: Optional[int] = None

    def collect(self, timeout: Optional[float] = None) -> None:
        stdout, _stderr = self.process.communicate(timeout=timeout)
        self.returncode = self.process.returncode
        for line in (stdout or "").splitlines():
            if line.startswith(WORKER_REPORT_PREFIX):
                try:
                    self.report = json.loads(
                        line[len(WORKER_REPORT_PREFIX):])
                except ValueError:
                    self.report = None


class DispatchCoordinator:
    """Spawns, monitors, restarts, and reaps dispatch workers.

    Every piece of campaign state lives in the store (leases, staging
    shards, published snapshots), so the coordinator itself is
    expendable: kill it at any instant and a re-run picks up exactly
    where the store says the campaign is. Dispatch is incremental by
    construction — units whose snapshot is already published are never
    re-collected (delete the snapshot to force one).
    """

    def __init__(self, store: DatasetStore,
                 config: DispatchConfig) -> None:
        self.store = store
        self.config = config
        self.leases = LeaseManager(store.root, ttl=config.lease_ttl,
                                   max_claims=config.max_unit_claims)

    # -- unit status ------------------------------------------------------

    def _unit_status(self, unit: WorkUnit) -> str:
        if self.store.has_snapshot(unit.ixp, unit.family, unit.date):
            return UNIT_COMPLETE
        if self.leases.abandoned(unit.key):
            return UNIT_ABANDONED
        return UNIT_PENDING

    def _all_resolved(self) -> bool:
        return all(self._unit_status(unit) != UNIT_PENDING
                   for unit in self.config.units)

    # -- worker lifecycle -------------------------------------------------

    def _spawn(self, index: int) -> _WorkerProc:
        spec = {
            "store": str(self.store.root),
            "worker_index": index,
            "owner": f"w{index}",
            "config": self.config.to_dict(),
        }
        env = dict(os.environ)
        # the worker must import this exact source tree, however the
        # coordinator itself was launched.
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src)
        if self.config.crash_plan is not None:
            env[CRASH_PLAN_ENV] = self.config.crash_plan.to_json()
        if self.config.fs_fault_plan is not None:
            env[FAULT_PLAN_ENV] = json.dumps(self.config.fs_fault_plan,
                                             sort_keys=True)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.collector.dispatch",
             json.dumps(spec)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        _METRICS().workers.inc()
        return _WorkerProc(index, process)

    # -- the run ----------------------------------------------------------

    def run(self) -> DispatchReport:
        report = DispatchReport()
        metrics = _METRICS()
        # materialise every family so /metrics and run reports expose
        # zeroes rather than omitting quiet series.
        metrics.restarts.inc(0)
        metrics.zombies.inc(0)
        metrics.retries.inc(0)
        metrics.ambiguity.inc(0)
        metrics.skew.inc(0)
        metrics.parked_workers.inc(0)
        for event in ("claimed", "stolen", "renewed", "released"):
            metrics.leases.labels(event).inc(0)

        claims_before = {unit.key: self.leases.claims(unit.key)
                         for unit in self.config.units}
        alive: Dict[int, _WorkerProc] = {}
        finished: List[_WorkerProc] = []
        restarts_left = self.config.resolved_restarts()
        next_index = self.config.workers
        with obs.span("dispatch"):
            try:
                for index in range(max(1, self.config.workers)):
                    alive[index] = self._spawn(index)
                    report.workers_spawned += 1
                while alive:
                    if self._all_resolved():
                        break
                    for index, worker in list(alive.items()):
                        if worker.process.poll() is None:
                            continue
                        worker.collect()
                        metrics.workers.dec()
                        finished.append(worker)
                        del alive[index]
                        if worker.returncode == WORKER_STORAGE_EXIT:
                            # parked on unusable storage: restarting
                            # into the same full disk helps no one.
                            report.worker_parks += 1
                            metrics.parked_workers.inc()
                        elif worker.returncode != 0:
                            report.worker_crashes += 1
                            if restarts_left > 0 \
                                    and not self._all_resolved():
                                restarts_left -= 1
                                report.worker_restarts += 1
                                metrics.restarts.inc()
                                alive[next_index] = self._spawn(
                                    next_index)
                                report.workers_spawned += 1
                                next_index += 1
                    if alive:
                        time.sleep(self.config.poll_interval)
            finally:
                self._drain(alive, finished, report, metrics)
        self._finalise(report, claims_before, metrics)
        return report

    def _drain(self, alive: Dict[int, _WorkerProc],
               finished: List[_WorkerProc], report: DispatchReport,
               metrics: Any) -> None:
        """Wait for the survivors (they exit on their own once every
        unit is resolved), escalating to terminate/kill on a stuck
        worker, then collect every report."""
        deadline = time.monotonic() + self.config.worker_grace
        for worker in alive.values():
            budget = max(0.1, deadline - time.monotonic())
            try:
                worker.collect(timeout=budget)
            except subprocess.TimeoutExpired:
                worker.process.terminate()
                try:
                    worker.collect(timeout=5.0)
                except subprocess.TimeoutExpired:
                    worker.process.kill()
                    worker.collect()
            metrics.workers.dec()
            finished.append(worker)
            if worker.returncode == WORKER_STORAGE_EXIT:
                report.worker_parks += 1
                metrics.parked_workers.inc()
            elif worker.returncode != 0:
                report.worker_crashes += 1
        alive.clear()
        totals: Dict[str, int] = {key: 0 for key in _WORKER_STAT_KEYS}
        fault_totals: Dict[str, int] = {}
        for worker in finished:
            if worker.report is None:
                continue
            report.worker_reports.append(worker.report)
            for key, value in worker.report.get("stats", {}).items():
                totals[key] = totals.get(key, 0) + int(value)
            for key, value in worker.report.get("fs_faults",
                                                {}).items():
                fault_totals[key] = fault_totals.get(key, 0) \
                    + int(value)
        report.totals = totals
        report.fs_faults = fault_totals
        metrics.leases.labels("claimed").inc(totals["leases_claimed"])
        metrics.leases.labels("stolen").inc(totals["leases_stolen"])
        metrics.leases.labels("renewed").inc(totals["leases_renewed"])
        metrics.leases.labels("released").inc(
            totals["leases_released"])
        metrics.zombies.inc(totals["zombie_quarantines"])
        metrics.ambiguity.inc(totals["lease_ambiguity_resolved"])
        metrics.skew.inc(totals["clock_skew_observed"])
        # injected filesystem faults observed by worker subprocesses
        # become visible in this process's /metrics exposition.
        record_fault_counts(fault_totals)

    def _finalise(self, report: DispatchReport,
                  claims_before: Dict[str, int], metrics: Any) -> None:
        for unit in self.config.units:
            outcome = UnitOutcome(ixp=unit.ixp, family=unit.family,
                                  date=unit.date,
                                  status=self._unit_status(unit),
                                  claims=self.leases.claims(unit.key))
            report.units.append(outcome)
            metrics.units.labels(outcome.status).inc()
            retries = max(0, outcome.claims
                          - max(1, claims_before[unit.key] + 1)) \
                if outcome.claims else 0
            if retries:
                metrics.retries.inc(retries)
            if outcome.status == UNIT_COMPLETE:
                self._cleanup_unit_staging(unit)
        if self.config.verify:
            report.fsck_clean = fsck_store(self.store).clean
        if obs.enabled():
            report.run_report_path = str(self.store.save_run_report(
                f"dispatch-{utc_today()}",
                obs.build_run_report("dispatch",
                                     meta=report.to_dict())))

    def _cleanup_unit_staging(self, unit: WorkUnit) -> None:
        """Drop staging debris of merged units (left by killed
        workers; quarantined zombies already moved out)."""
        staging = self.store.root / STAGING_DIR
        if not staging.is_dir():
            return
        for path in staging.glob(f"{unit.key}.t*"):
            if path.is_dir():
                shutil.rmtree(path, ignore_errors=True)


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(worker_main(sys.argv[1:]))
