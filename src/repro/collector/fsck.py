"""Store auditing and repair (``repro-study fsck``).

Walks every artefact in a :class:`~repro.collector.store.DatasetStore`
— snapshots, checkpoints, dictionaries, run reports, and the manifests
themselves — and verifies each one both ways: the file against its
embedded envelope digest, and the file against its manifest entry.

Findings are classified with the shared damage taxonomy
(:mod:`repro.collector.integrity`):

========================  ==============================================
class                     meaning
========================  ==============================================
``truncated``             gzip stream ends before its end marker
``malformed``             not gzip / corrupt deflate / invalid JSON
``checksum_mismatch``     a digest disagrees (gzip CRC, envelope,
                          or manifest vs a legacy file)
``schema_drift``          parseable but the wrong shape/kind/version
``missing_manifest_entry``  a healthy file the manifest does not know
``manifest_drift``        a self-consistent file whose manifest entry
                          is stale (e.g. crash between rename and
                          manifest publish)
``missing_file``          a manifest entry whose file is gone
``orphan_temp``           ``*.tmp`` debris from an interrupted write
========================  ==============================================

With ``repair=True`` damaged files are **quarantined, never deleted**,
stale/missing manifest records are rewritten from the surviving
verified files, and dangling entries are dropped. A second fsck over a
repaired store is clean.
"""

from __future__ import annotations

import shutil
import time
import types
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .. import obs
from .integrity import (
    DAMAGE_CHECKSUM,
    DAMAGE_CLASSES,
    DAMAGE_MANIFEST_DRIFT,
    DAMAGE_MISSING_ENTRY,
    DAMAGE_MISSING_FILE,
    DAMAGE_ORPHAN_TEMP,
    DAMAGE_ORPHANED,
    IntegrityError,
    decode_artefact,
    is_temp_artefact,
)
from .manifest import MANIFEST_NAME, Manifest, _utcnow
from .store import (
    AGGREGATE_SUFFIX,
    CHECKPOINT_SUFFIX,
    LEASES_DIR,
    QUARANTINE_DIR,
    REPORTS_DIR,
    STAGING_DIR,
    DatasetStore,
)

#: age (seconds) past which dispatch coordination state — lease dirs
#: and staging stores no live campaign can still be using — counts as
#: orphaned. A week dwarfs any sane lease TTL or campaign runtime, so
#: a freshly crashed (still resumable) run is never flagged.
DEFAULT_RECLAIM_AGE = 7 * 24 * 3600.0

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    runs=reg.counter(
        "repro_store_fsck_runs_total",
        "fsck passes, by outcome (clean / damaged)", ("outcome",)),
    findings=reg.counter(
        "repro_store_fsck_findings_total",
        "fsck findings, by damage class", ("class",)),
    artefacts=reg.counter(
        "repro_store_fsck_artefacts_total",
        "Artefacts examined by fsck, by verification outcome",
        ("outcome",)),
))

#: repair actions recorded on findings.
ACTION_QUARANTINED = "quarantined"
ACTION_MANIFEST_UPDATED = "manifest_updated"
ACTION_ENTRY_DROPPED = "entry_dropped"
ACTION_RECLAIMED = "reclaimed"


@dataclass
class FsckFinding:
    """One piece of damage found by an fsck pass."""

    path: str            # store-relative path
    kind: str            # snapshot / checkpoint / dictionary / ...
    damage_class: str
    detail: str
    #: what --repair did about it (None on audit-only passes).
    action: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "kind": self.kind,
                "class": self.damage_class, "detail": self.detail,
                "action": self.action}


@dataclass
class FsckReport:
    """Outcome of one fsck pass over a store."""

    root: str = ""
    repaired: bool = False
    scanned: int = 0       # artefact files examined
    verified: int = 0      # fully healthy (file + manifest agree)
    findings: List[FsckFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def counts(self) -> Dict[str, int]:
        counts = {cls: 0 for cls in DAMAGE_CLASSES}
        for finding in self.findings:
            counts[finding.damage_class] = \
                counts.get(finding.damage_class, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "repaired": self.repaired,
            "scanned": self.scanned,
            "verified": self.verified,
            "clean": self.clean,
            "counts": {cls: count for cls, count in self.counts.items()
                       if count},
            "findings": [f.to_dict() for f in self.findings],
        }

    def format_summary(self) -> str:
        verdict = "clean" if self.clean else "DAMAGED"
        lines = [f"fsck {self.root}: {verdict} — {self.scanned} "
                 f"artefacts scanned, {self.verified} verified, "
                 f"{len(self.findings)} findings"]
        for cls, count in sorted(self.counts.items()):
            if count:
                lines.append(f"  {cls}: {count}")
        for finding in self.findings:
            action = f" [{finding.action}]" if finding.action else ""
            lines.append(f"  {finding.damage_class}: {finding.path} "
                         f"({finding.detail}){action}")
        return "\n".join(lines)


def _classify_path(scope_name: str, path: Path) -> Optional[
        Tuple[str, bool]]:
    """``(kind, is_gzip)`` for an artefact path, or None for files
    fsck does not manage (quarantine sidecars live outside scopes)."""
    name = path.name
    if scope_name == REPORTS_DIR:
        return ("report", False) if name.endswith(".json") else None
    if name == "dictionary.json":
        return "dictionary", False
    if name.endswith(CHECKPOINT_SUFFIX):
        return "checkpoint", True
    if name.endswith(AGGREGATE_SUFFIX):
        # checked before the generic snapshot rule: cache artefacts
        # share the .json.gz extension but carry the aggregate kind.
        return "aggregate", True
    if name.endswith(".json.gz"):
        return "snapshot", True
    return None


def fsck_store(store: DatasetStore, repair: bool = False, *,
               reclaim_age: float = DEFAULT_RECLAIM_AGE,
               now: Optional[float] = None) -> FsckReport:
    """Audit (and with ``repair=True``, heal) every artefact in a
    store. Never deletes data: repair quarantines damaged files and
    rewrites manifests.

    The reserved dispatch directories are audited too: lease dirs and
    staging stores older than *reclaim_age* are reported as
    ``orphaned_dispatch`` and, with ``repair=True``, reclaimed — lease
    dirs (pure coordination state; with no lease at all a zombie's
    commit is denied by the ownership re-check) and merged staging
    dirs are removed, while staging dirs whose unit never published
    are moved to quarantine, never deleted.
    """
    report = FsckReport(root=str(store.root), repaired=repair)
    with obs.span("fsck"):
        scopes = [store.root / ixp for ixp in store.ixps()]
        if (store.root / REPORTS_DIR).is_dir():
            scopes.append(store.root / REPORTS_DIR)
        for scope in scopes:
            _fsck_scope(store, scope, report, repair)
        _fsck_dispatch_state(store, report, repair, reclaim_age,
                             time.time() if now is None else now)
    metrics = _METRICS()
    metrics.runs.labels("clean" if report.clean else "damaged").inc()
    for finding in report.findings:
        metrics.findings.labels(finding.damage_class).inc()
    return report


def _fsck_scope(store: DatasetStore, scope: Path, report: FsckReport,
                repair: bool) -> None:
    try:
        manifest = Manifest.load(scope, strict=True)
        manifest_healthy = True
    except IntegrityError as error:
        manifest = Manifest(scope)
        manifest_healthy = False
        finding = FsckFinding(
            path=(scope / MANIFEST_NAME).relative_to(
                store.root).as_posix(),
            kind="manifest", damage_class=error.damage_class,
            detail=str(error))
        if repair:
            store.quarantine(scope / MANIFEST_NAME, error)
            finding.action = ACTION_QUARANTINED
        report.findings.append(finding)
    manifest_dirty = not manifest_healthy and repair

    seen: Dict[str, Tuple[str, int, str]] = {}
    present: set = set()
    for path in sorted(p for p in scope.rglob("*") if p.is_file()):
        if path.name == MANIFEST_NAME:
            continue
        rel_store = path.relative_to(store.root).as_posix()
        rel_scope = path.relative_to(scope).as_posix()
        if is_temp_artefact(path):
            finding = FsckFinding(
                path=rel_store, kind="temp",
                damage_class=DAMAGE_ORPHAN_TEMP,
                detail="interrupted write left temp debris")
            if repair:
                error = IntegrityError(
                    "orphan temp file from an interrupted write", path)
                error.damage_class = DAMAGE_ORPHAN_TEMP
                store.quarantine(path, error)
                finding.action = ACTION_QUARANTINED
            report.findings.append(finding)
            continue
        classified = _classify_path(scope.name, path)
        if classified is None:
            continue  # not an artefact this store manages
        kind, gz = classified
        present.add(rel_scope)
        report.scanned += 1
        try:
            _payload, digest, self_verified = decode_artefact(
                path.read_bytes(), kind=kind, gz=gz, path=path)
        except IntegrityError as error:
            _METRICS().artefacts.labels("failed").inc()
            finding = FsckFinding(path=rel_store, kind=kind,
                                  damage_class=error.damage_class,
                                  detail=str(error))
            if repair:
                store.quarantine(path, error)
                finding.action = ACTION_QUARANTINED
                manifest.remove(rel_scope)
                manifest_dirty = True
            report.findings.append(finding)
            continue
        _METRICS().artefacts.labels("ok").inc()
        size = path.stat().st_size
        seen[rel_scope] = (digest, size, kind)

        entry = manifest.get(rel_scope)
        if entry is None:
            finding = FsckFinding(
                path=rel_store, kind=kind,
                damage_class=DAMAGE_MISSING_ENTRY,
                detail="verified file absent from the manifest")
            if repair:
                manifest.record(rel_scope, digest, size, kind)
                manifest_dirty = True
                finding.action = ACTION_MANIFEST_UPDATED
            report.findings.append(finding)
        elif entry.get("sha256") != digest:
            if self_verified:
                # the file vouches for itself; the ledger is stale
                # (classic crash between rename and manifest publish).
                finding = FsckFinding(
                    path=rel_store, kind=kind,
                    damage_class=DAMAGE_MANIFEST_DRIFT,
                    detail="self-consistent file, stale manifest entry")
                if repair:
                    manifest.record(rel_scope, digest, size, kind)
                    manifest_dirty = True
                    finding.action = ACTION_MANIFEST_UPDATED
                report.findings.append(finding)
            else:
                # a legacy file cannot vouch for itself and the
                # manifest disagrees: treat the bytes as damaged.
                error = IntegrityError(
                    "manifest digest disagrees with un-enveloped file",
                    path)
                error.damage_class = DAMAGE_CHECKSUM
                finding = FsckFinding(
                    path=rel_store, kind=kind,
                    damage_class=error.damage_class,
                    detail=str(error))
                if repair:
                    store.quarantine(path, error)
                    finding.action = ACTION_QUARANTINED
                    manifest.remove(rel_scope)
                    manifest_dirty = True
                report.findings.append(finding)
        else:
            report.verified += 1

    for rel_scope in sorted(set(manifest.entries) - present):
        entry = manifest.entries[rel_scope]
        finding = FsckFinding(
            path=(scope / rel_scope).relative_to(store.root).as_posix(),
            kind=str(entry.get("kind", "artefact")),
            damage_class=DAMAGE_MISSING_FILE,
            detail="manifest entry has no file on disk")
        if repair:
            manifest.remove(rel_scope)
            manifest_dirty = True
            finding.action = ACTION_ENTRY_DROPPED
        report.findings.append(finding)

    if repair and manifest_dirty:
        if not manifest_healthy:
            # rebuild from scratch out of the verified survivors
            manifest.entries = {}
            for rel_scope, (digest, size, kind) in seen.items():
                manifest.record(rel_scope, digest, size, kind)
        manifest.save()


# -- dispatch coordination state (leases/ + staging/) --------------------

def _lease_age(directory: Path, now: float) -> Optional[float]:
    """Age in seconds of a unit's lease dir, judged by its most recent
    sign of activity: the newest of any lease's ``renewed_at`` stamp
    and any lease file's mtime.  Taking the maximum keeps a lease held
    by a host whose wall clock runs behind (its ``renewed_at`` stamps
    look old, but its writes keep the mtime fresh) from being judged
    orphaned.  None for an empty/unreadable dir."""
    best: Optional[float] = None
    for path in directory.glob("*.lease.json"):
        stamps = []
        try:
            payload, _digest, _self = decode_artefact(
                path.read_bytes(), kind="lease", gz=False, path=path)
            stamps.append(float(payload["renewed_at"]))
        except (IntegrityError, OSError, KeyError, TypeError,
                ValueError):
            pass
        try:
            stamps.append(path.stat().st_mtime)
        except OSError:
            pass
        for stamp in stamps:
            if best is None or stamp > best:
                best = stamp
    if best is None:
        return None
    return now - best


def _newest_mtime(directory: Path) -> Optional[float]:
    try:
        newest = directory.stat().st_mtime
    except OSError:
        return None
    for path in directory.rglob("*"):
        try:
            newest = max(newest, path.stat().st_mtime)
        except OSError:
            continue
    return newest


def _staging_unit_published(store: DatasetStore, name: str) -> bool:
    """Whether the unit behind a staging dir name
    (``<ixp>__v<family>__<date>.t<token>``) has a published snapshot."""
    stem, _sep, _token = name.rpartition(".t")
    parts = stem.split("__")
    if len(parts) != 3 or not parts[1].startswith("v"):
        return False
    try:
        family = int(parts[1][1:])
    except ValueError:
        return False
    try:
        return store.has_snapshot(parts[0], family, parts[2])
    except ValueError:
        return False


def _fsck_dispatch_state(store: DatasetStore, report: FsckReport,
                         repair: bool, reclaim_age: float,
                         now: float) -> None:
    """Audit the reserved ``leases/`` and ``staging/`` directories.

    Both are *coordination* state: lease dirs gate claims, staging
    dirs hold in-flight shard output. A crashed-but-resumable campaign
    leaves both behind legitimately, so only age past *reclaim_age*
    makes them findings. Reclaiming a lease dir is safe with respect
    to fencing — a zombie commit re-reads the current lease, and "no
    lease at all" fails that ownership check exactly like a stolen
    one; it does reset the unit's claim budget, which is the point of
    reclaiming an abandoned unit.
    """
    leases_root = store.root / LEASES_DIR
    if leases_root.is_dir():
        for unit_dir in sorted(p for p in leases_root.iterdir()
                               if p.is_dir()):
            age = _lease_age(unit_dir, now)
            if age is None:
                mtime = _newest_mtime(unit_dir)
                age = (now - mtime) if mtime is not None else None
            if age is None or age <= reclaim_age:
                continue
            finding = FsckFinding(
                path=unit_dir.relative_to(store.root).as_posix(),
                kind="lease", damage_class=DAMAGE_ORPHANED,
                detail=f"lease dir idle for {age:.0f}s "
                       f"(> {reclaim_age:.0f}s reclaim age)")
            if repair:
                shutil.rmtree(unit_dir, ignore_errors=True)
                finding.action = ACTION_RECLAIMED
            report.findings.append(finding)

    staging_root = store.root / STAGING_DIR
    if staging_root.is_dir():
        for shard_dir in sorted(p for p in staging_root.iterdir()
                                if p.is_dir()):
            mtime = _newest_mtime(shard_dir)
            age = (now - mtime) if mtime is not None else None
            if age is None or age <= reclaim_age:
                continue
            published = _staging_unit_published(store, shard_dir.name)
            finding = FsckFinding(
                path=shard_dir.relative_to(store.root).as_posix(),
                kind="staging", damage_class=DAMAGE_ORPHANED,
                detail=f"staging store idle for {age:.0f}s "
                       f"(> {reclaim_age:.0f}s reclaim age; unit "
                       + ("published)" if published
                          else "never published)"))
            if repair:
                if published:
                    # the unit's snapshot made it into the main tree —
                    # this shard is superseded debris.
                    shutil.rmtree(shard_dir, ignore_errors=True)
                else:
                    # unpublished collection output: quarantine,
                    # never delete.
                    destination = (store.root / QUARANTINE_DIR
                                   / "orphan" / shard_dir.name)
                    suffix = 0
                    final = destination
                    while final.exists():
                        suffix += 1
                        final = destination.with_name(
                            f"{destination.name}.{suffix}")
                    final.parent.mkdir(parents=True, exist_ok=True)
                    shutil.move(str(shard_dir), str(final))
                    sidecar = final.parent / (final.name
                                              + ".orphan.json")
                    sidecar.write_text(
                        '{"reclaimed_at": "' + _utcnow()
                        + '", "original": "'
                        + (STAGING_DIR + "/" + shard_dir.name)
                        + '"}\n', encoding="utf-8")
                finding.action = ACTION_RECLAIMED
            report.findings.append(finding)
