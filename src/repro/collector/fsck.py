"""Store auditing and repair (``repro-study fsck``).

Walks every artefact in a :class:`~repro.collector.store.DatasetStore`
— snapshots, checkpoints, dictionaries, run reports, and the manifests
themselves — and verifies each one both ways: the file against its
embedded envelope digest, and the file against its manifest entry.

Findings are classified with the shared damage taxonomy
(:mod:`repro.collector.integrity`):

========================  ==============================================
class                     meaning
========================  ==============================================
``truncated``             gzip stream ends before its end marker
``malformed``             not gzip / corrupt deflate / invalid JSON
``checksum_mismatch``     a digest disagrees (gzip CRC, envelope,
                          or manifest vs a legacy file)
``schema_drift``          parseable but the wrong shape/kind/version
``missing_manifest_entry``  a healthy file the manifest does not know
``manifest_drift``        a self-consistent file whose manifest entry
                          is stale (e.g. crash between rename and
                          manifest publish)
``missing_file``          a manifest entry whose file is gone
``orphan_temp``           ``*.tmp`` debris from an interrupted write
========================  ==============================================

With ``repair=True`` damaged files are **quarantined, never deleted**,
stale/missing manifest records are rewritten from the surviving
verified files, and dangling entries are dropped. A second fsck over a
repaired store is clean.
"""

from __future__ import annotations

import types
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .. import obs
from .integrity import (
    DAMAGE_CHECKSUM,
    DAMAGE_CLASSES,
    DAMAGE_MANIFEST_DRIFT,
    DAMAGE_MISSING_ENTRY,
    DAMAGE_MISSING_FILE,
    DAMAGE_ORPHAN_TEMP,
    IntegrityError,
    decode_artefact,
    is_temp_artefact,
)
from .manifest import MANIFEST_NAME, Manifest
from .store import (
    AGGREGATE_SUFFIX,
    CHECKPOINT_SUFFIX,
    QUARANTINE_DIR,
    REPORTS_DIR,
    DatasetStore,
)

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    runs=reg.counter(
        "repro_store_fsck_runs_total",
        "fsck passes, by outcome (clean / damaged)", ("outcome",)),
    findings=reg.counter(
        "repro_store_fsck_findings_total",
        "fsck findings, by damage class", ("class",)),
    artefacts=reg.counter(
        "repro_store_fsck_artefacts_total",
        "Artefacts examined by fsck, by verification outcome",
        ("outcome",)),
))

#: repair actions recorded on findings.
ACTION_QUARANTINED = "quarantined"
ACTION_MANIFEST_UPDATED = "manifest_updated"
ACTION_ENTRY_DROPPED = "entry_dropped"


@dataclass
class FsckFinding:
    """One piece of damage found by an fsck pass."""

    path: str            # store-relative path
    kind: str            # snapshot / checkpoint / dictionary / ...
    damage_class: str
    detail: str
    #: what --repair did about it (None on audit-only passes).
    action: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "kind": self.kind,
                "class": self.damage_class, "detail": self.detail,
                "action": self.action}


@dataclass
class FsckReport:
    """Outcome of one fsck pass over a store."""

    root: str = ""
    repaired: bool = False
    scanned: int = 0       # artefact files examined
    verified: int = 0      # fully healthy (file + manifest agree)
    findings: List[FsckFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def counts(self) -> Dict[str, int]:
        counts = {cls: 0 for cls in DAMAGE_CLASSES}
        for finding in self.findings:
            counts[finding.damage_class] = \
                counts.get(finding.damage_class, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "repaired": self.repaired,
            "scanned": self.scanned,
            "verified": self.verified,
            "clean": self.clean,
            "counts": {cls: count for cls, count in self.counts.items()
                       if count},
            "findings": [f.to_dict() for f in self.findings],
        }

    def format_summary(self) -> str:
        verdict = "clean" if self.clean else "DAMAGED"
        lines = [f"fsck {self.root}: {verdict} — {self.scanned} "
                 f"artefacts scanned, {self.verified} verified, "
                 f"{len(self.findings)} findings"]
        for cls, count in sorted(self.counts.items()):
            if count:
                lines.append(f"  {cls}: {count}")
        for finding in self.findings:
            action = f" [{finding.action}]" if finding.action else ""
            lines.append(f"  {finding.damage_class}: {finding.path} "
                         f"({finding.detail}){action}")
        return "\n".join(lines)


def _classify_path(scope_name: str, path: Path) -> Optional[
        Tuple[str, bool]]:
    """``(kind, is_gzip)`` for an artefact path, or None for files
    fsck does not manage (quarantine sidecars live outside scopes)."""
    name = path.name
    if scope_name == REPORTS_DIR:
        return ("report", False) if name.endswith(".json") else None
    if name == "dictionary.json":
        return "dictionary", False
    if name.endswith(CHECKPOINT_SUFFIX):
        return "checkpoint", True
    if name.endswith(AGGREGATE_SUFFIX):
        # checked before the generic snapshot rule: cache artefacts
        # share the .json.gz extension but carry the aggregate kind.
        return "aggregate", True
    if name.endswith(".json.gz"):
        return "snapshot", True
    return None


def fsck_store(store: DatasetStore, repair: bool = False) -> FsckReport:
    """Audit (and with ``repair=True``, heal) every artefact in a
    store. Never deletes data: repair quarantines damaged files and
    rewrites manifests."""
    report = FsckReport(root=str(store.root), repaired=repair)
    with obs.span("fsck"):
        scopes = [store.root / ixp for ixp in store.ixps()]
        if (store.root / REPORTS_DIR).is_dir():
            scopes.append(store.root / REPORTS_DIR)
        for scope in scopes:
            _fsck_scope(store, scope, report, repair)
    metrics = _METRICS()
    metrics.runs.labels("clean" if report.clean else "damaged").inc()
    for finding in report.findings:
        metrics.findings.labels(finding.damage_class).inc()
    return report


def _fsck_scope(store: DatasetStore, scope: Path, report: FsckReport,
                repair: bool) -> None:
    try:
        manifest = Manifest.load(scope, strict=True)
        manifest_healthy = True
    except IntegrityError as error:
        manifest = Manifest(scope)
        manifest_healthy = False
        finding = FsckFinding(
            path=(scope / MANIFEST_NAME).relative_to(
                store.root).as_posix(),
            kind="manifest", damage_class=error.damage_class,
            detail=str(error))
        if repair:
            store.quarantine(scope / MANIFEST_NAME, error)
            finding.action = ACTION_QUARANTINED
        report.findings.append(finding)
    manifest_dirty = not manifest_healthy and repair

    seen: Dict[str, Tuple[str, int, str]] = {}
    present: set = set()
    for path in sorted(p for p in scope.rglob("*") if p.is_file()):
        if path.name == MANIFEST_NAME:
            continue
        rel_store = path.relative_to(store.root).as_posix()
        rel_scope = path.relative_to(scope).as_posix()
        if is_temp_artefact(path):
            finding = FsckFinding(
                path=rel_store, kind="temp",
                damage_class=DAMAGE_ORPHAN_TEMP,
                detail="interrupted write left temp debris")
            if repair:
                error = IntegrityError(
                    "orphan temp file from an interrupted write", path)
                error.damage_class = DAMAGE_ORPHAN_TEMP
                store.quarantine(path, error)
                finding.action = ACTION_QUARANTINED
            report.findings.append(finding)
            continue
        classified = _classify_path(scope.name, path)
        if classified is None:
            continue  # not an artefact this store manages
        kind, gz = classified
        present.add(rel_scope)
        report.scanned += 1
        try:
            _payload, digest, self_verified = decode_artefact(
                path.read_bytes(), kind=kind, gz=gz, path=path)
        except IntegrityError as error:
            _METRICS().artefacts.labels("failed").inc()
            finding = FsckFinding(path=rel_store, kind=kind,
                                  damage_class=error.damage_class,
                                  detail=str(error))
            if repair:
                store.quarantine(path, error)
                finding.action = ACTION_QUARANTINED
                manifest.remove(rel_scope)
                manifest_dirty = True
            report.findings.append(finding)
            continue
        _METRICS().artefacts.labels("ok").inc()
        size = path.stat().st_size
        seen[rel_scope] = (digest, size, kind)

        entry = manifest.get(rel_scope)
        if entry is None:
            finding = FsckFinding(
                path=rel_store, kind=kind,
                damage_class=DAMAGE_MISSING_ENTRY,
                detail="verified file absent from the manifest")
            if repair:
                manifest.record(rel_scope, digest, size, kind)
                manifest_dirty = True
                finding.action = ACTION_MANIFEST_UPDATED
            report.findings.append(finding)
        elif entry.get("sha256") != digest:
            if self_verified:
                # the file vouches for itself; the ledger is stale
                # (classic crash between rename and manifest publish).
                finding = FsckFinding(
                    path=rel_store, kind=kind,
                    damage_class=DAMAGE_MANIFEST_DRIFT,
                    detail="self-consistent file, stale manifest entry")
                if repair:
                    manifest.record(rel_scope, digest, size, kind)
                    manifest_dirty = True
                    finding.action = ACTION_MANIFEST_UPDATED
                report.findings.append(finding)
            else:
                # a legacy file cannot vouch for itself and the
                # manifest disagrees: treat the bytes as damaged.
                error = IntegrityError(
                    "manifest digest disagrees with un-enveloped file",
                    path)
                error.damage_class = DAMAGE_CHECKSUM
                finding = FsckFinding(
                    path=rel_store, kind=kind,
                    damage_class=error.damage_class,
                    detail=str(error))
                if repair:
                    store.quarantine(path, error)
                    finding.action = ACTION_QUARANTINED
                    manifest.remove(rel_scope)
                    manifest_dirty = True
                report.findings.append(finding)
        else:
            report.verified += 1

    for rel_scope in sorted(set(manifest.entries) - present):
        entry = manifest.entries[rel_scope]
        finding = FsckFinding(
            path=(scope / rel_scope).relative_to(store.root).as_posix(),
            kind=str(entry.get("kind", "artefact")),
            damage_class=DAMAGE_MISSING_FILE,
            detail="manifest entry has no file on disk")
        if repair:
            manifest.remove(rel_scope)
            manifest_dirty = True
            finding.action = ACTION_ENTRY_DROPPED
        report.findings.append(finding)

    if repair and manifest_dirty:
        if not manifest_healthy:
            # rebuild from scratch out of the verified survivors
            manifest.entries = {}
            for rel_scope, (digest, size, kind) in seen.items():
                manifest.record(rel_scope, digest, size, kind)
        manifest.save()
