"""Fault-tolerant collection campaigns.

The paper's twelve-week collection "was subject to communication
failures because of LG instability and/or query rate limits" (§3) —
13.5% of snapshots had to be discarded in sanitation. This module is
the campaign layer that makes such a collection survivable: it drives
multi-(IXP, family) scraping with

* **per-peer retry budgets** — a flaky peer is retried a bounded
  number of times, then recorded with a failure class instead of
  aborting the snapshot;
* **a failure taxonomy** — every lost peer is counted as
  ``rate_limited`` / ``lg_outage`` / ``timeout`` /
  ``malformed_payload`` (from the client's typed errors), so campaign
  reports say *why* data is missing;
* **per-snapshot deadlines** — a stalling LG cannot eat the whole
  collection day; the target is parked resumable instead;
* **checkpointing** — after each collected peer the partial snapshot
  is persisted through :class:`~repro.collector.store.DatasetStore`,
  so a crashed or deadline-parked campaign re-run with ``resume=True``
  picks up at the first un-collected peer without re-fetching anything;
* **circuit breakers** — one per (ixp, family) mount (via
  :class:`~repro.lg.breaker.BreakerRegistry`), so a dead LG is probed,
  not hammered — refusals surface as their own ``breaker_open``
  failure class;
* **self-measurement** — peers/failures/checkpoints/resumes are
  metered under ``repro_campaign_*`` (see :mod:`repro.obs`), every
  checkpoint carries a metrics snapshot, and a finished run writes a
  JSON run report through the store;
* **graceful shutdown** — :func:`install_shutdown_handlers` turns
  SIGINT/SIGTERM into a flush-checkpoint-then-park path: the campaign
  finishes the in-flight peer, persists a checkpoint, marks the run
  interrupted (CLI exit 2), and a later ``--resume`` continues it.
  A second signal falls through to the previous handler (a hard stop
  for an operator mashing Ctrl-C);
* **crash-safety** — every store write is atomic and checksummed
  (see :mod:`repro.collector.integrity`); a corrupt checkpoint found
  during resume is quarantined by the store and the target restarts
  from scratch instead of dying;
* **bounded concurrency** — per-peer route fetches fan out over a
  worker pool (``workers``) and independent (IXP, family) mounts run
  concurrently (``target_workers``); both default to 1, the exact
  serial behaviour. Peers are submitted from an ASN-sorted list and
  reassembled in that order, so snapshots are **byte-identical to a
  serial run** regardless of worker count; checkpoints still mean
  "peers collected so far", and a shutdown/deadline park stops
  submitting, drains the in-flight peers, and checkpoints them too.

Clock and sleep are injectable: tests drive deadlines and breaker
cooldowns with a fake clock and never block.
"""

from __future__ import annotations

import signal as _signal
import threading
import time
import types
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ThreadPoolExecutor,
    as_completed,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..bgp.route import Route
from ..ixp.member import Member, MemberRole
from ..lg.aio import AsyncLookingGlassClient
from ..lg.api import DEFAULT_PAGE_SIZE, NeighborSummary
from ..lg.breaker import BreakerRegistry
from ..lg.client import (
    FAILURE_CLASSES,
    CircuitOpenError,
    LookingGlassClient,
    LookingGlassError,
    TransientError,
)
from .integrity import IntegrityError
from .scraper import utc_today, worker_label
from .snapshot import Snapshot
from .store import DatasetStore

CHECKPOINT_VERSION = 1

_METRICS = obs.MetricSet(lambda reg: types.SimpleNamespace(
    peers=reg.counter(
        "repro_campaign_peers_total",
        "Campaign peers by outcome (collected / failed / resumed)",
        ("ixp", "family", "outcome")),
    failures=reg.counter(
        "repro_campaign_failures_total",
        "Peers lost after the whole retry budget, by failure class",
        ("ixp", "family", "class")),
    checkpoints=reg.counter(
        "repro_campaign_checkpoints_total",
        "Checkpoint writes", ("ixp", "family")),
    checkpoints_rejected=reg.counter(
        "repro_campaign_checkpoints_rejected_total",
        "Parked checkpoints discarded at resume instead of merged",
        ("ixp", "family", "reason")),
    resumes=reg.counter(
        "repro_campaign_resume_total",
        "Targets restarted from a checkpoint", ("ixp", "family")),
    interruptions=reg.counter(
        "repro_campaign_interruptions_total",
        "Graceful-shutdown requests honoured mid-campaign").labels(),
    targets=reg.counter(
        "repro_campaign_targets_total",
        "Campaign targets finished, by terminal status", ("status",)),
    target_seconds=reg.histogram(
        "repro_campaign_target_seconds",
        "Wall-clock time spent on one (ixp, family) target",
        buckets=(1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0)),
    inflight_targets=reg.gauge(
        "repro_campaign_inflight_targets",
        "(ixp, family) targets currently being collected").labels(),
    inflight_peers=reg.gauge(
        "repro_campaign_inflight_peers",
        "Per-peer collections currently in flight",
        ("ixp", "family")),
    peer_seconds=reg.histogram(
        "repro_campaign_peer_seconds",
        "Wall-clock time collecting one peer (all attempts), "
        "by pool worker", ("ixp", "family", "worker")),
))

#: terminal states of one campaign target.
STATUS_COMPLETE = "complete"            # snapshot written, all peers in
STATUS_DEGRADED = "degraded"            # snapshot written, peers missing
STATUS_INCOMPLETE = "incomplete"        # deadline hit; checkpoint kept
STATUS_FAILED = "failed"                # not even a peer list
STATUS_ALREADY_COLLECTED = "already_collected"


@dataclass(frozen=True)
class CampaignTarget:
    """One (IXP, family) mount to collect."""

    ixp: str
    family: int
    dialect: str = "alice"


@dataclass
class CampaignConfig:
    """Knobs of one collection campaign."""

    base_url: str
    targets: Sequence[CampaignTarget]
    #: snapshot date; defaults to today at run time.
    captured_on: Optional[str] = None
    #: attempts per peer (each attempt spends a full client retry
    #: budget, so this is the *outer* loop of §3's per-peer fetch).
    peer_attempts: int = 2
    #: wall-clock budget per snapshot, seconds (None = unbounded).
    snapshot_deadline: Optional[float] = None
    #: persist a checkpoint every N collected peers.
    checkpoint_every: int = 1
    #: per-peer fetch workers within one target (1 = the paper's
    #: strictly sequential single-connection discipline).
    workers: int = 1
    #: (ixp, family) mounts collected concurrently (1 = one at a time).
    target_workers: int = 1
    #: circuit breaker: consecutive failed calls before opening, and
    #: cooldown before the half-open probe.
    breaker_threshold: int = 3
    breaker_reset: float = 5.0
    #: client hardening knobs (see LookingGlassClient).
    max_retries: int = 3
    request_timeout: float = 30.0
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    page_retries: int = 1
    #: fetch engine within one target: "threads" fans whole peers over
    #: a bounded pool (``workers``); "async" fans individual route
    #: *pages* onto one selectors event loop (see repro.lg.aio), whose
    #: concurrency the next two knobs bound.
    io: str = "threads"
    #: async engine: page fetches in flight at once per target — also
    #: the per-mount connection cap handed to the keep-alive pool.
    max_inflight: int = 32
    #: routes per page requested from the LG (both engines).
    page_size: int = DEFAULT_PAGE_SIZE


@dataclass
class PeerFailure:
    """One peer lost after the whole retry budget."""

    asn: int
    failure_class: str
    error: str

    def to_dict(self) -> Dict[str, Any]:
        return {"asn": self.asn, "failure_class": self.failure_class,
                "error": self.error}


@dataclass
class _PeerOutcome:
    """What one per-peer fetch produced: routes or a terminal failure,
    plus how often the mount's breaker refused along the way. Built on
    a pool thread, folded into the report on the coordinating thread."""

    routes: List[Route] = field(default_factory=list)
    failure: Optional[PeerFailure] = None
    circuit_open_skips: int = 0


@dataclass
class TargetReport:
    """Outcome of one (IXP, family) target."""

    ixp: str
    family: int
    status: str = STATUS_FAILED
    peers_attempted: int = 0
    peers_collected: int = 0
    #: peers restored from a checkpoint instead of re-fetched.
    peers_resumed: int = 0
    failures: List[PeerFailure] = field(default_factory=list)
    #: peers skipped because the mount's breaker was open.
    circuit_open_skips: int = 0
    deadline_hit: bool = False
    #: parked by a graceful-shutdown request (SIGINT/SIGTERM).
    interrupted: bool = False
    snapshot_path: Optional[str] = None
    error: Optional[str] = None
    breaker_state: str = "closed"
    breaker_opens: int = 0
    elapsed: float = 0.0
    #: why a parked checkpoint was discarded at resume instead of
    #: merged (e.g. ``dictionary_drift``); None when none was.
    checkpoint_discarded: Optional[str] = None

    @property
    def failure_counts(self) -> Dict[str, int]:
        counts = {cls: 0 for cls in FAILURE_CLASSES}
        for failure in self.failures:
            counts[failure.failure_class] = \
                counts.get(failure.failure_class, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ixp": self.ixp, "family": self.family, "status": self.status,
            "peers_attempted": self.peers_attempted,
            "peers_collected": self.peers_collected,
            "peers_resumed": self.peers_resumed,
            "failures": [f.to_dict() for f in self.failures],
            "failure_counts": self.failure_counts,
            "circuit_open_skips": self.circuit_open_skips,
            "deadline_hit": self.deadline_hit,
            "interrupted": self.interrupted,
            "snapshot_path": self.snapshot_path,
            "error": self.error,
            "breaker_state": self.breaker_state,
            "breaker_opens": self.breaker_opens,
            "elapsed": self.elapsed,
            "checkpoint_discarded": self.checkpoint_discarded,
        }


@dataclass
class CampaignReport:
    """Outcome of one campaign run over all targets."""

    captured_on: str = ""
    resumed: bool = False
    #: a graceful-shutdown request parked this run before it finished.
    interrupted: bool = False
    targets: List[TargetReport] = field(default_factory=list)
    #: where the observability run report landed (None when disabled).
    run_report_path: Optional[str] = None

    @property
    def failure_counts(self) -> Dict[str, int]:
        counts = {cls: 0 for cls in FAILURE_CLASSES}
        for target in self.targets:
            for cls, count in target.failure_counts.items():
                counts[cls] = counts.get(cls, 0) + count
        return counts

    @property
    def complete(self) -> bool:
        """Every target produced a full snapshot."""
        return all(t.status in (STATUS_COMPLETE, STATUS_ALREADY_COLLECTED)
                   for t in self.targets)

    @property
    def resumable(self) -> bool:
        """A re-run with ``resume=True`` has work to pick up: a parked
        checkpoint, or targets never reached before an interruption."""
        return (self.interrupted
                or any(t.status == STATUS_INCOMPLETE
                       for t in self.targets))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "captured_on": self.captured_on,
            "resumed": self.resumed,
            "interrupted": self.interrupted,
            "failure_counts": self.failure_counts,
            "targets": [t.to_dict() for t in self.targets],
            "run_report_path": self.run_report_path,
        }

    def format_summary(self) -> str:
        by_status: Dict[str, int] = {}
        for target in self.targets:
            by_status[target.status] = by_status.get(target.status, 0) + 1
        headline = (f"campaign {self.captured_on}: "
                    + ", ".join(f"{count} {status}"
                                for status, count
                                in sorted(by_status.items())))
        if self.interrupted:
            headline += " (interrupted — parked for --resume)"
        lines = [headline]
        for target in self.targets:
            total = target.peers_attempted + target.peers_resumed
            have = target.peers_collected + target.peers_resumed
            parts = [f"  {target.ixp}/v{target.family}: {target.status}",
                     f"{have}/{total} peers"]
            if target.peers_resumed:
                parts.append(f"({target.peers_resumed} from checkpoint)")
            if target.failures:
                parts.append("lost " + ", ".join(
                    f"{count} {cls}" for cls, count
                    in sorted(target.failure_counts.items()) if count))
            if target.breaker_opens:
                parts.append(f"breaker opened x{target.breaker_opens}")
            if target.error:
                parts.append(f"error: {target.error}")
            lines.append(" ".join(parts))
        return "\n".join(lines)


class CollectionCampaign:
    """Orchestrates one durable collection campaign over a store."""

    def __init__(self, store: DatasetStore, config: CampaignConfig,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.store = store
        self.config = config
        self.clock = clock
        self.sleep = sleep
        self.breakers = BreakerRegistry(
            failure_threshold=config.breaker_threshold,
            reset_timeout=config.breaker_reset,
            clock=clock)
        self._clients: Dict[Tuple[str, int], LookingGlassClient] = {}
        self._aio_clients: Dict[Tuple[str, int],
                                AsyncLookingGlassClient] = {}
        self._client_lock = threading.Lock()
        if config.io not in ("threads", "async"):
            raise ValueError(
                f"unknown io engine {config.io!r} "
                f"(expected 'threads' or 'async')")
        self._shutdown = threading.Event()
        self._dictionary_digests: Dict[str, Optional[str]] = {}

    # -- graceful shutdown ------------------------------------------------

    def request_shutdown(self) -> None:
        """Ask the campaign to park at the next safe boundary: the
        in-flight peer finishes, a checkpoint is flushed, and the run
        returns an interrupted (resumable) report. Safe to call from
        signal handlers and other threads."""
        if not self._shutdown.is_set():
            self._shutdown.set()
            _METRICS().interruptions.inc()

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown.is_set()

    # -- plumbing --------------------------------------------------------

    def client_for(self, target: CampaignTarget) -> LookingGlassClient:
        """One persistent client per mount (stats accumulate across
        the campaign; the client is shared by that mount's fetch
        workers and is thread-safe). Safe to call from concurrent
        target workers."""
        key = (target.ixp, target.family)
        with self._client_lock:
            if key not in self._clients:
                config = self.config
                self._clients[key] = LookingGlassClient(
                    base_url=config.base_url,
                    ixp=target.ixp,
                    family=target.family,
                    dialect=target.dialect,
                    max_retries=config.max_retries,
                    backoff_base=config.backoff_base,
                    backoff_cap=config.backoff_cap,
                    timeout=config.request_timeout,
                    page_retries=config.page_retries,
                    breaker=self.breakers.get(target.ixp, target.family),
                    sleep=self.sleep,
                )
            return self._clients[key]

    # -- campaign run ----------------------------------------------------

    def run(self, resume: bool = False) -> CampaignReport:
        """Collect every target; with ``resume=True``, restart from
        checkpoints and skip snapshots already in the store.

        With ``target_workers > 1`` independent mounts are collected
        concurrently; ``report.targets`` still lists outcomes in
        configuration order (targets never started before a shutdown
        are simply absent, exactly as in a serial park).

        With observability enabled, a JSON run report (metrics
        snapshot + traces + the campaign summary) is written through
        the store as ``campaign-<date>``.
        """
        captured_on = self.config.captured_on or utc_today()
        report = CampaignReport(captured_on=captured_on, resumed=resume)
        with obs.span(f"campaign {captured_on}"):
            if max(1, self.config.target_workers) == 1:
                outcomes = self._run_targets_serial(captured_on, resume,
                                                    report)
            else:
                outcomes = self._run_targets_pooled(captured_on, resume,
                                                    report)
            for outcome in outcomes:
                if outcome is None:
                    continue
                report.targets.append(outcome)
                if outcome.interrupted:
                    report.interrupted = True
                _METRICS().targets.labels(outcome.status).inc()
                _METRICS().target_seconds.labels().observe(
                    outcome.elapsed)
        if obs.enabled():
            report.run_report_path = str(self.store.save_run_report(
                f"campaign-{captured_on}",
                obs.build_run_report(
                    "campaign", meta=report.to_dict())))
        return report

    def _run_targets_serial(self, captured_on: str, resume: bool,
                            report: CampaignReport,
                            ) -> List[Optional[TargetReport]]:
        outcomes: List[Optional[TargetReport]] = []
        for target in self.config.targets:
            if self._shutdown.is_set():
                # park before touching further targets; resume
                # collects them later.
                report.interrupted = True
                break
            outcomes.append(self._run_one_target(
                target, captured_on, resume))
        return outcomes

    def _run_targets_pooled(self, captured_on: str, resume: bool,
                            report: CampaignReport,
                            ) -> List[Optional[TargetReport]]:
        """All targets over a bounded pool; results in config order.

        A target whose turn comes after a shutdown request is never
        started (its slot stays None — identical to the serial park);
        targets already running park themselves via the shared
        shutdown event.
        """
        targets = list(self.config.targets)
        outcomes: List[Optional[TargetReport]] = [None] * len(targets)

        def collect(target: CampaignTarget) -> Optional[TargetReport]:
            if self._shutdown.is_set():
                return None
            return self._run_one_target(target, captured_on, resume)

        with ThreadPoolExecutor(
                max_workers=max(1, self.config.target_workers),
                thread_name_prefix="target") as pool:
            futures = {pool.submit(collect, target): index
                       for index, target in enumerate(targets)}
            for future in as_completed(futures):
                outcomes[futures[future]] = future.result()
        if self._shutdown.is_set() and any(o is None for o in outcomes):
            report.interrupted = True
        return outcomes

    def _run_one_target(self, target: CampaignTarget, captured_on: str,
                        resume: bool) -> TargetReport:
        metrics = _METRICS()
        metrics.inflight_targets.inc()
        try:
            with obs.span(f"target {target.ixp}/v{target.family}"):
                return self._collect_target(target, captured_on, resume)
        finally:
            metrics.inflight_targets.dec()

    def _collect_target(self, target: CampaignTarget, captured_on: str,
                        resume: bool) -> TargetReport:
        report = TargetReport(ixp=target.ixp, family=target.family)
        started = self.clock()
        if resume and self.store.has_snapshot(
                target.ixp, target.family, captured_on):
            report.status = STATUS_ALREADY_COLLECTED
            return report

        # progress so far: {asn(str): {"routes": [...], "filtered": n,
        # "name": str}}
        peers: Dict[str, Dict[str, Any]] = {}
        if resume:
            checkpoint = self.store.load_checkpoint(
                target.ixp, target.family, captured_on)
            if checkpoint and checkpoint.get("version") == \
                    CHECKPOINT_VERSION:
                if self._checkpoint_scheme_drifted(target, checkpoint):
                    # the community scheme changed while the target was
                    # parked: the checkpointed routes were interpreted
                    # under the old dictionary, so merging them would
                    # mix schemes inside one snapshot. Restart clean.
                    self.store.delete_checkpoint(
                        target.ixp, target.family, captured_on)
                    report.checkpoint_discarded = "dictionary_drift"
                    _METRICS().checkpoints_rejected.labels(
                        target.ixp, str(target.family),
                        "dictionary_drift").inc()
                else:
                    peers = dict(checkpoint.get("peers", {}))
                    report.peers_resumed = len(peers)
                    if peers:
                        metrics = _METRICS()
                        metrics.resumes.labels(
                            target.ixp, str(target.family)).inc()
                        metrics.peers.labels(
                            target.ixp, str(target.family),
                            "resumed").inc(len(peers))
        else:
            self.store.delete_checkpoint(
                target.ixp, target.family, captured_on)

        client = self.client_for(target)
        try:
            neighbors = client.neighbors()
        except LookingGlassError as error:
            report.status = STATUS_FAILED
            report.error = str(error)
            report.failures.append(PeerFailure(
                asn=0, failure_class=error.failure_class,
                error=str(error)))
            _METRICS().failures.labels(
                target.ixp, str(target.family),
                error.failure_class).inc()
            self._note_breaker(target, report, started)
            return report

        # Deterministic ASN order: submission and reassembly both walk
        # this list, so worker count cannot change snapshot content.
        established = sorted(
            (n for n in neighbors if n.established),
            key=lambda n: n.asn)
        pending = [n for n in established if str(n.asn) not in peers]
        if self.config.io == "async":
            self._collect_peers_async(client, pending, peers, report,
                                      target, captured_on, started)
        elif max(1, self.config.workers) == 1:
            self._collect_peers_serial(client, pending, peers, report,
                                       target, captured_on, started)
        else:
            self._collect_peers_pooled(client, pending, peers, report,
                                       target, captured_on, started)

        if report.deadline_hit or report.interrupted:
            self._save_checkpoint(target, captured_on, peers, report)
            report.status = STATUS_INCOMPLETE
        else:
            snapshot = self._build_snapshot(
                target, captured_on, established, peers, report)
            report.snapshot_path = str(self.store.save_snapshot(snapshot))
            self.store.delete_checkpoint(
                target.ixp, target.family, captured_on)
            report.status = (STATUS_COMPLETE if not report.failures
                             else STATUS_DEGRADED)
        self._note_breaker(target, report, started)
        return report

    # -- helpers ---------------------------------------------------------

    def _deadline_exceeded(self, started: float) -> bool:
        deadline = self.config.snapshot_deadline
        return (deadline is not None
                and self.clock() - started >= deadline)

    def _collect_peers_serial(self, client: LookingGlassClient,
                              pending: Sequence[NeighborSummary],
                              peers: Dict[str, Dict[str, Any]],
                              report: TargetReport,
                              target: CampaignTarget, captured_on: str,
                              started: float) -> None:
        """The ``workers=1`` path: one peer at a time, shutdown and
        deadline checked between peers."""
        since_checkpoint = 0
        for neighbor in pending:
            if self._shutdown.is_set():
                report.interrupted = True
                break
            if self._deadline_exceeded(started):
                report.deadline_hit = True
                break
            report.peers_attempted += 1
            outcome = self._collect_peer(client, neighbor, target)
            if not self._apply_outcome(target, report, neighbor,
                                       outcome, peers):
                continue
            since_checkpoint += 1
            if since_checkpoint >= max(1, self.config.checkpoint_every):
                self._save_checkpoint(target, captured_on, peers,
                                      report)
                since_checkpoint = 0

    def _collect_peers_pooled(self, client: LookingGlassClient,
                              pending: Sequence[NeighborSummary],
                              peers: Dict[str, Dict[str, Any]],
                              report: TargetReport,
                              target: CampaignTarget, captured_on: str,
                              started: float) -> None:
        """The ``workers>1`` path: a bounded submission window over the
        ASN-sorted peer list.

        Only fetches run on pool threads; every report/checkpoint
        mutation happens here, on the target's coordinating thread, so
        checkpoint writes stay as crash-safe (and as observable to the
        chaos harness) as the serial path. A shutdown or deadline stops
        *submission*; peers already in flight are drained — collected,
        recorded, and included in the park checkpoint.
        """
        queue = deque(pending)
        inflight: Dict[Future, NeighborSummary] = {}
        since_checkpoint = 0
        stopped = False
        with ThreadPoolExecutor(
                max_workers=max(1, self.config.workers),
                thread_name_prefix="peer") as pool:
            while queue or inflight:
                if not stopped:
                    if self._shutdown.is_set():
                        report.interrupted = True
                        stopped = True
                    elif self._deadline_exceeded(started):
                        report.deadline_hit = True
                        stopped = True
                while (not stopped and queue
                       and len(inflight) < max(1, self.config.workers)):
                    neighbor = queue.popleft()
                    report.peers_attempted += 1
                    inflight[pool.submit(
                        self._collect_peer, client, neighbor,
                        target)] = neighbor
                if stopped:
                    queue.clear()
                if not inflight:
                    continue
                done, _ = wait(set(inflight),
                               return_when=FIRST_COMPLETED)
                for future in done:
                    neighbor = inflight.pop(future)
                    if self._apply_outcome(target, report, neighbor,
                                           future.result(), peers):
                        since_checkpoint += 1
                if since_checkpoint >= max(1,
                                           self.config.checkpoint_every):
                    self._save_checkpoint(target, captured_on, peers,
                                          report)
                    since_checkpoint = 0

    def _aio_client_for(self, target: CampaignTarget,
                        client: LookingGlassClient,
                        ) -> AsyncLookingGlassClient:
        """One async client (loop + pool) per mount, wrapping the
        mount's sync client so stats and breaker stay shared."""
        key = (target.ixp, target.family)
        with self._client_lock:
            if key not in self._aio_clients:
                self._aio_clients[key] = \
                    AsyncLookingGlassClient.from_client(
                        client,
                        max_inflight=self.config.max_inflight)
            return self._aio_clients[key]

    def _collect_peers_async(self, client: LookingGlassClient,
                             pending: Sequence[NeighborSummary],
                             peers: Dict[str, Dict[str, Any]],
                             report: TargetReport,
                             target: CampaignTarget, captured_on: str,
                             started: float) -> None:
        """The ``io="async"`` path: every pending peer's paginated
        fetch fans onto one selectors event loop, page-parallel under
        the client's ``max_inflight`` bound.

        The coordinating thread drives the loop one bounded turn at a
        time and folds finished peers between turns — report mutation,
        checkpoint cadence, and shutdown/deadline parks keep exactly
        the pooled path's semantics (stop submitting, drain in-flight
        peers, checkpoint them too).
        """
        aclient = self._aio_client_for(target, client)
        loop = aclient.loop
        queue = deque(pending)
        inflight: Dict[Any, NeighborSummary] = {}  # Task -> neighbor
        window = max(1, self.config.max_inflight)
        since_checkpoint = 0
        stopped = False
        while queue or inflight:
            if not stopped:
                if self._shutdown.is_set():
                    report.interrupted = True
                    stopped = True
                elif self._deadline_exceeded(started):
                    report.deadline_hit = True
                    stopped = True
            while (not stopped and queue
                   and len(inflight) < window):
                neighbor = queue.popleft()
                report.peers_attempted += 1
                task = loop.spawn(
                    self._collect_peer_coro(aclient, neighbor, target),
                    name=f"peer:{neighbor.asn}")
                inflight[task] = neighbor
            if stopped:
                queue.clear()
            if not inflight:
                continue
            loop.run_once()
            done = [task for task in inflight if task.done]
            for task in done:
                neighbor = inflight.pop(task)
                if task.error is not None:
                    raise task.error  # a bug, not a taxonomy failure
                if self._apply_outcome(target, report, neighbor,
                                       task.result, peers):
                    since_checkpoint += 1
            if since_checkpoint >= max(1, self.config.checkpoint_every):
                self._save_checkpoint(target, captured_on, peers,
                                      report)
                since_checkpoint = 0

    def _collect_peer_coro(self, aclient: AsyncLookingGlassClient,
                           neighbor: NeighborSummary,
                           target: CampaignTarget,
                           ) -> Any:
        """Coroutine twin of :meth:`_collect_peer`: the per-peer retry
        budget with the same breaker-cooldown and definitive-failure
        handling, all waits through the loop."""
        from ..net import aio
        metrics = _METRICS()
        mount = (target.ixp, str(target.family))
        metrics.inflight_peers.labels(*mount).inc()
        fetch_started = time.perf_counter()
        try:
            attempts = max(1, self.config.peer_attempts)
            skips = 0
            last: Optional[LookingGlassError] = None
            for attempt in range(attempts):
                try:
                    routes = yield from aclient.peer_routes_coro(
                        neighbor.asn,
                        page_size=self.config.page_size)
                    return _PeerOutcome(routes=routes,
                                        circuit_open_skips=skips)
                except CircuitOpenError as error:
                    skips += 1
                    last = error
                    cooldown = (aclient.breaker.seconds_until_probe
                                if aclient.breaker is not None else 0.0)
                    if attempt < attempts - 1 and cooldown > 0:
                        # same cushion as the threaded path: sleep past
                        # the cooldown boundary, not exactly onto it.
                        yield from aio.sleep(cooldown + 1e-3)
                except TransientError as error:
                    last = error
                except LookingGlassError as error:
                    last = error
                    break  # definitive — retrying is pointless
            assert last is not None
            return _PeerOutcome(
                failure=PeerFailure(
                    asn=neighbor.asn, failure_class=last.failure_class,
                    error=str(last)),
                circuit_open_skips=skips)
        finally:
            metrics.inflight_peers.labels(*mount).dec()
            metrics.peer_seconds.labels(*mount, "aio").observe(
                time.perf_counter() - fetch_started)

    def _apply_outcome(self, target: CampaignTarget,
                       report: TargetReport,
                       neighbor: NeighborSummary,
                       outcome: "_PeerOutcome",
                       peers: Dict[str, Dict[str, Any]]) -> bool:
        """Fold one peer's outcome into the report and progress map —
        always on the coordinating thread. True = peer collected."""
        metrics = _METRICS()
        report.circuit_open_skips += outcome.circuit_open_skips
        if outcome.failure is not None:
            report.failures.append(outcome.failure)
            metrics.peers.labels(
                target.ixp, str(target.family), "failed").inc()
            metrics.failures.labels(
                target.ixp, str(target.family),
                outcome.failure.failure_class).inc()
            return False
        report.peers_collected += 1
        metrics.peers.labels(
            target.ixp, str(target.family), "collected").inc()
        peers[str(neighbor.asn)] = {
            "routes": [route.to_dict() for route in outcome.routes],
            "filtered": neighbor.routes_filtered,
            "name": neighbor.name,
        }
        return True

    def _collect_peer(self, client: LookingGlassClient,
                      neighbor: NeighborSummary,
                      target: CampaignTarget) -> "_PeerOutcome":
        """One peer's routes under the per-peer retry budget.

        Pure fetch: never raises and never touches the report (it may
        run on a pool thread) — the outcome is folded in by
        :meth:`_apply_outcome` on the coordinating thread.
        """
        metrics = _METRICS()
        mount = (target.ixp, str(target.family))
        metrics.inflight_peers.labels(*mount).inc()
        fetch_started = time.perf_counter()
        try:
            return self._collect_peer_inner(client, neighbor)
        finally:
            metrics.inflight_peers.labels(*mount).dec()
            metrics.peer_seconds.labels(*mount, worker_label()).observe(
                time.perf_counter() - fetch_started)

    def _collect_peer_inner(self, client: LookingGlassClient,
                            neighbor: NeighborSummary,
                            ) -> "_PeerOutcome":
        attempts = max(1, self.config.peer_attempts)
        skips = 0
        last: Optional[LookingGlassError] = None
        for attempt in range(attempts):
            try:
                return _PeerOutcome(
                    routes=list(client.routes(
                        neighbor.asn,
                        page_size=self.config.page_size)),
                    circuit_open_skips=skips)
            except CircuitOpenError as error:
                # The mount is known-down: wait out the cooldown once
                # rather than burning attempts against a tripped
                # breaker.
                skips += 1
                last = error
                cooldown = (client.breaker.seconds_until_probe
                            if client.breaker is not None else 0.0)
                if attempt < attempts - 1 and cooldown > 0:
                    # cushion past the cooldown boundary: sleeping the
                    # exact remainder can land short of the threshold
                    # (float rounding, coarse clocks) and deadlock the
                    # probe.
                    self.sleep(cooldown + 1e-3)
            except TransientError as error:
                last = error
            except LookingGlassError as error:
                last = error
                break  # definitive (4xx-style) — retrying is pointless
        assert last is not None
        return _PeerOutcome(
            failure=PeerFailure(
                asn=neighbor.asn, failure_class=last.failure_class,
                error=str(last)),
            circuit_open_skips=skips)

    def _dictionary_digest(self, ixp: str) -> Optional[str]:
        """The store's current community-dictionary digest for one IXP
        (None when there is no loadable dictionary), cached per
        campaign — scheme drift happens between runs, not within one."""
        if ixp not in self._dictionary_digests:
            digest: Optional[str] = None
            if self.store.has_dictionary(ixp):
                try:
                    digest = self.store.load_dictionary(ixp).digest()
                except IntegrityError:
                    digest = None
            self._dictionary_digests[ixp] = digest
        return self._dictionary_digests[ixp]

    def _checkpoint_scheme_drifted(self, target: CampaignTarget,
                                   checkpoint: Dict[str, Any]) -> bool:
        """True when the checkpoint was parked under a different
        community scheme than the store holds now. Legacy checkpoints
        (no recorded digest) cannot be verified and merge as before."""
        if "dictionary_digest" not in checkpoint:
            return False
        return (checkpoint.get("dictionary_digest")
                != self._dictionary_digest(target.ixp))

    def _save_checkpoint(self, target: CampaignTarget, captured_on: str,
                         peers: Dict[str, Dict[str, Any]],
                         report: TargetReport) -> None:
        payload = {
            "version": CHECKPOINT_VERSION,
            "ixp": target.ixp,
            "family": target.family,
            "captured_on": captured_on,
            # the community scheme this progress was interpreted under;
            # resume refuses to merge across a scheme change.
            "dictionary_digest": self._dictionary_digest(target.ixp),
            # ASN-sorted so checkpoint bytes do not depend on fetch
            # completion order under a worker pool.
            "peers": {asn: peers[asn]
                      for asn in sorted(peers, key=int)},
            "failures": [f.to_dict() for f in
                         sorted(report.failures, key=lambda f: f.asn)],
        }
        if obs.enabled():
            # a parked checkpoint carries the metrics that explain it
            payload["metrics"] = obs.snapshot()
        self.store.save_checkpoint(
            target.ixp, target.family, captured_on, payload)
        _METRICS().checkpoints.labels(
            target.ixp, str(target.family)).inc()

    def _build_snapshot(self, target: CampaignTarget, captured_on: str,
                        established: Sequence[NeighborSummary],
                        peers: Dict[str, Dict[str, Any]],
                        report: TargetReport) -> Snapshot:
        """Assemble the snapshot from the progress map.

        Deterministic by construction: members and routes are emitted
        in ASN order, membership covers exactly the collected peers
        (a failed peer is evidence lost, not a member observed — it is
        listed in ``meta`` only), and the meta block contains nothing
        that depends on request interleaving — so a ``workers=8`` run
        writes byte-identical snapshots to a serial one.
        """
        members: List[Member] = []
        routes: List[Route] = []
        filtered_count = 0
        # checkpointed peers that left the peer list since the first
        # run still belong to this date's snapshot.
        for asn in sorted(peers, key=int):
            entry = peers[asn]
            members.append(Member(
                asn=int(asn),
                name=entry.get("name", f"AS{asn}"),
                role=MemberRole.ACCESS_ISP,  # role is not observable
                at_rs_v4=target.family == 4,
                at_rs_v6=target.family == 6,
            ))
            routes.extend(Route.from_dict(r) for r in entry["routes"])
            filtered_count += int(entry.get("filtered", 0))
        failures = sorted(report.failures, key=lambda f: f.asn)
        failed = [f.asn for f in failures]
        return Snapshot(
            ixp=target.ixp,
            family=target.family,
            captured_on=captured_on,
            members=members,
            routes=routes,
            filtered_count=filtered_count,
            meta={
                "source": self.config.base_url,
                "peers_failed": failed,
                "peer_failure_classes": {
                    str(f.asn): f.failure_class for f in failures},
                "degraded": bool(failed),
                "campaign": {
                    "resumed_peers": report.peers_resumed,
                    "failure_counts": report.failure_counts,
                },
            },
        )

    def _note_breaker(self, target: CampaignTarget, report: TargetReport,
                      started: float) -> None:
        breaker = self.breakers.get(target.ixp, target.family)
        report.breaker_state = breaker.state
        report.breaker_opens = breaker.times_opened
        report.elapsed = self.clock() - started


def install_shutdown_handlers(
        campaign: CollectionCampaign,
        signals: Sequence[int] = (_signal.SIGINT, _signal.SIGTERM),
) -> Callable[[], None]:
    """Route SIGINT/SIGTERM into a graceful flush-checkpoint-then-park.

    The first signal calls :meth:`CollectionCampaign.request_shutdown`
    and immediately restores the previous handlers, so a second signal
    behaves as before (typically a hard ``KeyboardInterrupt``).
    Returns a restore callable for the non-signal exit paths. Signal
    handlers can only be installed from the main thread; callers on
    other threads get a no-op restore back.
    """
    previous: Dict[int, Any] = {}

    def restore() -> None:
        for signum, handler in previous.items():
            try:
                _signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        previous.clear()

    def handler(signum: int, _frame: Any) -> None:
        campaign.request_shutdown()
        restore()

    try:
        for signum in signals:
            previous[signum] = _signal.signal(signum, handler)
    except ValueError:  # not the main thread
        previous.clear()
    return restore
