"""Snapshot model: one (IXP, family, day) capture of route-server state.

Mirrors the paper's §3 data unit: "Each snapshot consists of a list of
member ASes in the RS and a list of routes", where every route carries
prefix, next-hop, AS-path and the three community lists. Snapshots are
JSON-serialisable for the on-disk dataset store.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..bgp.route import Route
from ..ixp.member import Member

#: top-level keys an on-disk snapshot payload must carry; the store's
#: schema-drift detection (see :mod:`repro.collector.integrity`)
#: rejects payloads missing any of them before deserialisation.
REQUIRED_PAYLOAD_KEYS = ("ixp", "family", "captured_on", "members",
                         "routes")


@dataclass
class Snapshot:
    """A daily capture of one IXP route server."""

    ixp: str                       # profile key, e.g. "decix-fra"
    family: int                    # 4 or 6
    captured_on: str               # ISO date
    members: List[Member] = field(default_factory=list)
    routes: List[Route] = field(default_factory=list)
    filtered_count: int = 0
    #: free-form provenance: generator seed, degradation flags, etc.
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.family not in (4, 6):
            raise ValueError(f"family must be 4 or 6, got {self.family}")
        # Normalise the date early so stores sort correctly: keep the
        # *parsed* canonical form, not the raw input — date.fromisoformat
        # accepts variants ("20211004", "2021-W40-1") whose raw strings
        # would not sort chronologically against "2021-10-04" names.
        self.captured_on = \
            _dt.date.fromisoformat(str(self.captured_on)).isoformat()

    # -- summary counters (the columns of Tables 3/4) -----------------
    #
    # Counters describe what the route server *accepted* — the paper's
    # unit of analysis. Routes retained with ``filtered=True`` (import-
    # filter rejects kept for forensics) are excluded everywhere and
    # surface only through :attr:`filtered_route_count`.

    @property
    def member_count(self) -> int:
        return len(self.members)

    def accepted_routes(self) -> List[Route]:
        """The routes that passed import filtering."""
        return [route for route in self.routes if not route.filtered]

    @property
    def route_count(self) -> int:
        return sum(1 for route in self.routes if not route.filtered)

    @property
    def filtered_route_count(self) -> int:
        """Routes rejected by import filters: those retained in
        :attr:`routes` with ``filtered=True`` plus
        :attr:`filtered_count` (rejects the collector observed but did
        not retain). The two sources are disjoint by construction."""
        retained = sum(1 for route in self.routes if route.filtered)
        return retained + self.filtered_count

    @property
    def prefix_count(self) -> int:
        return len({route.prefix for route in self.routes
                    if not route.filtered})

    @property
    def community_count(self) -> int:
        """Total community instances over accepted routes (all
        flavours)."""
        return sum(route.community_count for route in self.routes
                   if not route.filtered)

    def member_asns(self) -> List[int]:
        return sorted(member.asn for member in self.members)

    def routes_by_peer(self) -> Dict[int, List[Route]]:
        by_peer: Dict[int, List[Route]] = {}
        for route in self.routes:
            by_peer.setdefault(route.peer_asn, []).append(route)
        return by_peer

    def summary(self) -> Dict[str, int]:
        return {
            "members": self.member_count,
            "prefixes": self.prefix_count,
            "routes": self.route_count,
            "communities": self.community_count,
        }

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ixp": self.ixp,
            "family": self.family,
            "captured_on": self.captured_on,
            "members": [member.to_dict() for member in self.members],
            "routes": [route.to_dict() for route in self.routes],
            "filtered_count": self.filtered_count,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Snapshot":
        return cls(
            ixp=str(payload["ixp"]),
            family=int(payload["family"]),
            captured_on=str(payload["captured_on"]),
            members=[Member.from_dict(m) for m in payload.get("members", ())],
            routes=[Route.from_dict(r) for r in payload.get("routes", ())],
            filtered_count=int(payload.get("filtered_count", 0)),
            meta=dict(payload.get("meta", {})),
        )

    @property
    def key(self) -> str:
        """Unique snapshot identity within a dataset."""
        return f"{self.ixp}/v{self.family}/{self.captured_on}"


def snapshots_sorted(snapshots: Iterable[Snapshot]) -> List[Snapshot]:
    """Chronological order within (ixp, family) groups."""
    return sorted(snapshots,
                  key=lambda s: (s.ixp, s.family, s.captured_on))
