"""Collection substrate: snapshots, durable dataset store, integrity
and fsck tooling, sanitation, scraper, and fault-tolerant collection
campaigns."""

from .sanitation import (
    DEFAULT_DROP_THRESHOLD,
    SanitationReport,
    sanitise,
    sanitise_many,
    sanitise_store,
)
from . import mrt
from .campaign import (
    CampaignConfig,
    CampaignReport,
    CampaignTarget,
    CollectionCampaign,
    PeerFailure,
    TargetReport,
    install_shutdown_handlers,
)
from .dispatch import (
    DispatchConfig,
    DispatchCoordinator,
    DispatchReport,
    DispatchWorker,
    Lease,
    LeaseManager,
    WorkUnit,
    WorkerCrashSchedule,
)
from .fsck import FsckFinding, FsckReport, fsck_store
from .integrity import (
    DAMAGE_CLASSES,
    ChecksumMismatchError,
    CrashSchedule,
    IntegrityError,
    MalformedArtefactError,
    QuarantineRecord,
    SchemaDriftError,
    SimulatedCrash,
    TruncatedArtefactError,
    atomic_write,
)
from .manifest import Manifest
from .scraper import ScrapeReport, SnapshotScraper
from .snapshot import Snapshot, snapshots_sorted
from .store import QUARANTINE_DIR, REPORTS_DIR, DatasetStore

__all__ = [
    "Snapshot", "snapshots_sorted", "DatasetStore",
    "SnapshotScraper", "ScrapeReport", "mrt",
    "CollectionCampaign", "CampaignConfig", "CampaignTarget",
    "CampaignReport", "TargetReport", "PeerFailure",
    "install_shutdown_handlers",
    "SanitationReport", "sanitise", "sanitise_many", "sanitise_store",
    "DEFAULT_DROP_THRESHOLD",
    "IntegrityError", "TruncatedArtefactError",
    "MalformedArtefactError", "ChecksumMismatchError",
    "SchemaDriftError", "DAMAGE_CLASSES",
    "CrashSchedule", "SimulatedCrash", "QuarantineRecord",
    "atomic_write", "Manifest",
    "fsck_store", "FsckReport", "FsckFinding",
    "DispatchCoordinator", "DispatchConfig", "DispatchReport",
    "DispatchWorker", "LeaseManager", "Lease", "WorkUnit",
    "WorkerCrashSchedule",
    "QUARANTINE_DIR", "REPORTS_DIR",
]
