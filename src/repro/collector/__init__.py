"""Collection substrate: snapshots, dataset store, sanitation, scraper,
and fault-tolerant collection campaigns."""

from .sanitation import (
    DEFAULT_DROP_THRESHOLD,
    SanitationReport,
    sanitise,
    sanitise_many,
)
from . import mrt
from .campaign import (
    CampaignConfig,
    CampaignReport,
    CampaignTarget,
    CollectionCampaign,
    PeerFailure,
    TargetReport,
)
from .scraper import ScrapeReport, SnapshotScraper
from .snapshot import Snapshot, snapshots_sorted
from .store import DatasetStore

__all__ = [
    "Snapshot", "snapshots_sorted", "DatasetStore",
    "SnapshotScraper", "ScrapeReport", "mrt",
    "CollectionCampaign", "CampaignConfig", "CampaignTarget",
    "CampaignReport", "TargetReport", "PeerFailure",
    "SanitationReport", "sanitise", "sanitise_many",
    "DEFAULT_DROP_THRESHOLD",
]
