"""Multi-host chaos: two dispatch coordinators, one store, bad NFS.

Two :class:`DispatchCoordinator` instances with distinct host
identities (``hostA``/``hostB``) race over the same dataset store while
every worker's filesystem is wrapped in a seeded
:class:`FsFaultPlan` injecting the failure modes a shared NFS export
actually exhibits — transient EIO/ESTALE, the ambiguous
performed-but-errored ``link``, and delayed cross-host visibility.

The acceptance bar: no injected fault may quarantine good data or let
fenced/zombie output merge. After the dust settles the store must fsck
clean and the snapshots and analysis bundle must be byte-identical to
a fault-free serial run; every injected fault class must be visible in
the metrics registry.
"""

import json
import threading

import pytest

from repro import obs
from repro.collector import DatasetStore, fsck_store
from repro.collector.dispatch import (
    WORKER_STORAGE_EXIT,
    DispatchCoordinator,
    WorkUnit,
)
from repro.io.faultfs import FsFaultPlan, FsFaultRule
from repro.lg import LookingGlassServer

from .test_dispatch_chaos import (
    DATES,
    IXPS,
    _analysis_essence,
    _dispatch_config,
    _serial_control,
    _snapshot_essence,
    mounts,  # noqa: F401  (fixture re-export)
)


def _nfs_plan(seed=1):
    """Each worker subprocess gets a fresh copy of these rules — every
    fault class the shim knows, aimed at the paths the lease/commit
    protocol actually touches."""
    return FsFaultPlan(seed=seed, rules=[
        # the NFS retransmit hazard on the create-exclusive claim
        FsFaultRule(op="link", kind="ambiguous_link",
                    path_glob="*/leases/*", max_faults=1),
        # ... and on the snapshot publish link
        FsFaultRule(op="link", kind="ambiguous_link",
                    path_glob="*.json.gz", max_faults=1),
        # transient write error on the lease temp file
        FsFaultRule(op="write", kind="eio",
                    path_glob="*/leases/*", max_faults=1),
        # stale handle on a manifest read (retried)
        FsFaultRule(op="read", kind="estale",
                    path_glob="*MANIFEST.json", max_faults=1),
        # attribute-cache staleness: a fresh snapshot not visible yet
        FsFaultRule(op="exists", kind="hidden",
                    path_glob="*.json.gz", max_faults=1),
        # ... and a claim file missing from a lease dir listing
        FsFaultRule(op="listdir", kind="hidden",
                    path_glob="*/leases/*", max_faults=1),
        FsFaultRule(op="fsync", kind="eio", max_faults=1),
        FsFaultRule(op="open", kind="slow", delay=0.005, max_faults=2),
    ])


def _host_config(url, host, plan, **overrides):
    return _dispatch_config(
        url, workers=2, host_id=host, clock_skew_budget=0.5,
        lease_ttl=3.0,
        fs_fault_plan=json.loads(plan.to_json()) if plan else None,
        **overrides)


class TestTwoHostConvergence:
    def test_two_hosts_under_nfs_faults_converge(self, mounts,  # noqa: F811
                                                 tmp_path):
        obs.disable()
        registry = obs.enable()
        try:
            lg = LookingGlassServer(mounts, port=0,
                                    rate_per_second=100_000,
                                    burst=100_000)
            with lg.serve() as url:
                store_root = tmp_path / "shared"
                store = DatasetStore(store_root)

                reports = {}

                def run_host(host):
                    coordinator = DispatchCoordinator(
                        DatasetStore(store_root),
                        _host_config(url, host, _nfs_plan()))
                    reports[host] = coordinator.run()

                threads = [threading.Thread(target=run_host,
                                            args=(host,))
                           for host in ("hostA", "hostB")]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=300)
                assert reports, "no coordinator finished"

                # chaos may park a round resumable — resume fault-free
                # until both hosts agree the campaign is complete
                for _round in range(5):
                    if all(r.complete for r in reports.values()):
                        break
                    for host in ("hostA", "hostB"):
                        if not reports[host].complete:
                            reports[host] = DispatchCoordinator(
                                DatasetStore(store_root),
                                _host_config(url, host, None)).run()
                assert all(r.complete for r in reports.values()), \
                    {h: r.to_dict() for h, r in reports.items()}

                # quiesced store: fsck-clean, no quarantined good data
                report = fsck_store(store)
                assert report.clean, report.format_summary()
                assert not store.quarantine_records()

                # byte-identical to the fault-free serial control
                control_root = tmp_path / "control"
                _serial_control(url, control_root)
                for ixp in IXPS:
                    for date in DATES:
                        assert (_snapshot_essence(store_root, ixp,
                                                  date)
                                == _snapshot_essence(control_root,
                                                     ixp, date)), \
                            f"{ixp}/{date} diverged under faults"
                assert (_analysis_essence(store_root)
                        == _analysis_essence(control_root))

                # every injected fault class surfaced in the reports
                # and the registry (coordinator folds worker counts in)
                combined = {}
                for host_report in reports.values():
                    for key, value in host_report.fs_faults.items():
                        combined[key] = combined.get(key, 0) + value
                kinds = {key.partition(":")[2] for key in combined}
                assert "ambiguous_link" in kinds, combined
                assert {"eio", "estale"} & kinds, combined
                for key, value in combined.items():
                    op, _, kind = key.partition(":")
                    assert registry.value("repro_fs_faults_total",
                                          op, kind) >= value
        finally:
            obs.disable()


class TestStorageParking:
    def test_enospc_parks_the_worker_not_the_data(self, mounts,  # noqa: F811
                                                  tmp_path):
        """A full export must park the worker (exit 2) — no spin, no
        quarantine — and a later fault-free resume completes."""
        obs.disable()
        registry = obs.enable()
        try:
            lg = LookingGlassServer(mounts, port=0,
                                    rate_per_second=100_000,
                                    burst=100_000)
            with lg.serve() as url:
                store_root = tmp_path / "full-disk"
                store = DatasetStore(store_root)
                plan = FsFaultPlan(rules=[
                    FsFaultRule(op="write", kind="enospc",
                                path_glob="*/leases/*",
                                max_faults=1_000_000)])
                report = DispatchCoordinator(
                    store,
                    _host_config(url, "hostA", plan,
                                 worker_restarts=3)).run()
                assert not report.complete
                assert report.worker_parks >= 1
                # parked workers are not burned restarts
                assert report.worker_crashes == 0
                assert registry.value(
                    "repro_dispatch_workers_parked_total") >= 1
                assert not store.quarantine_records()

                resumed = DispatchCoordinator(
                    store, _host_config(url, "hostA", None)).run()
                assert resumed.complete, resumed.to_dict()
                assert fsck_store(store).clean
        finally:
            obs.disable()

    def test_storage_exit_code_is_distinct(self):
        assert WORKER_STORAGE_EXIT == 2
