"""Concurrency determinism chaos: worker pools must not change WHAT a
campaign collects, only how fast.

Three contracts, each driven over real HTTP against the simulated LG:

1. **byte determinism under faults** — the same world and the same
   :class:`FaultSchedule` collected serially, with ``workers=8``, and
   with the ``io="async"`` event-loop engine must produce byte-identical
   snapshot files, equivalent reports, and identical analysis output
   (``Study.table1``);
2. **crash/resume under concurrency** — a pooled campaign killed at a
   checkpoint boundary must leave a repairable store and a resumable
   checkpoint, and ``--resume`` with a pool must converge to the
   uninterrupted control snapshot;
3. **fault survival under concurrency** — an outage window plus
   malformed payloads against a pooled campaign must end in a defined
   terminal state with the failure taxonomy fully reported, exactly as
   the serial engine does.

The byte test recycles the first server's port for the second run so
both snapshots record the same ``meta["source"]`` URL.
"""

import pytest

from repro.collector import (
    CrashSchedule,
    DatasetStore,
    SimulatedCrash,
    fsck_store,
)
from repro.collector.campaign import (
    STATUS_COMPLETE,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_INCOMPLETE,
    CampaignConfig,
    CampaignTarget,
    CollectionCampaign,
)
from repro.core import Study
from repro.lg import FaultSchedule, LookingGlassServer
from repro.lg.client import FAILURE_CLASSES

DATE = "2021-10-04"


def make_campaign(store, url, workers=1, **kwargs):
    """A real-clock campaign tuned so fault recovery is fast: tiny
    backoff, a breaker that re-probes within 50ms, and a generous
    per-peer budget so transient fault windows cannot permanently
    lose a peer."""
    kwargs.setdefault("peer_attempts", 4)
    kwargs.setdefault("breaker_reset", 0.05)
    config = CampaignConfig(
        base_url=url,
        targets=[CampaignTarget(ixp="linx", family=4)],
        captured_on=DATE,
        checkpoint_every=4,
        workers=workers,
        backoff_base=0.001,
        backoff_cap=0.01,
        **kwargs)
    return CollectionCampaign(store, config)


def start_server(route_server, faults=None, port=0, **kwargs):
    kwargs.setdefault("rate_per_second", 100_000)
    kwargs.setdefault("burst", 100_000)
    return LookingGlassServer({("linx", 4): route_server},
                              faults=faults, port=port, **kwargs)


def report_essence(report):
    """The report fields that must be identical across worker counts —
    everything except wall-clock timings."""
    payload = report.to_dict()
    for target in payload["targets"]:
        target.pop("elapsed")
        target.pop("snapshot_path")  # differs only by store root
    return payload


#: fetch-engine grid: label → extra campaign kwargs. Serial threads is
#: the control every other engine must be byte-equal to.
ENGINES = {
    "threads-8": {"workers": 8},
    "async": {"io": "async", "max_inflight": 8},
}


class TestByteDeterminism:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_engines_write_identical_bytes_under_faults(
            self, lg_world, tmp_path, engine):
        """Same seed, same FaultSchedule → the concurrent engine's
        snapshot file, report, and analysis tables equal the serial
        run's. Faults land on *different* requests per engine (request
        order differs), but every malformed payload is retried to
        recovery, so all engines converge to the same complete bytes."""
        _generator, route_server = lg_world("linx")
        stores = {}
        reports = {}
        port = 0
        for label, kwargs in (("serial", {"workers": 1}),
                              (engine, ENGINES[engine])):
            # a fresh schedule per run: the fault counter is part of
            # the "same inputs" contract
            faults = FaultSchedule(malformed_every=7)
            server = start_server(route_server, faults=faults, port=port)
            store = DatasetStore(tmp_path / label)
            with server.serve() as url:
                reports[label] = make_campaign(
                    store, url, **kwargs).run()
            # recycle the ephemeral port so both snapshots carry the
            # same source URL
            port = server.port
            stores[label] = store

        assert reports["serial"].complete and reports[engine].complete
        assert report_essence(reports[engine]) \
            == report_essence(reports["serial"])

        serial_bytes = stores["serial"]._snapshot_path(
            "linx", 4, DATE).read_bytes()
        engine_bytes = stores[engine]._snapshot_path(
            "linx", 4, DATE).read_bytes()
        assert engine_bytes == serial_bytes

        tables = {
            label: Study.from_store(stores[label], ixps=("linx",),
                                    families=(4,)).table1()
            for label in ("serial", engine)}
        assert tables[engine] == tables["serial"]


class TestConcurrentCrashSweep:
    def test_pooled_campaign_crash_at_checkpoint_then_resume(
            self, lg_world, tmp_path):
        """Kill a ``workers=4`` campaign at successive checkpoint
        boundaries; every resume (also pooled) must converge to the
        uninterrupted control."""
        _generator, route_server = lg_world("linx")
        server = start_server(route_server)
        with server.serve() as url:
            control_store = DatasetStore(tmp_path / "control")
            control = make_campaign(control_store, url, workers=4).run()
            assert control.complete
            control_snapshot = control_store.load_snapshot(
                "linx", 4, DATE)
            control_rows = Study.from_store(
                control_store, ixps=("linx",), families=(4,)).table1()

            for occurrence in (1, 2, 3):
                store = DatasetStore(
                    tmp_path / f"crash{occurrence}",
                    crash_schedule=CrashSchedule(
                        label="checkpoint:temp",
                        occurrence=occurrence))
                with pytest.raises(SimulatedCrash):
                    make_campaign(store, url, workers=4).run()
                store.crash_schedule = None

                fsck_store(store, repair=True)
                assert fsck_store(store).clean, occurrence

                resumed = make_campaign(store, url,
                                        workers=4).run(resume=True)
                assert resumed.complete, occurrence
                snapshot = store.load_snapshot("linx", 4, DATE)
                assert snapshot.summary() == control_snapshot.summary()
                rows = Study.from_store(store, ixps=("linx",),
                                        families=(4,)).table1()
                assert rows == control_rows, occurrence


class TestConcurrentFaultSurvival:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_concurrent_campaign_survives_outage_and_malformed(
            self, lg_world, tmp_path, engine):
        """An outage window long enough to trip the breaker, plus
        periodic malformed payloads, against a concurrent engine
        sharing one client/breaker: the run must end in a defined state
        with the taxonomy fully reported — never an unhandled
        exception."""
        _generator, route_server = lg_world("linx")
        faults = FaultSchedule(outage_windows=[(5, 13)],
                               malformed_every=17)
        server = start_server(route_server, faults=faults,
                              rate_per_second=2000, burst=25)
        store = DatasetStore(tmp_path / "ds")
        with server.serve() as url:
            report = make_campaign(store, url,
                                   max_retries=1,
                                   breaker_threshold=2,
                                   **ENGINES[engine]).run()
        target = report.targets[0]
        assert target.status in (STATUS_COMPLETE, STATUS_DEGRADED,
                                 STATUS_INCOMPLETE, STATUS_FAILED)
        assert set(report.failure_counts) == set(FAILURE_CLASSES)
        if target.status in (STATUS_COMPLETE, STATUS_DEGRADED):
            snapshot = store.load_snapshot("linx", 4, DATE)
            assert set(snapshot.meta["campaign"]["failure_counts"]) \
                == set(FAILURE_CLASSES)
            # degraded membership only covers collected peers
            failed = set(snapshot.meta["peers_failed"])
            assert failed.isdisjoint(snapshot.member_asns())
