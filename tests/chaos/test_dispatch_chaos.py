"""Chaos harness for the distributed dispatch engine.

The acceptance bar (ISSUE 6): with ``WorkerCrashSchedule`` killing
workers at *distinct* boundaries — mid-unit, mid-checkpoint,
mid-lease-renewal, and pre-commit — a resumed ``--dispatch 4``
campaign must produce a store that fscks clean and an analysis bundle
byte-identical to a fault-free ``workers=1`` run. Workers die via
``os._exit`` (no ``finally``, no ``atexit`` — exactly a kill -9), so
everything the protocol guarantees must come from what is on disk:
lease files, fencing tokens, staged shards, and checkpoints.
"""

import json
from pathlib import Path

import pytest

from repro.collector import DatasetStore, fsck_store
from repro.collector.campaign import (
    CampaignConfig,
    CampaignTarget,
    CollectionCampaign,
)
from repro.collector.dispatch import (
    UNIT_COMPLETE,
    WORKER_CRASH_EXIT,
    DispatchConfig,
    DispatchCoordinator,
    WorkerCrashSchedule,
    WorkUnit,
)
from repro.core import Study
from repro.lg import LookingGlassServer

DATES = ("2021-10-04", "2021-10-05")
IXPS = ("bcix", "linx")
FAMILY = 4


@pytest.fixture(scope="module")
def mounts(lg_world):
    return {(ixp, FAMILY): lg_world(ixp, FAMILY)[1] for ixp in IXPS}


def _units():
    return [WorkUnit(ixp=ixp, family=FAMILY, date=date)
            for ixp in IXPS for date in DATES]


def _dispatch_config(url, **overrides):
    defaults = dict(
        base_url=url,
        units=_units(),
        workers=4,
        lease_ttl=2.0,
        heartbeat_interval=0.1,
        checkpoint_every=4,
        breaker_reset=0.05,
        backoff_base=0.001,
        backoff_cap=0.01,
        steal_backoff_base=0.005,
        steal_backoff_cap=0.05,
    )
    defaults.update(overrides)
    return DispatchConfig(**defaults)


def _serial_control(url, store_root):
    """The fault-free workers=1 reference: one serial campaign per
    date over the same mounts."""
    store = DatasetStore(store_root)
    for date in DATES:
        config = CampaignConfig(
            base_url=url,
            targets=[CampaignTarget(ixp=ixp, family=FAMILY)
                     for ixp in IXPS],
            captured_on=date,
            checkpoint_every=4,
            breaker_reset=0.05,
            backoff_base=0.001,
            backoff_cap=0.01,
        )
        report = CollectionCampaign(store, config).run()
        assert all(t.status == "complete" for t in report.targets)
    return store


def _snapshot_essence(store_root, ixp, date):
    """One snapshot's canonical payload bytes, minus the campaign
    provenance block (``meta.campaign`` records how many peers a run
    *resumed from a checkpoint* — a resumed run honestly reports a
    different history than a fault-free one, while every observation
    — members, routes, filters, failures — must be identical)."""
    import gzip

    raw = (Path(store_root) / ixp / f"v{FAMILY}"
           / f"{date}.json.gz").read_bytes()
    payload = json.loads(gzip.decompress(raw))["payload"]
    payload["meta"] = {key: value for key, value
                       in payload["meta"].items() if key != "campaign"}
    return json.dumps(payload, sort_keys=True)


def _analysis_essence(store_root):
    """A canonical analysis bundle (the paper tables) computed from a
    store — byte-compared across runs."""
    from repro.core.export import study_rows

    study = Study.from_store(DatasetStore(store_root),
                             ixps=list(IXPS), families=[FAMILY])
    return json.dumps(study_rows(study, families=[FAMILY]),
                      sort_keys=True, default=str)


class TestWorkerKillConvergence:
    def test_three_boundary_kills_then_resume_converges(
            self, mounts, tmp_path):
        """Kill 4 workers at 4 distinct boundaries; the first run
        parks, the resumed run converges: fsck-clean store, analysis
        bundle byte-identical to the fault-free serial control."""
        lg = LookingGlassServer(mounts, port=0,
                                rate_per_second=100_000,
                                burst=100_000)
        with lg.serve() as url:
            store_root = tmp_path / "chaos"
            store = DatasetStore(store_root)

            plan = (WorkerCrashSchedule()
                    .kill(0, "unit:claimed")          # mid-unit
                    .kill(1, "checkpoint:temp",
                          occurrence=2)               # mid-checkpoint
                    .kill(2, "lease:temp")            # mid-renewal
                    .kill(3, "unit:collected"))       # pre-commit
            config = _dispatch_config(url, crash_plan=plan,
                                      worker_restarts=0)
            report = DispatchCoordinator(store, config).run()
            # every worker died at its boundary; no restarts allowed,
            # so the campaign parks resumable
            assert report.worker_crashes == 4
            assert report.fsck_clean is True
            assert not report.complete

            # resume: same store, no crash plan, fresh workers
            resumed = DispatchCoordinator(
                store, _dispatch_config(url, workers=4)).run()
            assert resumed.complete, resumed.to_dict()
            assert resumed.fsck_clean is True
            # at least one unit was reclaimed from a dead holder's
            # expired lease (worker 3 died holding an unreleased one)
            assert resumed.totals["leases_stolen"] >= 1

            control_root = tmp_path / "control"
            _serial_control(url, control_root)
            for ixp in IXPS:
                for date in DATES:
                    chaotic = _snapshot_essence(store_root, ixp, date)
                    serial = _snapshot_essence(control_root, ixp, date)
                    assert chaotic == serial, \
                        f"{ixp}/{date} diverged from serial control"
            assert (_analysis_essence(store_root)
                    == _analysis_essence(control_root))

    def test_coordinator_restarts_crashed_workers_to_completion(
            self, mounts, tmp_path):
        """With a restart budget, a single coordinator run absorbs the
        kills and still converges without a manual resume."""
        lg = LookingGlassServer(mounts, port=0,
                                rate_per_second=100_000,
                                burst=100_000)
        with lg.serve() as url:
            store = DatasetStore(tmp_path / "ds")
            plan = (WorkerCrashSchedule()
                    .kill(0, "unit:claimed")
                    .kill(1, "checkpoint:temp", occurrence=2))
            config = _dispatch_config(url, workers=2, crash_plan=plan,
                                      worker_restarts=4)
            report = DispatchCoordinator(store, config).run()
            assert report.complete, report.to_dict()
            assert report.worker_crashes >= 2
            assert report.worker_restarts >= 2
            assert report.fsck_clean is True
            assert all(unit.status == UNIT_COMPLETE
                       for unit in report.units)

    def test_async_engine_crash_then_park_then_resume_converges(
            self, mounts, tmp_path):
        """The async fetch engine under the dispatch protocol: workers
        collecting with ``io="async"`` are killed at distinct
        boundaries, the run parks resumable, and an async resume
        converges to the serial (threads) control — the event-loop
        engine must survive the exact same crash/park round-trip the
        pooled engine does, including the config round-trip into the
        worker subprocess environment."""
        lg = LookingGlassServer(mounts, port=0,
                                rate_per_second=100_000,
                                burst=100_000)
        with lg.serve() as url:
            store_root = tmp_path / "chaos-async"
            store = DatasetStore(store_root)

            plan = (WorkerCrashSchedule()
                    .kill(0, "unit:claimed")           # mid-unit
                    .kill(1, "checkpoint:temp"))       # mid-checkpoint
            config = _dispatch_config(url, workers=2, crash_plan=plan,
                                      worker_restarts=0,
                                      io="async", max_inflight=8)
            report = DispatchCoordinator(store, config).run()
            assert report.worker_crashes == 2
            assert report.fsck_clean is True
            assert not report.complete

            resumed = DispatchCoordinator(
                store, _dispatch_config(url, workers=2,
                                        io="async",
                                        max_inflight=8)).run()
            assert resumed.complete, resumed.to_dict()
            assert resumed.fsck_clean is True
            assert all(unit.status == UNIT_COMPLETE
                       for unit in resumed.units)

            control_root = tmp_path / "control-async"
            _serial_control(url, control_root)
            for ixp in IXPS:
                for date in DATES:
                    chaotic = _snapshot_essence(store_root, ixp, date)
                    serial = _snapshot_essence(control_root, ixp, date)
                    assert chaotic == serial, \
                        f"{ixp}/{date} diverged from serial control"
            assert (_analysis_essence(store_root)
                    == _analysis_essence(control_root))

    def test_crash_exit_code_is_distinct(self):
        # chaos shell scripts key on this to tell a worker kill from a
        # store-level crash boundary (86)
        assert WORKER_CRASH_EXIT == 87
