"""Corruption chaos: damage artefacts in every way the taxonomy
names, then assert fsck finds *exactly* that damage and the analysis
degrades to missing-day semantics instead of crashing."""

import pytest

from repro.collector import DatasetStore, fsck_store
from repro.core import Study

from .conftest import flip_trailer_bit, overwrite_garbage, truncate

DAYS = (0, 7, 14, 21, 28)


@pytest.fixture()
def store(tmp_path, linx_generator):
    store = DatasetStore(tmp_path / "dataset")
    store.save_dictionary("linx", linx_generator.dictionary)
    for day in DAYS:
        store.save_snapshot(linx_generator.snapshot(4, day,
                                                    degraded=False))
    return store


def snapshot_paths(store):
    return sorted((store.root / "linx" / "v4").glob("*.json.gz"))


class TestFsckFindsExactlyTheDamage:
    def test_mixed_corruption_is_fully_classified(self, store):
        paths = snapshot_paths(store)
        truncate(paths[0])
        flip_trailer_bit(paths[1])
        overwrite_garbage(paths[2])
        paths[3].unlink()

        report = fsck_store(store)
        counts = {cls: count for cls, count in report.counts.items()
                  if count}
        assert counts == {"truncated": 1, "checksum_mismatch": 1,
                          "malformed": 1, "missing_file": 1}
        flagged = {f.path for f in report.findings}
        assert flagged == {p.relative_to(store.root).as_posix()
                          for p in paths[:4]}

    def test_repair_round_trip(self, store):
        paths = snapshot_paths(store)
        truncate(paths[0])
        overwrite_garbage(paths[2])

        assert not fsck_store(store, repair=True).clean
        after = fsck_store(store)
        assert after.clean, after.format_summary()
        # the two damaged files live on in quarantine with records
        records = store.quarantine_records()
        assert len(records) == 2
        for record in records:
            assert (store.root / record.moved_to).exists()
        # the three healthy days still load and verify
        assert len(list(store.iter_snapshots("linx", 4))) == 3

    def test_untouched_store_stays_clean(self, store):
        report = fsck_store(store)
        assert report.clean
        assert report.verified == len(DAYS) + 1  # + dictionary


class TestAnalysisDegradesGracefully:
    def test_damaged_latest_falls_back_a_week(self, store,
                                              linx_generator):
        latest = snapshot_paths(store)[-1]
        truncate(latest)
        damaged = []
        study = Study.from_store(store, ixps=("linx",), families=(4,),
                                 damaged=damaged)
        # the analysis ran over the previous collection day
        assert study.snapshots[("linx", 4)].captured_on \
            == linx_generator.snapshot(4, DAYS[-2]).captured_on
        assert [r.damage_class for r in damaged] == ["truncated"]
        # and the file was quarantined, not deleted
        assert not latest.exists()
        assert store.quarantine_records()

    def test_damaged_dictionary_falls_back_to_scheme(self, store):
        overwrite_garbage(store.root / "linx" / "dictionary.json")
        damaged = []
        study = Study.from_store(store, ixps=("linx",), families=(4,),
                                 damaged=damaged)
        # analysis still classifies via the IXP's documented scheme
        assert study.dictionaries["linx"] is not None
        assert study.table1()
        assert [r.damage_class for r in damaged] == ["malformed"]

    def test_sanitation_treats_quarantined_as_missing(self, store):
        from repro.collector import sanitise_store

        truncate(snapshot_paths(store)[1])
        report = sanitise_store(store, "linx", 4)
        assert len(report.quarantined) == 1
        assert len(report.kept) + len(report.removed) == len(DAYS) - 1
