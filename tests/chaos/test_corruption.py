"""Corruption chaos: damage artefacts in every way the taxonomy
names, then assert fsck finds *exactly* that damage and the analysis
degrades to missing-day semantics instead of crashing."""

import pytest

from repro.collector import DatasetStore, fsck_store
from repro.core import Study
from repro.core.engine import AggregateCache

from .conftest import flip_trailer_bit, overwrite_garbage, truncate

DAYS = (0, 7, 14, 21, 28)


@pytest.fixture()
def store(tmp_path, linx_generator):
    store = DatasetStore(tmp_path / "dataset")
    store.save_dictionary("linx", linx_generator.dictionary)
    for day in DAYS:
        store.save_snapshot(linx_generator.snapshot(4, day,
                                                    degraded=False))
    return store


def snapshot_paths(store):
    return sorted((store.root / "linx" / "v4").glob("*.json.gz"))


class TestFsckFindsExactlyTheDamage:
    def test_mixed_corruption_is_fully_classified(self, store):
        paths = snapshot_paths(store)
        truncate(paths[0])
        flip_trailer_bit(paths[1])
        overwrite_garbage(paths[2])
        paths[3].unlink()

        report = fsck_store(store)
        counts = {cls: count for cls, count in report.counts.items()
                  if count}
        assert counts == {"truncated": 1, "checksum_mismatch": 1,
                          "malformed": 1, "missing_file": 1}
        flagged = {f.path for f in report.findings}
        assert flagged == {p.relative_to(store.root).as_posix()
                          for p in paths[:4]}

    def test_repair_round_trip(self, store):
        paths = snapshot_paths(store)
        truncate(paths[0])
        overwrite_garbage(paths[2])

        assert not fsck_store(store, repair=True).clean
        after = fsck_store(store)
        assert after.clean, after.format_summary()
        # the two damaged files live on in quarantine with records
        records = store.quarantine_records()
        assert len(records) == 2
        for record in records:
            assert (store.root / record.moved_to).exists()
        # the three healthy days still load and verify
        assert len(list(store.iter_snapshots("linx", 4))) == 3

    def test_untouched_store_stays_clean(self, store):
        report = fsck_store(store)
        assert report.clean
        assert report.verified == len(DAYS) + 1  # + dictionary


class TestCacheCorruptionMatrix:
    """The §4/§5 corruption matrix extended to aggregate-cache
    artefacts: cache damage is found exactly, co-exists with snapshot
    damage, and can never alter analysis output."""

    @pytest.fixture()
    def warm_store(self, store):
        study = Study.from_store(store, ixps=("linx",), families=(4,),
                                 cache=AggregateCache(store))
        study.table1()
        study.aggregates(4)  # triggers write-back of the cache entry
        return store

    def cache_paths(self, store):
        return sorted((store.root / "linx" / "cache")
                      .glob("*.agg.json.gz"))

    def test_mixed_damage_with_cache_is_fully_classified(
            self, warm_store):
        snapshot = snapshot_paths(warm_store)[0]
        cache_entry = self.cache_paths(warm_store)[0]
        truncate(snapshot)
        flip_trailer_bit(cache_entry)

        report = fsck_store(warm_store)
        counts = {cls: count for cls, count in report.counts.items()
                  if count}
        assert counts == {"truncated": 1, "checksum_mismatch": 1}
        by_path = {f.path: f.kind for f in report.findings}
        assert by_path == {
            snapshot.relative_to(warm_store.root).as_posix(): "snapshot",
            cache_entry.relative_to(warm_store.root).as_posix():
                "aggregate"}

    @pytest.mark.parametrize("damage", [truncate, flip_trailer_bit,
                                        overwrite_garbage])
    def test_cache_damage_never_changes_output(self, warm_store, damage):
        def run():
            study = Study.from_store(warm_store, ixps=("linx",),
                                     families=(4,),
                                     cache=AggregateCache(warm_store))
            return (study.table1(), study.ixp_defined_vs_unknown(4),
                    study.action_vs_informational(4),
                    study.table2(4), study.ineffective_summary(4))

        pristine = run()
        damage(self.cache_paths(warm_store)[0])
        assert run() == pristine
        # the damaged entry went to quarantine and a fresh, healthy
        # one was republished: a follow-up fsck is clean again
        assert warm_store.quarantine_records()
        assert fsck_store(warm_store).clean

    def test_repair_quarantines_cache_and_round_trips(self, warm_store):
        overwrite_garbage(self.cache_paths(warm_store)[0])
        first = fsck_store(warm_store, repair=True)
        assert [f.kind for f in first.findings] == ["aggregate"]
        assert [f.action for f in first.findings] == ["quarantined"]
        assert fsck_store(warm_store).clean


class TestAnalysisDegradesGracefully:
    def test_damaged_latest_falls_back_a_week(self, store,
                                              linx_generator):
        latest = snapshot_paths(store)[-1]
        truncate(latest)
        damaged = []
        study = Study.from_store(store, ixps=("linx",), families=(4,),
                                 damaged=damaged)
        # the analysis ran over the previous collection day
        assert study.snapshots[("linx", 4)].captured_on \
            == linx_generator.snapshot(4, DAYS[-2]).captured_on
        assert [r.damage_class for r in damaged] == ["truncated"]
        # and the file was quarantined, not deleted
        assert not latest.exists()
        assert store.quarantine_records()

    def test_damaged_dictionary_falls_back_to_scheme(self, store):
        overwrite_garbage(store.root / "linx" / "dictionary.json")
        damaged = []
        study = Study.from_store(store, ixps=("linx",), families=(4,),
                                 damaged=damaged)
        # analysis still classifies via the IXP's documented scheme
        assert study.dictionaries["linx"] is not None
        assert study.table1()
        assert [r.damage_class for r in damaged] == ["malformed"]

    def test_sanitation_treats_quarantined_as_missing(self, store):
        from repro.collector import sanitise_store

        truncate(snapshot_paths(store)[1])
        report = sanitise_store(store, "linx", 4)
        assert len(report.quarantined) == 1
        assert len(report.kept) + len(report.removed) == len(DAYS) - 1
