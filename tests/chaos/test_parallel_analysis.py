"""Parallel-analysis determinism: ``jobs=8`` must be value-identical
to ``jobs=1`` — same figure/table rows, byte-identical export bundle,
same pipeline row accounting — including over stores with damaged
days that degrade to quarantine-and-fall-back."""

import json

import pytest

from repro import obs
from repro.collector import DatasetStore
from repro.core import Study
from repro.core.export import study_rows

from .conftest import truncate

DAYS = (0, 7, 14)


def build_store(root, generators):
    store = DatasetStore(root)
    for generator in generators:
        store.save_dictionary(generator.profile.key,
                              generator.dictionary)
        for day in DAYS:
            for family in (4, 6):
                store.save_snapshot(generator.snapshot(
                    family, day, degraded=False))
    return store


def bundle_bytes(study):
    return json.dumps(study_rows(study), sort_keys=True).encode()


@pytest.fixture()
def generators(linx_generator, decix_generator):
    return (linx_generator, decix_generator)


@pytest.fixture()
def ixps(generators):
    return tuple(g.profile.key for g in generators)


class TestParallelDeterminism:
    def test_store_analysis_is_byte_identical(self, tmp_path,
                                              generators, ixps):
        store = build_store(tmp_path / "ds", generators)
        serial = Study.from_store(store, ixps=ixps, jobs=1)
        parallel = Study.from_store(store, ixps=ixps, jobs=8)
        assert parallel.keys() == serial.keys()
        assert bundle_bytes(parallel) == bundle_bytes(serial)

    def test_synthetic_analysis_is_byte_identical(self, ixps):
        serial = Study.synthetic(ixps=ixps, scale=0.012, seed=99,
                                 jobs=1)
        parallel = Study.synthetic(ixps=ixps, scale=0.012, seed=99,
                                   jobs=8)
        assert bundle_bytes(parallel) == bundle_bytes(serial)

    def test_identical_with_degraded_days(self, tmp_path, generators,
                                          ixps):
        # two equally-damaged stores: the generator is deterministic,
        # and quarantining mutates a store, so each mode gets its own
        def damaged_store(name):
            store = build_store(tmp_path / name, generators)
            latest = sorted((store.root / ixps[0] / "v4")
                            .glob("*.json.gz"))[-1]
            truncate(latest)
            return store

        records = {}
        bundles = {}
        for jobs in (1, 8):
            store = damaged_store(f"ds-jobs{jobs}")
            damaged = []
            study = Study.from_store(store, ixps=ixps, jobs=jobs,
                                     damaged=damaged)
            bundles[jobs] = bundle_bytes(study)
            records[jobs] = sorted(
                (r.damage_class, r.original) for r in damaged)
            # both modes quarantined the broken day on disk
            assert store.quarantine_records()
        assert bundles[8] == bundles[1]
        assert records[8] == records[1]
        assert [cls for cls, _ in records[1]] == ["truncated"]


class TestParallelRowAccounting:
    def canonical(self, report):
        rows = report["metrics"].get("repro_pipeline_rows_total", {})
        samples = sorted(
            (tuple(sorted(s["labels"].items())), s["value"])
            for s in rows.get("samples", []))
        spans = sorted({t["name"] for t in report["traces"]})
        return (samples, spans)

    def run(self, store, ixps, jobs):
        obs.enable()
        try:
            study = Study.from_store(store, ixps=ixps, jobs=jobs)
            bundle = bundle_bytes(study)
            report = obs.build_run_report("pipeline")
            return bundle, self.canonical(report)
        finally:
            obs.disable()
            obs.reset()

    def test_row_counters_and_spans_match(self, tmp_path, generators,
                                          ixps):
        store = build_store(tmp_path / "ds", generators)
        serial_bundle, serial_canon = self.run(store, ixps, jobs=1)
        parallel_bundle, parallel_canon = self.run(store, ixps, jobs=8)
        assert parallel_bundle == serial_bundle
        assert parallel_canon == serial_canon
        # the load stage counts the study's keys, not a TypeError
        # fallback of 1: two IXPs x two families
        samples, _spans = serial_canon
        load_rows = [value for labels, value in samples
                     if dict(labels).get("stage") == "load_store"]
        assert load_rows == [float(len(ixps) * 2)]
