"""Crash chaos: kill a collection campaign at every kind of write
boundary, then prove the durability contract:

1. no partially written artefact is ever visible (fsck finds no
   content damage — at most orphan temp debris and stale manifest
   entries);
2. ``fsck --repair`` heals the store to clean;
3. ``--resume`` completes the campaign and the final snapshot is
   identical to an uninterrupted control run.

The in-process sweep uses :class:`SimulatedCrash`; one subprocess test
uses ``action="exit"`` (``os._exit`` — no ``finally``, no ``atexit``,
exactly like a kill -9) against the parent process's LG server.
"""

import subprocess
import sys
import types
from pathlib import Path

import pytest

from repro.collector import (
    CrashSchedule,
    DatasetStore,
    SimulatedCrash,
    fsck_store,
)
from repro.collector.campaign import (
    CampaignConfig,
    CampaignTarget,
    CollectionCampaign,
)
from repro.core import Study
from repro.lg import LookingGlassServer

DATE = "2021-10-04"

#: damage that would mean a torn artefact became visible — the sweep
#: must never produce these (debris and stale ledgers are expected).
CONTENT_DAMAGE = {"truncated", "malformed", "checksum_mismatch",
                  "schema_drift"}


def make_campaign(store, url):
    config = CampaignConfig(
        base_url=url,
        targets=[CampaignTarget(ixp="linx", family=4)],
        captured_on=DATE,
        checkpoint_every=2)
    return CollectionCampaign(store, config)


@pytest.fixture(scope="module")
def world(lg_world, tmp_path_factory):
    """A live LG plus one uninterrupted control run whose recording
    CrashSchedule enumerates every write boundary a campaign hits."""
    _generator, route_server = lg_world("linx")
    server = LookingGlassServer({("linx", 4): route_server},
                                rate_per_second=100_000, burst=100_000)
    with server.serve() as url:
        store = DatasetStore(tmp_path_factory.mktemp("chaos") / "ctl",
                             crash_schedule=CrashSchedule())
        report = make_campaign(store, url).run()
        assert report.complete
        yield types.SimpleNamespace(
            url=url,
            store=store,
            control=store.load_snapshot("linx", 4, DATE),
            boundaries=list(store.crash_schedule.log))


class TestInProcessCrashSweep:
    def test_crash_at_each_boundary_kind_then_resume(self, world,
                                                     tmp_path):
        distinct = list(dict.fromkeys(world.boundaries))
        assert {label.split(":")[0] for label in distinct} \
            >= {"checkpoint", "snapshot", "manifest"}
        control_rows = Study.from_store(
            world.store, ixps=("linx",), families=(4,)).table1()

        for index, label in enumerate(distinct):
            store = DatasetStore(
                tmp_path / f"crash{index}",
                crash_schedule=CrashSchedule(label=label, occurrence=1))
            with pytest.raises(SimulatedCrash):
                make_campaign(store, world.url).run()
            store.crash_schedule = None

            # 1. atomicity: whatever the crash left behind, no torn
            # artefact is visible as content.
            audit = fsck_store(store)
            found = {f.damage_class for f in audit.findings}
            assert not (found & CONTENT_DAMAGE), \
                (label, audit.format_summary())

            # 2. repair converges to a clean store.
            fsck_store(store, repair=True)
            healed = fsck_store(store)
            assert healed.clean, (label, healed.format_summary())

            # 3. resume finishes the collection with an identical
            # snapshot and identical analysis output.
            resumed = make_campaign(store, world.url).run(resume=True)
            assert resumed.complete, label
            snapshot = store.load_snapshot("linx", 4, DATE)
            assert snapshot.summary() == world.control.summary(), label
            rows = Study.from_store(store, ixps=("linx",),
                                    families=(4,)).table1()
            assert rows == control_rows, label

    def test_crash_mid_write_leaves_old_version_readable(self, world,
                                                         tmp_path):
        """Rewriting an existing artefact and crashing before the
        rename must leave the previous version intact."""
        store = DatasetStore(tmp_path / "rewrite")
        store.save_snapshot(world.control)
        before = store.load_snapshot("linx", 4, DATE).summary()
        store.crash_schedule = CrashSchedule(label="snapshot:temp",
                                             occurrence=1)
        with pytest.raises(SimulatedCrash):
            store.save_snapshot(world.control)
        store.crash_schedule = None
        assert store.load_snapshot("linx", 4, DATE).summary() == before
        # the interrupted write left exactly one piece of debris
        audit = fsck_store(store)
        assert audit.counts["orphan_temp"] == 1


_DRIVER = """\
import sys

sys.path.insert(0, sys.argv[4])

from repro.collector import CrashSchedule, DatasetStore
from repro.collector.campaign import (
    CampaignConfig,
    CampaignTarget,
    CollectionCampaign,
)

url, root, label = sys.argv[1:4]
store = DatasetStore(root, crash_schedule=CrashSchedule(
    label=label, occurrence=2, action="exit"))
config = CampaignConfig(
    base_url=url,
    targets=[CampaignTarget(ixp="linx", family=4)],
    captured_on="2021-10-04",
    checkpoint_every=2)
CollectionCampaign(store, config).run()
sys.exit(0)  # only reached if the crash never fired
"""


class TestSubprocessKill:
    def test_os_exit_mid_checkpoint_then_resume(self, world, tmp_path):
        import repro

        driver = tmp_path / "driver.py"
        driver.write_text(_DRIVER)
        root = tmp_path / "ds"
        src = str(Path(repro.__file__).parents[1])
        result = subprocess.run(
            [sys.executable, str(driver), world.url, str(root),
             "checkpoint:temp", src],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 86, result.stderr

        store = DatasetStore(root)
        # the kill landed between temp-write and rename: the previous
        # checkpoint is still the visible one, plus one orphan temp.
        audit = fsck_store(store)
        found = {f.damage_class for f in audit.findings}
        assert not (found & CONTENT_DAMAGE), audit.format_summary()
        assert audit.counts["orphan_temp"] == 1
        fsck_store(store, repair=True)
        assert fsck_store(store).clean

        resumed = make_campaign(store, world.url).run(resume=True)
        assert resumed.complete
        assert resumed.targets[0].peers_resumed > 0
        snapshot = store.load_snapshot("linx", 4, DATE)
        assert snapshot.summary() == world.control.summary()
