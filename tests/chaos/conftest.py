"""Shared corruption primitives for the chaos suite.

Each helper damages an on-disk artefact the way real-world failures
do: truncation (torn write / full disk), bit rot (a flipped bit in
the gzip CRC trailer — deterministic classification), and outright
garbage (a foreign file landing on the path).
"""

from pathlib import Path


def truncate(path: Path, keep: int = 30) -> None:
    path.write_bytes(path.read_bytes()[:keep])


def flip_trailer_bit(path: Path) -> None:
    """Flip a bit inside the gzip CRC32/ISIZE trailer: the stream
    still parses, but the integrity check must fail."""
    data = bytearray(path.read_bytes())
    data[-5] ^= 0x01
    path.write_bytes(bytes(data))


def overwrite_garbage(path: Path) -> None:
    path.write_bytes(b"\x00\x01 this was never an artefact \xff")
