"""Tests for the determinism helpers."""

import os
import random
import subprocess
import sys

import repro
from repro.utils import stable_fraction, stable_rng, stable_seed


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_order_sensitive(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_distinct_parts_distinct_seed(self):
        assert stable_seed("ab") != stable_seed("a", "b")

    def test_stable_across_processes(self):
        """The whole point: unlike hash(), SHA-based seeds must not vary
        with PYTHONHASHSEED."""
        code = ("from repro.utils import stable_seed; "
                "print(stable_seed('decix-fra', 4, 'routes'))")
        # the child gets a minimal environment, so the package location
        # (src/ in a checkout, site-packages when installed) must be
        # put on its PYTHONPATH explicitly.
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code],
                env={"PYTHONHASHSEED": str(n), "PATH": "/usr/bin:/bin",
                     "PYTHONPATH": package_root},
                capture_output=True, text=True, check=True).stdout
            for n in (0, 1)}
        assert len(outputs) == 1
        assert int(next(iter(outputs))) == stable_seed(
            "decix-fra", 4, "routes")

    def test_64_bit_range(self):
        for parts in (("x",), (1, 2, 3), ("", None)):
            assert 0 <= stable_seed(*parts) < 2 ** 64


class TestStableRng:
    def test_reproducible_stream(self):
        a = stable_rng("k").random()
        b = stable_rng("k").random()
        assert a == b

    def test_returns_random_instance(self):
        assert isinstance(stable_rng(1), random.Random)


class TestStableFraction:
    def test_unit_interval(self):
        for index in range(200):
            value = stable_fraction("prefix", index)
            assert 0.0 <= value < 1.0

    def test_roughly_uniform(self):
        values = [stable_fraction("u", index) for index in range(2000)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55
        below_half = sum(1 for value in values if value < 0.5)
        assert 850 < below_half < 1150
