"""Shared fixtures.

Generation is the expensive part of the suite, so populations,
generators, snapshots, and aggregates are session-scoped and shared by
every test that does not mutate them.
"""

from __future__ import annotations

import pytest

from repro.core import Study
from repro.core.aggregate import aggregate_snapshot
from repro.ixp import get_profile
from repro.workload import ScenarioConfig, SnapshotGenerator

#: tiny scale for tests that only need structure, not statistics.
TINY = ScenarioConfig(scale=0.012, seed=99)
#: the scale the statistical (calibration) tests run at.
CALIBRATION = ScenarioConfig(scale=0.05, seed=20211004)


@pytest.fixture(scope="session")
def lg_world():
    """Cache of (generator, populated route server) pairs at the small
    HTTP-suite scale (0.012, seed 5). Building one route server costs
    about a second and three suites mount identical ones; the servers
    are only ever read over HTTP, never mutated."""
    cache = {}

    def get(ixp: str, family: int = 4):
        key = (ixp, family)
        if key not in cache:
            generator = SnapshotGenerator(
                get_profile(ixp), ScenarioConfig(scale=0.012, seed=5))
            cache[key] = (generator,
                          generator.populated_route_server(family))
        return cache[key]

    return get


@pytest.fixture(scope="session")
def linx_generator() -> SnapshotGenerator:
    return SnapshotGenerator(get_profile("linx"), TINY)


@pytest.fixture(scope="session")
def decix_generator() -> SnapshotGenerator:
    return SnapshotGenerator(get_profile("decix-fra"), TINY)


@pytest.fixture(scope="session")
def linx_snapshot(linx_generator):
    return linx_generator.snapshot(4, degraded=False)


@pytest.fixture(scope="session")
def linx_snapshot_v6(linx_generator):
    return linx_generator.snapshot(6, degraded=False)


@pytest.fixture(scope="session")
def decix_snapshot(decix_generator):
    return decix_generator.snapshot(4, degraded=False)


@pytest.fixture(scope="session")
def linx_aggregate(linx_snapshot, linx_generator):
    return aggregate_snapshot(linx_snapshot, linx_generator.dictionary)


@pytest.fixture(scope="session")
def decix_aggregate(decix_snapshot, decix_generator):
    return aggregate_snapshot(decix_snapshot, decix_generator.dictionary)


@pytest.fixture(scope="session")
def tiny_study(linx_generator, decix_generator, linx_snapshot,
               decix_snapshot, linx_snapshot_v6) -> Study:
    study = Study()
    study.snapshots[("linx", 4)] = linx_snapshot
    study.snapshots[("linx", 6)] = linx_snapshot_v6
    study.snapshots[("decix-fra", 4)] = decix_snapshot
    study.dictionaries["linx"] = linx_generator.dictionary
    study.dictionaries["decix-fra"] = decix_generator.dictionary
    return study


@pytest.fixture(scope="session")
def calibration_study() -> Study:
    """The four large IXPs at calibration scale — used by the paper-band
    integration tests; expensive, built once."""
    return Study.synthetic(scale=CALIBRATION.scale, seed=CALIBRATION.seed)
