"""Tests for repro.bgp.communities."""

import pytest

from repro.bgp.communities import (
    BLACKHOLE,
    NO_ADVERTISE,
    NO_EXPORT,
    Community,
    ExtendedCommunity,
    LargeCommunity,
    StandardCommunity,
    community_kind,
    encodes_asn_target,
    large,
    parse_community,
    standard,
)
from repro.bgp.errors import MalformedCommunityError


class TestStandard:
    def test_str(self):
        assert str(standard(64500, 123)) == "64500:123"

    def test_from_string(self):
        assert StandardCommunity.from_string("64500:123") == standard(
            64500, 123)

    def test_from_bird_rendering(self):
        assert StandardCommunity.from_string("(64500,123)") == standard(
            64500, 123)

    def test_u32_roundtrip(self):
        community = standard(6939, 666)
        assert StandardCommunity.from_u32(community.to_u32()) == community

    def test_bytes_roundtrip(self):
        community = standard(0, 15169)
        assert StandardCommunity.from_bytes(
            community.to_bytes()) == community

    def test_field_range_enforced(self):
        with pytest.raises(MalformedCommunityError):
            StandardCommunity(70000, 1)
        with pytest.raises(MalformedCommunityError):
            StandardCommunity(1, -1)

    def test_well_known_names(self):
        assert StandardCommunity.from_u32(NO_EXPORT).well_known_name == \
            "no-export"
        assert StandardCommunity.from_u32(NO_ADVERTISE).well_known_name == \
            "no-advertise"
        assert StandardCommunity.from_u32(BLACKHOLE).well_known_name == \
            "blackhole"
        assert standard(64500, 1).well_known_name is None

    def test_blackhole_is_65535_666(self):
        assert StandardCommunity.from_u32(BLACKHOLE) == standard(65535, 666)

    def test_ordering_and_hashing(self):
        a, b = standard(1, 2), standard(1, 3)
        assert a < b
        assert len({a, b, standard(1, 2)}) == 2

    def test_bad_strings(self):
        for text in ("64500", "a:b", "1:2:3:4", ""):
            with pytest.raises(MalformedCommunityError):
                StandardCommunity.from_string(text)

    def test_wrong_byte_length(self):
        with pytest.raises(MalformedCommunityError):
            StandardCommunity.from_bytes(b"\x00" * 3)


class TestExtended:
    def test_route_target_string(self):
        assert str(ExtendedCommunity.route_target(64500, 9)) == "rt:64500:9"

    def test_parse_rt(self):
        community = ExtendedCommunity.from_string("rt:64500:9")
        assert (community.type_high, community.type_low) == (0x00, 0x02)

    def test_parse_ro(self):
        community = ExtendedCommunity.from_string("ro:64500:9")
        assert community.type_low == 0x03

    def test_parse_generic(self):
        community = ExtendedCommunity.from_string("generic:0x40:0x05:1:2")
        assert community.type_high == 0x40
        assert not community.is_transitive

    def test_transitive_flag(self):
        assert ExtendedCommunity.route_target(1, 1).is_transitive

    def test_bytes_roundtrip(self):
        community = ExtendedCommunity(0x00, 0x02, 8714, 15169)
        assert ExtendedCommunity.from_bytes(
            community.to_bytes()) == community

    def test_bad_string(self):
        with pytest.raises(MalformedCommunityError):
            ExtendedCommunity.from_string("rt:1")

    def test_str_roundtrip_generic(self):
        community = ExtendedCommunity(0x43, 0x11, 5, 6)
        assert ExtendedCommunity.from_string(str(community)) == community


class TestLarge:
    def test_str(self):
        assert str(large(26162, 0, 15169)) == "26162:0:15169"

    def test_parse(self):
        assert LargeCommunity.from_string("26162:0:15169") == large(
            26162, 0, 15169)

    def test_32bit_fields_allowed(self):
        community = large(4200000001, 4294967295, 0)
        assert community.global_admin == 4200000001

    def test_bytes_roundtrip(self):
        community = large(6695, 1, 60781)
        assert LargeCommunity.from_bytes(community.to_bytes()) == community

    def test_field_range(self):
        with pytest.raises(MalformedCommunityError):
            LargeCommunity(2 ** 32, 0, 0)

    def test_wrong_byte_length(self):
        with pytest.raises(MalformedCommunityError):
            LargeCommunity.from_bytes(b"\x00" * 11)


class TestParseDispatch:
    def test_two_fields_is_standard(self):
        assert parse_community("0:6939").kind == "standard"

    def test_three_fields_is_large(self):
        assert parse_community("6695:0:6939").kind == "large"

    def test_rt_prefix_is_extended(self):
        assert parse_community("rt:8714:15169").kind == "extended"

    def test_kind_helper(self):
        assert community_kind(standard(1, 2)) == "standard"
        assert community_kind(large(1, 2, 3)) == "large"

    def test_unparseable(self):
        with pytest.raises(MalformedCommunityError):
            parse_community("1:2:3:4")


class TestTargetEncoding:
    def test_plausible_asn_target(self):
        assert encodes_asn_target(standard(0, 6939))

    def test_zero_value_is_not_a_target(self):
        assert not encodes_asn_target(standard(0, 0))
