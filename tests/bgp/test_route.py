"""Tests for repro.bgp.route."""

import pytest

from repro.bgp.aspath import AsPath
from repro.bgp.communities import ExtendedCommunity, large, standard
from repro.bgp.route import Route


def make_route(**overrides):
    defaults = dict(
        prefix="203.0.113.0/24",
        next_hop="195.66.224.10",
        as_path=AsPath.from_asns([64500]),
        peer_asn=64500,
        communities=frozenset({standard(0, 6939), standard(8714, 1000)}),
    )
    defaults.update(overrides)
    return Route(**defaults)


class TestRoute:
    def test_family_v4(self):
        assert make_route().family == 4

    def test_family_v6(self):
        route = make_route(prefix="2600::/32", next_hop="2001:db8::1")
        assert route.family == 6

    def test_prefix_canonicalised(self):
        route = make_route(prefix="2600:0000::/32")
        assert route.prefix == "2600::/32"

    def test_origin_asn(self):
        route = make_route(as_path=AsPath.from_asns([64500, 64999]))
        assert route.origin_asn == 64999

    def test_community_count_all_flavours(self):
        route = make_route(
            large_communities=frozenset({large(8714, 0, 6939)}),
            extended_communities=frozenset(
                {ExtendedCommunity(0, 2, 8714, 6939)}))
        assert route.community_count == 4

    def test_all_communities_deterministic_order(self):
        route = make_route()
        assert route.all_communities() == route.all_communities()
        assert len(route.all_communities()) == 2

    def test_without_communities(self):
        route = make_route()
        scrubbed = route.without_communities({standard(0, 6939)})
        assert standard(0, 6939) not in scrubbed.communities
        assert standard(8714, 1000) in scrubbed.communities

    def test_with_prepend(self):
        route = make_route().with_prepend(64500, 2)
        assert route.as_path.length == 3

    def test_lists_coerced_to_frozensets(self):
        route = make_route(communities=[standard(1, 2), standard(1, 2)])
        assert isinstance(route.communities, frozenset)
        assert len(route.communities) == 1


class TestSerialisation:
    def test_roundtrip(self):
        route = make_route(
            large_communities=frozenset({large(8714, 0, 6939)}),
            extended_communities=frozenset(
                {ExtendedCommunity(0, 2, 8714, 6939)}))
        assert Route.from_dict(route.to_dict()) == route

    def test_filtered_roundtrip(self):
        route = make_route(filtered=True, filter_reason="bogon-prefix: x")
        restored = Route.from_dict(route.to_dict())
        assert restored.filtered
        assert restored.filter_reason.startswith("bogon-prefix")

    def test_accepted_route_has_no_filter_keys(self):
        assert "filtered" not in make_route().to_dict()

    def test_dict_communities_are_strings(self):
        payload = make_route().to_dict()
        assert all(isinstance(c, str) for c in payload["communities"])
